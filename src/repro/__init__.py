"""repro — reproduction of "Efficient Diversification of Web Search Results".

Capannini, Nardini, Perego, Silvestri — PVLDB 4(7), 2011.

The package is organised by subsystem (see DESIGN.md):

* :mod:`repro.core` — OptSelect, xQuAD, IASelect, MMR, Algorithm 1,
  the utility measure and the end-to-end framework;
* :mod:`repro.retrieval` — the Terrier-equivalent search engine (Porter
  stemmer, inverted index, DPH/DFR, snippets, cosine similarity);
* :mod:`repro.querylog` — query-log model, Query-Flow-Graph sessions,
  Search-Shortcuts recommender, synthetic AOL/MSN logs, specialization
  mining;
* :mod:`repro.corpus` — synthetic ClueWeb-B substitute and the TREC
  diversity testbed (topics/subtopics/qrels/run files);
* :mod:`repro.evaluation` — α-NDCG, IA-P, intent-aware metrics,
  Wilcoxon significance, TREC-style runner;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import (CorpusConfig, generate_corpus, build_testbed,
                       SearchEngine, SpecializationMiner,
                       generate_query_log, AOL_PROFILE,
                       DiversificationFramework, OptSelect)

    corpus = generate_corpus(CorpusConfig(num_topics=10))
    engine = SearchEngine(corpus.collection)
    log = generate_query_log(corpus, AOL_PROFILE.scaled(0.2))
    miner = SpecializationMiner(log).build()
    framework = DiversificationFramework(engine, miner, OptSelect())
    result = framework.diversify_query(corpus.topics[0].query)
"""

from repro.core import (
    AmbiguityDetector,
    BoundedMaxHeap,
    DiversificationFramework,
    DiversificationTask,
    DiversifiedResult,
    Diversifier,
    DiversifierStats,
    FrameworkConfig,
    IASelect,
    MMR,
    OptSelect,
    SpecializationSet,
    UtilityMatrix,
    XQuAD,
    ambiguous_query_detect,
    default_diversifier,
    fast_kernels_available,
    get_diversifier,
    harmonic_number,
    normalized_utility,
)
from repro.corpus import (
    CorpusConfig,
    DiversityQrels,
    DiversityTestbed,
    DiversityTopic,
    Subtopic,
    SyntheticCorpus,
    build_testbed,
    generate_corpus,
)
from repro.evaluation import (
    PAPER_CUTOFFS,
    EvaluationReport,
    alpha_ndcg,
    compare_reports,
    evaluate_run,
    intent_aware_precision,
    wilcoxon_signed_rank,
)
from repro.querylog import (
    AOL_PROFILE,
    MSN_PROFILE,
    LogProfile,
    QueryFlowGraph,
    QueryLog,
    QueryRecord,
    SearchShortcutsRecommender,
    Session,
    SpecializationMiner,
    generate_query_log,
    split_by_time_gap,
)
from repro.retrieval import (
    Analyzer,
    BM25,
    DPH,
    Document,
    DocumentCollection,
    InvertedIndex,
    PartitionedSearchEngine,
    PorterStemmer,
    ResultList,
    SearchEngine,
    TermVector,
    cosine,
    delta,
    partition_collection,
    stable_shard,
)
from repro.serving import (
    AsyncDiversificationService,
    CacheStats,
    DiversificationService,
    ExecutionBackend,
    InlineBackend,
    LRUCache,
    PreparedQuery,
    ProcessBackend,
    ServiceClosed,
    ServiceStats,
    ShardedDiversificationService,
    ThreadBackend,
    WarmReport,
    build_partitioned_engine,
    make_backend,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "AmbiguityDetector",
    "BoundedMaxHeap",
    "DiversificationFramework",
    "DiversificationTask",
    "DiversifiedResult",
    "Diversifier",
    "DiversifierStats",
    "FrameworkConfig",
    "IASelect",
    "MMR",
    "OptSelect",
    "SpecializationSet",
    "UtilityMatrix",
    "XQuAD",
    "ambiguous_query_detect",
    "default_diversifier",
    "fast_kernels_available",
    "get_diversifier",
    "harmonic_number",
    "normalized_utility",
    # corpus
    "CorpusConfig",
    "DiversityQrels",
    "DiversityTestbed",
    "DiversityTopic",
    "Subtopic",
    "SyntheticCorpus",
    "build_testbed",
    "generate_corpus",
    # evaluation
    "PAPER_CUTOFFS",
    "EvaluationReport",
    "alpha_ndcg",
    "compare_reports",
    "evaluate_run",
    "intent_aware_precision",
    "wilcoxon_signed_rank",
    # querylog
    "AOL_PROFILE",
    "MSN_PROFILE",
    "LogProfile",
    "QueryFlowGraph",
    "QueryLog",
    "QueryRecord",
    "SearchShortcutsRecommender",
    "Session",
    "SpecializationMiner",
    "generate_query_log",
    "split_by_time_gap",
    # serving
    "AsyncDiversificationService",
    "CacheStats",
    "DiversificationService",
    "ExecutionBackend",
    "InlineBackend",
    "LRUCache",
    "PreparedQuery",
    "ProcessBackend",
    "ServiceClosed",
    "ServiceStats",
    "ShardedDiversificationService",
    "ThreadBackend",
    "WarmReport",
    "make_backend",
    # retrieval
    "Analyzer",
    "BM25",
    "DPH",
    "Document",
    "DocumentCollection",
    "InvertedIndex",
    "PartitionedSearchEngine",
    "build_partitioned_engine",
    "PorterStemmer",
    "ResultList",
    "SearchEngine",
    "TermVector",
    "cosine",
    "delta",
    "partition_collection",
    "stable_shard",
    "__version__",
]

"""TREC 2009 Web track Diversity-task data model and file formats.

The paper's effectiveness study (Section 5, Table 3) follows the TREC 2009
Web track Diversity task: 50 topics, each with 3–8 manually identified
subtopics and relevance judgements *at subtopic level*.  This module
provides:

* the data model — :class:`Subtopic`, :class:`DiversityTopic`,
  :class:`DiversityQrels`, :class:`DiversityTestbed`;
* :func:`build_testbed` — derive a testbed from the synthetic corpus
  ground truth (each aspect becomes a subtopic, every document of that
  aspect is judged relevant to it);
* parsers/writers for the standard file formats, so real TREC data can be
  plugged in when available: diversity qrels (``topic subtopic doc rel``),
  run files (``topic Q0 doc rank score tag``), and the Web-track topics
  XML.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.corpus.generator import SyntheticCorpus

__all__ = [
    "Subtopic",
    "DiversityTopic",
    "DiversityQrels",
    "DiversityTestbed",
    "build_testbed",
    "parse_diversity_qrels",
    "format_diversity_qrels",
    "parse_topics_xml",
    "format_run",
    "parse_run",
]


@dataclass(frozen=True)
class Subtopic:
    """One aspect of a TREC diversity topic (numbers are 1-based)."""

    number: int
    description: str = ""
    kind: str = "inf"

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise ValueError("subtopic numbers are 1-based")


@dataclass(frozen=True)
class DiversityTopic:
    """A TREC diversity topic: query plus its subtopics."""

    topic_id: int
    query: str
    subtopics: tuple[Subtopic, ...] = ()
    kind: str = "ambiguous"

    @property
    def num_subtopics(self) -> int:
        return len(self.subtopics)


class DiversityQrels:
    """Subtopic-level binary relevance judgements.

    Stored as ``topic_id -> subtopic_number -> set of doc_ids`` (graded
    judgements collapse to binary, as in the official diversity-task
    evaluation).

    >>> qrels = DiversityQrels()
    >>> qrels.add(1, 1, "d1")
    >>> qrels.is_relevant(1, 1, "d1"), qrels.is_relevant(1, 2, "d1")
    (True, False)
    """

    def __init__(self) -> None:
        self._judgements: dict[int, dict[int, set[str]]] = {}

    def add(self, topic_id: int, subtopic: int, doc_id: str) -> None:
        self._judgements.setdefault(topic_id, {}).setdefault(subtopic, set()).add(
            doc_id
        )

    def is_relevant(self, topic_id: int, subtopic: int, doc_id: str) -> bool:
        return doc_id in self._judgements.get(topic_id, {}).get(subtopic, ())

    def is_relevant_any(self, topic_id: int, doc_id: str) -> bool:
        """Relevant to at least one subtopic (the adhoc-style judgement)."""
        return any(
            doc_id in docs for docs in self._judgements.get(topic_id, {}).values()
        )

    def relevant_docs(self, topic_id: int, subtopic: int) -> frozenset[str]:
        return frozenset(self._judgements.get(topic_id, {}).get(subtopic, ()))

    def subtopic_numbers(self, topic_id: int) -> list[int]:
        return sorted(self._judgements.get(topic_id, {}))

    def relevant_subtopics(self, topic_id: int, doc_id: str) -> frozenset[int]:
        """The set of subtopics *doc_id* is relevant to — the per-document
        judgement vector consumed by α-NDCG and IA-P."""
        return frozenset(
            number
            for number, docs in self._judgements.get(topic_id, {}).items()
            if doc_id in docs
        )

    @property
    def topic_ids(self) -> list[int]:
        return sorted(self._judgements)

    def num_judgements(self) -> int:
        return sum(
            len(docs)
            for per_topic in self._judgements.values()
            for docs in per_topic.values()
        )


@dataclass
class DiversityTestbed:
    """Topics plus qrels — everything the evaluation needs."""

    topics: list[DiversityTopic]
    qrels: DiversityQrels
    name: str = "synthetic-diversity-testbed"
    subtopic_probabilities: dict[int, dict[int, float]] = field(default_factory=dict)

    def topic(self, topic_id: int) -> DiversityTopic:
        for topic in self.topics:
            if topic.topic_id == topic_id:
                return topic
        raise KeyError(f"no topic {topic_id}")

    def probability(self, topic_id: int, subtopic: int) -> float:
        """Ground-truth subtopic weight P(subtopic | topic).

        Uniform when the testbed carries no popularity information, as the
        official IA-P evaluation assumes.
        """
        per_topic = self.subtopic_probabilities.get(topic_id)
        if per_topic and subtopic in per_topic:
            return per_topic[subtopic]
        n = self.topic(topic_id).num_subtopics
        return 1.0 / n if n else 0.0

    def __len__(self) -> int:
        return len(self.topics)


def build_testbed(corpus: SyntheticCorpus) -> DiversityTestbed:
    """Derive a diversity testbed from synthetic-corpus ground truth.

    Each :class:`~repro.corpus.generator.AmbiguousTopic` becomes a TREC
    topic whose subtopics are its aspects (subtopic ``i+1`` = aspect ``i``);
    every document generated for an aspect is judged relevant to the
    corresponding subtopic.  Ground-truth aspect popularities are preserved
    as subtopic probabilities (used by intent-aware metrics).
    """
    topics: list[DiversityTopic] = []
    qrels = DiversityQrels()
    probabilities: dict[int, dict[int, float]] = {}
    for topic in corpus.topics:
        subtopics = tuple(
            Subtopic(number=i + 1, description=aspect.query)
            for i, aspect in enumerate(topic.aspects)
        )
        topics.append(
            DiversityTopic(
                topic_id=topic.topic_id, query=topic.query, subtopics=subtopics
            )
        )
        probabilities[topic.topic_id] = {
            i + 1: aspect.popularity for i, aspect in enumerate(topic.aspects)
        }
    for doc_id, (topic_id, aspect_index) in corpus.labels.items():
        qrels.add(topic_id, aspect_index + 1, doc_id)
    return DiversityTestbed(
        topics=topics, qrels=qrels, subtopic_probabilities=probabilities
    )


# ---------------------------------------------------------------------------
# File formats
# ---------------------------------------------------------------------------

def parse_diversity_qrels(lines: Iterable[str]) -> DiversityQrels:
    """Parse official diversity qrels: ``topic subtopic doc relevance``.

    Lines with relevance <= 0 are ignored (non-relevant judgements).
    """
    qrels = DiversityQrels()
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"qrels line {line_no}: expected 4 fields, got {line!r}")
        topic_id, subtopic, doc_id, relevance = parts
        if int(relevance) > 0:
            qrels.add(int(topic_id), int(subtopic), doc_id)
    return qrels


def format_diversity_qrels(qrels: DiversityQrels) -> str:
    """Serialise *qrels* in the official 4-column format."""
    out = []
    for topic_id in qrels.topic_ids:
        for subtopic in qrels.subtopic_numbers(topic_id):
            for doc_id in sorted(qrels.relevant_docs(topic_id, subtopic)):
                out.append(f"{topic_id} {subtopic} {doc_id} 1")
    return "\n".join(out) + ("\n" if out else "")


_TOPIC_RE = re.compile(
    r"<topic\s+number=\"(?P<number>\d+)\"(?:\s+type=\"(?P<type>[^\"]*)\")?\s*>"
    r"(?P<body>.*?)</topic>",
    re.DOTALL,
)
_QUERY_RE = re.compile(r"<query>(.*?)</query>", re.DOTALL)
_SUBTOPIC_RE = re.compile(
    r"<subtopic\s+number=\"(?P<number>\d+)\"(?:\s+type=\"(?P<type>[^\"]*)\")?\s*>"
    r"(?P<body>.*?)</subtopic>",
    re.DOTALL,
)


def parse_topics_xml(text: str) -> list[DiversityTopic]:
    """Parse TREC Web-track topics XML (the ``wt09.topics`` format).

    The parser is intentionally lenient (regex-based): the official files
    are not well-formed XML documents (no single root element).
    """
    topics: list[DiversityTopic] = []
    for m in _TOPIC_RE.finditer(text):
        body = m.group("body")
        query_match = _QUERY_RE.search(body)
        query = query_match.group(1).strip() if query_match else ""
        subtopics = tuple(
            Subtopic(
                number=int(sm.group("number")),
                description=" ".join(sm.group("body").split()),
                kind=sm.group("type") or "inf",
            )
            for sm in _SUBTOPIC_RE.finditer(body)
        )
        topics.append(
            DiversityTopic(
                topic_id=int(m.group("number")),
                query=query,
                subtopics=subtopics,
                kind=m.group("type") or "ambiguous",
            )
        )
    return topics


def format_run(
    rankings: dict[int, list[tuple[str, float]]], tag: str = "repro"
) -> str:
    """Serialise per-topic rankings in the 6-column TREC run format."""
    lines = []
    for topic_id in sorted(rankings):
        for rank, (doc_id, score) in enumerate(rankings[topic_id], start=1):
            lines.append(f"{topic_id} Q0 {doc_id} {rank} {score:.6f} {tag}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_run(lines: Iterable[str]) -> dict[int, list[tuple[str, float]]]:
    """Parse a TREC run file back into per-topic (doc_id, score) lists.

    Documents are returned in rank order as recorded in the file.
    """
    by_topic: dict[int, list[tuple[int, str, float]]] = {}
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 6:
            raise ValueError(f"run line {line_no}: expected 6 fields, got {line!r}")
        topic_id, _q0, doc_id, rank, score, _tag = parts
        by_topic.setdefault(int(topic_id), []).append(
            (int(rank), doc_id, float(score))
        )
    return {
        topic_id: [(doc_id, score) for _, doc_id, score in sorted(entries)]
        for topic_id, entries in by_topic.items()
    }

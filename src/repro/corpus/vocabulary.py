"""Synthetic vocabulary and unigram language models.

The corpus generator (ClueWeb-B substitute, see DESIGN.md) needs a
realistic lexical substrate: a Zipf-distributed vocabulary and per-topic /
per-aspect unigram language models.  Everything is deterministic given a
seed, so experiments are reproducible bit-for-bit.

* :class:`Vocabulary` — `size` pronounceable synthetic words.
* :class:`ZipfSampler` — O(log V) sampling from a Zipf(s) distribution.
* :class:`LanguageModel` — a unigram distribution supporting mixtures.
"""

from __future__ import annotations

import bisect
import random
from collections.abc import Mapping, Sequence

__all__ = ["Vocabulary", "ZipfSampler", "LanguageModel"]

_ONSETS = "b c d f g h j k l m n p r s t v w z br cr dr fr gr pr tr st sl".split()
_NUCLEI = "a e i o u ai ea ou".split()
_CODAS = ["", "n", "r", "s", "t", "l", "x"]


def _syllables() -> list[str]:
    return [o + n + c for o in _ONSETS for n in _NUCLEI for c in _CODAS]


class Vocabulary:
    """A deterministic synthetic vocabulary of pronounceable words.

    Words are built from syllable combinations, so they survive the Porter
    stemmer mostly intact and do not collide with English stopwords.

    >>> vocab = Vocabulary(size=100, seed=7)
    >>> len(vocab), vocab[0] == Vocabulary(size=100, seed=7)[0]
    (100, True)
    """

    def __init__(self, size: int, seed: int = 0, min_syllables: int = 2) -> None:
        if size <= 0:
            raise ValueError("vocabulary size must be positive")
        rng = random.Random(seed)
        syllables = _syllables()
        words: list[str] = []
        seen: set[str] = set()
        # Randomly composed words (rather than lexicographic enumeration)
        # so that consecutive vocabulary slices — which the corpus
        # generator reserves for topics and aspects — do not share
        # prefixes and therefore stay lexically distinct.
        syllable_count = min_syllables
        attempts_at_count = 0
        while len(words) < size:
            word = "".join(rng.choice(syllables) for _ in range(syllable_count))
            attempts_at_count += 1
            if word in seen:
                # Exhausting a length class: move to longer words.
                if attempts_at_count > 50 * (len(words) + 1):
                    syllable_count += 1
                    attempts_at_count = 0
                continue
            seen.add(word)
            words.append(word)
        self.words = words

    def __len__(self) -> int:
        return len(self.words)

    def __getitem__(self, i: int) -> str:
        return self.words[i]

    def __iter__(self):
        return iter(self.words)

    def __contains__(self, word: str) -> bool:
        return word in set(self.words)


class ZipfSampler:
    """Sample ranks 0..n-1 with P(rank) proportional to 1/(rank+1)^s.

    Uses a precomputed cumulative table and binary search, so each draw is
    O(log n).

    >>> sampler = ZipfSampler(10, s=1.0)
    >>> rng = random.Random(0)
    >>> all(0 <= sampler.sample(rng) < 10 for _ in range(100))
    True
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("s must be non-negative")
        self.n = n
        self.s = s
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against floating point drift

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError("rank out of range")
        previous = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - previous


class LanguageModel:
    """A unigram language model over a finite set of terms.

    >>> lm = LanguageModel({"apple": 3.0, "fruit": 1.0})
    >>> rng = random.Random(1)
    >>> set(lm.sample(rng, 50)) <= {"apple", "fruit"}
    True
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        items = [(t, w) for t, w in weights.items() if w > 0]
        if not items:
            raise ValueError("language model needs at least one positive weight")
        total = sum(w for _, w in items)
        self.terms: list[str] = [t for t, _ in items]
        self._cumulative: list[float] = []
        acc = 0.0
        for _, w in items:
            acc += w / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    @classmethod
    def uniform(cls, terms: Sequence[str]) -> "LanguageModel":
        return cls({t: 1.0 for t in terms})

    @classmethod
    def zipfian(cls, terms: Sequence[str], s: float = 1.0) -> "LanguageModel":
        return cls({t: 1.0 / (i + 1) ** s for i, t in enumerate(terms)})

    @classmethod
    def mixture(
        cls, components: Sequence[tuple["LanguageModel", float]]
    ) -> "LanguageModel":
        """Linear interpolation of language models."""
        mixed: dict[str, float] = {}
        for model, weight in components:
            if weight < 0:
                raise ValueError("mixture weights must be non-negative")
            previous = 0.0
            for term, cum in zip(model.terms, model._cumulative):
                mixed[term] = mixed.get(term, 0.0) + weight * (cum - previous)
                previous = cum
        return cls(mixed)

    def sample_one(self, rng: random.Random) -> str:
        return self.terms[bisect.bisect_left(self._cumulative, rng.random())]

    def sample(self, rng: random.Random, n: int) -> list[str]:
        return [self.sample_one(rng) for _ in range(n)]

    def probability(self, term: str) -> float:
        try:
            i = self.terms.index(term)
        except ValueError:
            return 0.0
        previous = self._cumulative[i - 1] if i else 0.0
        return self._cumulative[i] - previous

    def __len__(self) -> int:
        return len(self.terms)

"""Corpus substrate: synthetic ClueWeb-B substitute and TREC testbed.

See DESIGN.md §3 for the substitution rationale: the licensed ClueWeb09-B
collection is replaced by a generated corpus of ambiguous topics with
Zipf-popular aspects, and the TREC diversity-task data model (topics,
subtopics, subtopic-level qrels, run files) is implemented in full, with
parsers accepting the real TREC files when available.
"""

from repro.corpus.generator import (
    AmbiguousTopic,
    Aspect,
    CorpusConfig,
    SyntheticCorpus,
    generate_corpus,
)
from repro.corpus.trec import (
    DiversityQrels,
    DiversityTestbed,
    DiversityTopic,
    Subtopic,
    build_testbed,
    format_diversity_qrels,
    format_run,
    parse_diversity_qrels,
    parse_run,
    parse_topics_xml,
)
from repro.corpus.vocabulary import LanguageModel, Vocabulary, ZipfSampler

__all__ = [
    "AmbiguousTopic",
    "Aspect",
    "CorpusConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "DiversityQrels",
    "DiversityTestbed",
    "DiversityTopic",
    "Subtopic",
    "build_testbed",
    "format_diversity_qrels",
    "format_run",
    "parse_diversity_qrels",
    "parse_run",
    "parse_topics_xml",
    "LanguageModel",
    "Vocabulary",
    "ZipfSampler",
]

"""Synthetic ambiguous-topic web corpus (the ClueWeb-B substitute).

The paper evaluates on ClueWeb09-B with the 50 TREC 2009 Web-track
diversity topics.  That collection cannot be bundled, so this module
generates a corpus with the same *shape* (see DESIGN.md §3):

* a set of **ambiguous topics** — each a short root query (e.g. the
  paper's "leopard") with 3–8 **aspects** (e.g. "leopard mac os x",
  "leopard tank", "leopard pictures"), matching the TREC topics' 3–8
  subtopics;
* per-aspect document sets sampled from aspect-specific unigram language
  models mixed with topic terms and Zipfian background vocabulary;
* background noise documents that are relevant to nothing;
* ground-truth (topic, aspect) labels in each document's metadata, from
  which :mod:`repro.corpus.trec` derives subtopic-level judgements.

Aspect popularity within a topic is Zipf-distributed — this is the ground
truth that the query-log generator (:mod:`repro.querylog.synthesis`)
replays and that Algorithm 1 later tries to recover as ``P(q'|q)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.vocabulary import LanguageModel, Vocabulary, ZipfSampler
from repro.retrieval.documents import Document, DocumentCollection

__all__ = ["Aspect", "AmbiguousTopic", "CorpusConfig", "SyntheticCorpus", "generate_corpus"]


@dataclass(frozen=True)
class Aspect:
    """One interpretation (subtopic) of an ambiguous topic."""

    name: str
    query: str
    terms: tuple[str, ...]
    popularity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError("popularity must lie in [0, 1]")


@dataclass(frozen=True)
class AmbiguousTopic:
    """A root query plus its aspects; popularities sum to 1."""

    topic_id: int
    query: str
    terms: tuple[str, ...]
    aspects: tuple[Aspect, ...]

    def __post_init__(self) -> None:
        total = sum(a.popularity for a in self.aspects)
        if self.aspects and abs(total - 1.0) > 1e-9:
            raise ValueError(f"aspect popularities must sum to 1, got {total}")

    @property
    def aspect_queries(self) -> list[str]:
        return [a.query for a in self.aspects]

    def popularity_of(self, aspect_query: str) -> float:
        for aspect in self.aspects:
            if aspect.query == aspect_query:
                return aspect.popularity
        return 0.0


@dataclass
class CorpusConfig:
    """Knobs of the synthetic corpus generator.

    Defaults produce the 50-topic testbed used by the Table 3 and Figure 1
    experiments at laptop scale.
    """

    num_topics: int = 50
    min_aspects: int = 3
    max_aspects: int = 8
    docs_per_aspect: int = 30
    background_docs: int = 500
    doc_length: tuple[int, int] = (80, 200)
    vocabulary_size: int = 4000
    topic_term_count: int = 3
    aspect_term_count: int = 4
    aspect_zipf_s: float = 1.0
    # Mixture weights for aspect documents: aspect terms, topic terms,
    # background vocabulary.  Aspect terms dominate so that specializations
    # retrieve clearly separated result lists, like distinct web subtopics.
    mixture: tuple[float, float, float] = (0.45, 0.2, 0.35)
    # Popularity skew of the root-query signal: documents of a popular
    # aspect mention the topic's root terms more often (on the real web,
    # the dominant interpretation of an ambiguous query owns most of the
    # anchor text and on-page occurrences of the query string).  The
    # topic-term mixture weight is scaled by
    # ``floor + (1 - floor) * popularity / max_popularity``; the skew is
    # what gives the *baseline* ranking its bias toward the head aspect —
    # the bias diversification then has to undo (Table 3's headroom).
    popularity_skew_floor: float = 0.25
    # Fraction of background documents polluted with a few occurrences of
    # a random topic's terms: query-matching but useless results, so the
    # baseline's precision is realistically below 1.
    background_pollution: float = 0.35
    # Among polluted documents: probability of also mimicking the topic's
    # *head aspect* vocabulary (spam/aggregator pages copy the popular
    # interpretation's wording).  Such pages acquire snippet similarity to
    # the specialization lists without being relevant to anything — the
    # trap that punishes algorithms ignoring relevance (IASelect) and
    # that the utility threshold c is meant to clean up.
    aspect_mimicry: float = 0.5
    seed: int = 42

    def validate(self) -> None:
        if self.num_topics <= 0:
            raise ValueError("num_topics must be positive")
        if not 2 <= self.min_aspects <= self.max_aspects:
            raise ValueError("need 2 <= min_aspects <= max_aspects")
        if self.docs_per_aspect <= 0:
            raise ValueError("docs_per_aspect must be positive")
        if self.doc_length[0] <= 0 or self.doc_length[0] > self.doc_length[1]:
            raise ValueError("invalid doc_length range")
        if any(w < 0 for w in self.mixture) or sum(self.mixture) <= 0:
            raise ValueError("mixture weights must be non-negative, not all zero")
        if not 0.0 <= self.popularity_skew_floor <= 1.0:
            raise ValueError("popularity_skew_floor must lie in [0, 1]")
        if not 0.0 <= self.background_pollution <= 1.0:
            raise ValueError("background_pollution must lie in [0, 1]")
        if not 0.0 <= self.aspect_mimicry <= 1.0:
            raise ValueError("aspect_mimicry must lie in [0, 1]")


@dataclass
class SyntheticCorpus:
    """The generated collection plus its ground truth."""

    config: CorpusConfig
    topics: list[AmbiguousTopic]
    collection: DocumentCollection
    # doc_id -> (topic_id, aspect index)  for aspect documents only
    labels: dict[str, tuple[int, int]] = field(default_factory=dict)

    def topic_by_query(self, query: str) -> AmbiguousTopic | None:
        for topic in self.topics:
            if topic.query == query:
                return topic
        return None

    def documents_of_aspect(self, topic_id: int, aspect_index: int) -> list[str]:
        return [
            doc_id
            for doc_id, (t, a) in self.labels.items()
            if t == topic_id and a == aspect_index
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SyntheticCorpus(topics={len(self.topics)}, "
            f"docs={len(self.collection)})"
        )


def _make_topics(config: CorpusConfig, vocab: Vocabulary, rng: random.Random) -> list[AmbiguousTopic]:
    """Carve topic and aspect terms out of the head of the vocabulary.

    Reserved terms are removed from the background pool, so a topic's
    identity terms are discriminative (as real entity names are).
    """
    topics: list[AmbiguousTopic] = []
    cursor = 0
    words = vocab.words
    for topic_id in range(1, config.num_topics + 1):
        topic_terms = tuple(words[cursor : cursor + config.topic_term_count])
        cursor += config.topic_term_count
        n_aspects = rng.randint(config.min_aspects, config.max_aspects)
        zipf = ZipfSampler(n_aspects, s=config.aspect_zipf_s)
        popularities = [zipf.probability(i) for i in range(n_aspects)]
        aspects = []
        root_query = topic_terms[0]
        for aspect_index in range(n_aspects):
            aspect_terms = tuple(
                words[cursor : cursor + config.aspect_term_count]
            )
            cursor += config.aspect_term_count
            aspects.append(
                Aspect(
                    name=f"topic{topic_id}-aspect{aspect_index}",
                    query=f"{root_query} {aspect_terms[0]}",
                    terms=aspect_terms,
                    popularity=popularities[aspect_index],
                )
            )
        if cursor >= len(words) // 2:
            raise ValueError(
                "vocabulary too small for the requested number of topics; "
                "increase CorpusConfig.vocabulary_size"
            )
        topics.append(
            AmbiguousTopic(
                topic_id=topic_id,
                query=root_query,
                terms=topic_terms,
                aspects=tuple(aspects),
            )
        )
    return topics


def generate_corpus(config: CorpusConfig | None = None) -> SyntheticCorpus:
    """Generate the synthetic corpus described in the module docstring.

    Deterministic for a fixed :attr:`CorpusConfig.seed`.

    >>> corpus = generate_corpus(CorpusConfig(num_topics=2, background_docs=5,
    ...                                       docs_per_aspect=3))
    >>> len(corpus.topics)
    2
    """
    config = config or CorpusConfig()
    config.validate()
    rng = random.Random(config.seed)
    vocab = Vocabulary(config.vocabulary_size, seed=config.seed)
    topics = _make_topics(config, vocab, rng)

    reserved = {t for topic in topics for t in topic.terms}
    reserved |= {t for topic in topics for a in topic.aspects for t in a.terms}
    background_terms = [w for w in vocab.words if w not in reserved]
    background_lm = LanguageModel.zipfian(background_terms, s=1.05)

    collection = DocumentCollection()
    labels: dict[str, tuple[int, int]] = {}
    doc_counter = 0
    w_aspect, w_topic, w_background = config.mixture

    for topic in topics:
        topic_lm = LanguageModel.uniform(list(topic.terms))
        max_popularity = max(a.popularity for a in topic.aspects)
        for aspect_index, aspect in enumerate(topic.aspects):
            aspect_lm = LanguageModel.uniform(list(aspect.terms))
            # Popular aspects mention the root terms more often; the
            # weight shaved off the topic component goes to background so
            # document lengths stay comparable across aspects.
            skew = config.popularity_skew_floor + (
                1.0 - config.popularity_skew_floor
            ) * (aspect.popularity / max_popularity)
            doc_lm = LanguageModel.mixture(
                [
                    (aspect_lm, w_aspect),
                    (topic_lm, w_topic * skew),
                    (background_lm, w_background + w_topic * (1.0 - skew)),
                ]
            )
            for _ in range(config.docs_per_aspect):
                doc_counter += 1
                doc_id = f"d{doc_counter:06d}"
                length = rng.randint(*config.doc_length)
                body = " ".join(doc_lm.sample(rng, length))
                title = f"{topic.query} {aspect.terms[0]} {aspect.terms[1]}"
                collection.add(
                    Document(
                        doc_id=doc_id,
                        text=body,
                        title=title,
                        metadata={
                            "topic_id": topic.topic_id,
                            "aspect": aspect_index,
                        },
                    )
                )
                labels[doc_id] = (topic.topic_id, aspect_index)

    for _ in range(config.background_docs):
        doc_counter += 1
        doc_id = f"d{doc_counter:06d}"
        length = rng.randint(*config.doc_length)
        tokens = background_lm.sample(rng, length)
        if topics and rng.random() < config.background_pollution:
            # Inject a handful of some topic's terms: the document will
            # match that topic's queries without being relevant to any
            # aspect (spam/off-topic pages mentioning the entity).  The
            # root term is injected preferentially so polluted documents
            # rank competitively for the ambiguous query itself — the
            # paper's candidate lists are mostly such noise, which is what
            # IA-P penalises when it reaches the top ranks.
            polluter = rng.choice(topics)
            for _ in range(rng.randint(4, 12)):
                term = (
                    polluter.terms[0]
                    if rng.random() < 0.5
                    else rng.choice(polluter.terms)
                )
                tokens.insert(rng.randrange(len(tokens) + 1), term)
            if rng.random() < config.aspect_mimicry:
                head_aspect = polluter.aspects[0]
                for _ in range(rng.randint(6, 16)):
                    tokens.insert(
                        rng.randrange(len(tokens) + 1),
                        rng.choice(head_aspect.terms),
                    )
        collection.add(
            Document(
                doc_id=doc_id,
                text=" ".join(tokens),
                title="",
                metadata={"topic_id": None, "aspect": None},
            )
        )

    return SyntheticCorpus(
        config=config, topics=topics, collection=collection, labels=labels
    )

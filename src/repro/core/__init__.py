"""Core diversification algorithms and framework — the paper's contribution.

* Algorithm 1 (:mod:`repro.core.ambiguity`) — ambiguous-query detection.
* Definition 2 (:mod:`repro.core.utility`) — the utility measure Ũ.
* **OptSelect** (:mod:`repro.core.optselect`) — the paper's O(n log k)
  algorithm for MaxUtility Diversify(k).
* IASelect / xQuAD (:mod:`repro.core.iaselect`, :mod:`repro.core.xquad`)
  — the two state-of-the-art competitors, re-cast in the query-log
  framework exactly as Sections 3.1.1–3.1.2 describe.
* MMR (:mod:`repro.core.mmr`) — the classic related-work baseline.
* :mod:`repro.core.framework` — the end-to-end pipeline.
* :mod:`repro.core.arrays` / :mod:`repro.core.kernels` /
  :mod:`repro.core.fast` — the dense task representation and the
  kernel-backed (numpy) variants of all four diversifiers; imported
  lazily so numpy stays optional.  When numpy is present the framework
  and serving layer *default* onto the fast kernels
  (:func:`~repro.core.framework.default_diversifier`); the kernels are
  selection-identical to the references, so the default changes speed,
  never rankings.
* :mod:`repro.core.cache` — the bounded LRU shared by the framework,
  the search engine and the serving layer.
"""

from repro.core.ambiguity import (
    AmbiguityDetector,
    SpecializationSet,
    ambiguous_query_detect,
)
from repro.core.base import Diversifier, DiversifierStats
from repro.core.cache import CacheStats, LRUCache
from repro.core.framework import (
    DiversificationFramework,
    DiversifiedResult,
    FrameworkConfig,
    default_diversifier,
    fast_kernels_available,
    get_diversifier,
)
from repro.core.heaps import BoundedMaxHeap
from repro.core.iaselect import IASelect
from repro.core.mmr import MMR
from repro.core.objectives import (
    brute_force_best,
    coverage_counts,
    max_utility_objective,
    ql_diversify_objective,
    satisfies_proportionality,
    xquad_step_score,
)
from repro.core.optselect import OptSelect
from repro.core.personalized import PersonalizedDetector, UserProfile
from repro.core.relevance import (
    estimate_relevance,
    minmax_relevance,
    reciprocal_rank_relevance,
    softmax_relevance,
    sum_relevance,
)
from repro.core.task import DiversificationTask
from repro.core.utility import (
    UtilityMatrix,
    harmonic_number,
    normalized_utility,
    utility,
)
from repro.core.xquad import XQuAD

__all__ = [
    "AmbiguityDetector",
    "SpecializationSet",
    "ambiguous_query_detect",
    "CacheStats",
    "LRUCache",
    "Diversifier",
    "DiversifierStats",
    "DiversificationFramework",
    "DiversifiedResult",
    "FrameworkConfig",
    "default_diversifier",
    "fast_kernels_available",
    "get_diversifier",
    "BoundedMaxHeap",
    "IASelect",
    "MMR",
    "brute_force_best",
    "coverage_counts",
    "max_utility_objective",
    "ql_diversify_objective",
    "satisfies_proportionality",
    "xquad_step_score",
    "OptSelect",
    "PersonalizedDetector",
    "UserProfile",
    "estimate_relevance",
    "minmax_relevance",
    "reciprocal_rank_relevance",
    "softmax_relevance",
    "sum_relevance",
    "DiversificationTask",
    "UtilityMatrix",
    "harmonic_number",
    "normalized_utility",
    "utility",
    "XQuAD",
]

"""Bounded top-k heaps — the data structure behind OptSelect.

Algorithm 2 keeps "a collection of |S_q| heaps each of those keeps the top
⌊k·P(q'|q)⌋ + 1 most useful documents for that specialization" plus a
general k-sized heap; "all the heap operations are carried out on data
structures having a constant size bounded by k", which is where the
O(n·|S_q|·log k) bound comes from.

:class:`BoundedMaxHeap` implements exactly that contract: pushes cost
O(log capacity) and evict the current minimum when full; items drain in
descending score order.  An operation counter supports the Table 1
complexity instrumentation.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["BoundedMaxHeap"]


class BoundedMaxHeap(Generic[T]):
    """Keep the *capacity* highest-scored items; pop them best-first.

    Internally a min-heap of size <= capacity: pushing onto a full heap
    replaces the minimum iff the new score beats it, so memory stays
    O(capacity) and each push is O(log capacity).

    Ties are broken by insertion order (earlier wins), making behaviour
    deterministic — important because diversification re-ranks lists whose
    scores frequently tie.

    >>> heap = BoundedMaxHeap(2)
    >>> for score, item in [(1.0, "a"), (3.0, "b"), (2.0, "c")]:
    ...     heap.push(item, score)
    >>> heap.pop_max(), heap.pop_max(), len(heap)
    ('b', 2.0, 0)
    """

    __slots__ = ("capacity", "_heap", "_counter", "pushes")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        # Entries are (score, -insertion_counter, item): the min-heap root
        # is the worst item, with later insertions evicted first on ties.
        self._heap: list[tuple[float, int, T]] = []
        self._counter = 0
        self.pushes = 0

    def push(self, item: T, score: float) -> bool:
        """Offer *item*; returns True when it was retained."""
        self.pushes += 1
        if self.capacity == 0:
            return False
        self._counter += 1
        entry = (score, -self._counter, item)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def pop_max(self) -> tuple[T, float]:
        """Remove and return the best (item, score); raises if empty.

        The underlying structure is a min-heap, so the max pop is O(size);
        OptSelect only pops O(k) times from heaps of size O(k), keeping the
        total cost dominated by the n·|S_q| pushes.
        """
        if not self._heap:
            raise IndexError("pop from empty heap")
        best_index = max(range(len(self._heap)), key=lambda i: self._heap[i])
        score, _, item = self._heap[best_index]
        last = self._heap.pop()
        if best_index < len(self._heap):
            self._heap[best_index] = last
            heapq.heapify(self._heap)
        return item, score

    def drain(self) -> Iterator[tuple[T, float]]:
        """Yield all retained items best-first, emptying the heap."""
        items = sorted(self._heap, reverse=True)
        self._heap.clear()
        for score, _, item in items:
            yield item, score

    def peek_max(self) -> tuple[T, float]:
        if not self._heap:
            raise IndexError("peek on empty heap")
        score, _, item = max(self._heap)
        return item, score

    @property
    def min_score(self) -> float:
        """Score of the worst retained item (the eviction bar)."""
        if not self._heap:
            raise IndexError("empty heap has no min score")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: T) -> bool:
        return any(entry[2] == item for entry in self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedMaxHeap(capacity={self.capacity}, size={len(self)})"

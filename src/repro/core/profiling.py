"""Lightweight per-stage wall-clock profiling for the serving hot path.

The fused batch pipeline runs in distinct stages — densify (stack
``TaskArrays`` into padded tensors), score (stacked matmuls), select
(vectorised greedy steps), map-back (indices → doc_ids) — and the
fused-vs-looped split is only meaningful if each stage's share is
*measured*, not guessed.  :class:`StageTimer` is a context-manager timer
registry those code paths thread through::

    timer = StageTimer()
    with timer.stage("densify"):
        batch = BatchArrays(arrays_list)
    print(timer.report())

A timer is cheap (one ``perf_counter`` pair per stage entry) but not
free, so the serving layer only passes one when profiling is requested
(``--profile`` on ``repro.experiments.throughput``); everywhere else the
module-level :data:`NULL_TIMER` no-op stands in, keeping the hot path
unconditional-branch free.

Stages nest and repeat: entering the same stage name again accumulates
into its total.  Timers are not thread-safe — profile one service at a
time, the way the harnesses drive them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageTimer", "NullTimer", "NULL_TIMER"]


class StageTimer:
    """Accumulating wall-clock registry keyed by stage name."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        """Time one entry of *name*; totals and entry counts accumulate."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{stage: {seconds, entries}}`` — JSON-friendly, for BENCH
        records and assertions."""
        return {
            name: {"seconds": self.totals[name], "entries": self.counts[name]}
            for name in self.totals
        }

    def clear(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def report(self) -> str:
        """One line per stage, largest share first."""
        if not self.totals:
            return "no stages recorded"
        grand = sum(self.totals.values())
        lines = []
        for name, seconds in sorted(
            self.totals.items(), key=lambda item: -item[1]
        ):
            share = seconds / grand if grand else 0.0
            lines.append(
                f"{name:<12} {seconds * 1000.0:9.2f} ms  {share:6.1%}  "
                f"({self.counts[name]} entries)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageTimer(stages={sorted(self.totals)})"


class NullTimer:
    """Do-nothing stand-in so hot paths can time stages unconditionally."""

    @contextmanager
    def stage(self, name: str):
        yield self

    def seconds(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {}

    def clear(self) -> None:
        pass

    def report(self) -> str:
        return "profiling disabled"


#: Shared no-op timer used whenever profiling is not requested.
NULL_TIMER = NullTimer()

"""Personalized diversification — the paper's future-work item (i).

Section 6: "Future work will regard: i) the exploitation of users' search
history for personalizing result diversification".  This module
implements the natural realisation inside the paper's own framework: the
*global* specialization distribution P(q'|q) of Definition 1 is mixed
with a *per-user* distribution estimated from that user's own history::

    P_u(q'|q) ∝ (1 − γ)·f(q') + γ·scale·f_u(q')

where ``f`` is the global log frequency, ``f_u`` the user's personal
frequency of the specialization (queries and clicks count), ``γ``
the personalization strength and ``scale = Σf / Σf_u`` equalises the two
masses so γ behaves like a true mixing weight.  With γ = 0 the detector
reduces exactly to the global Algorithm 1; with γ = 1 a user who always
means "leopard tank" gets a result page packed with tanks while the
anonymous user keeps the diversified mix.

The diversification algorithms are untouched — personalization is purely
a change of the P(q'|q) input, which is the architectural point of the
paper's framework (every downstream component consumes the distribution
abstractly).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet
from repro.querylog.records import QueryLog

__all__ = ["UserProfile", "PersonalizedDetector"]


@dataclass
class UserProfile:
    """A user's observable search history: query and click counts."""

    user_id: str
    query_counts: Counter = field(default_factory=Counter)
    #: Clicks are attributed to the query that produced them; a click is
    #: stronger evidence of intent than a mere submission.
    click_counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_log(cls, log: QueryLog, user_id: str) -> "UserProfile":
        profile = cls(user_id=user_id)
        for record in log.user_stream(user_id):
            profile.query_counts[record.query] += 1
            if record.clicked:
                profile.click_counts[record.query] += len(record.clicks)
        return profile

    def observe(self, query: str, clicks: int = 0) -> None:
        """Online update: the user issued *query* (and clicked *clicks*)."""
        self.query_counts[query] += 1
        if clicks:
            self.click_counts[query] += clicks

    def affinity(self, query: str, click_weight: float = 2.0) -> float:
        """Personal evidence mass for *query* (clicks weighted up)."""
        return (
            self.query_counts.get(query, 0)
            + click_weight * self.click_counts.get(query, 0)
        )

    @property
    def total_queries(self) -> int:
        return sum(self.query_counts.values())


class PersonalizedDetector:
    """Wrap any detector and personalize its P(q'|q) per user.

    Parameters
    ----------
    detector:
        Anything with ``mine(query)`` or ``detect(query)`` returning a
        :class:`SpecializationSet` (the global Algorithm 1).
    gamma:
        Personalization strength in [0, 1]; 0 = global behaviour.
    click_weight:
        How much more a click counts than a plain submission in the
        user's history.
    """

    def __init__(self, detector, gamma: float = 0.5, click_weight: float = 2.0):
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        if click_weight < 0:
            raise ValueError("click_weight must be non-negative")
        self._detector = detector
        self.gamma = gamma
        self.click_weight = click_weight
        self._profiles: dict[str, UserProfile] = {}

    # -- profile management ---------------------------------------------------

    def profile(self, user_id: str) -> UserProfile:
        existing = self._profiles.get(user_id)
        if existing is None:
            existing = self._profiles[user_id] = UserProfile(user_id=user_id)
        return existing

    def load_history(self, log: QueryLog) -> None:
        """Bulk-build profiles for every user in *log*."""
        for user_id in log.users:
            self._profiles[user_id] = UserProfile.from_log(log, user_id)

    # -- detection ----------------------------------------------------------------

    def _global(self, query: str) -> SpecializationSet:
        if hasattr(self._detector, "mine"):
            return self._detector.mine(query)
        return self._detector.detect(query)

    def detect(self, query: str, user_id: str | None = None) -> SpecializationSet:
        """Algorithm 1 with user-mixed probabilities.

        Unknown or anonymous users (``user_id=None``) get the global
        distribution unchanged.  Personalization never adds or removes
        specializations — it only reweights the mined ones, so detection
        coverage (the Appendix C recall) is unaffected.
        """
        global_set = self._global(query)
        if not global_set or user_id is None or self.gamma == 0.0:
            return global_set
        profile = self._profiles.get(user_id)
        if profile is None:
            return global_set

        personal = {
            spec: profile.affinity(spec, self.click_weight)
            for spec, _p in global_set
        }
        personal_mass = sum(personal.values())
        if personal_mass == 0.0:
            return global_set

        # Scale personal counts onto the global probability mass so gamma
        # is a genuine convex mixing weight.
        mixed = {
            spec: (1.0 - self.gamma) * p
            + self.gamma * (personal[spec] / personal_mass)
            for spec, p in global_set
        }
        return SpecializationSet.from_frequencies(query, mixed)

    # Make the wrapper a drop-in `detector` for DiversificationFramework
    # (which calls .mine(query) / .detect(query) without a user): the
    # anonymous path stays global.
    def mine(self, query: str) -> SpecializationSet:
        return self.detect(query, user_id=None)

"""Bounded LRU cache with hit/miss accounting.

The paper's feasibility argument (Section 4.1) is that the per-
specialization artifacts — result lists R_q' and their snippet vectors —
are tiny and computed offline, so the online system only ever *reads*
them.  A production serving path still cannot hold every mined
specialization in memory, so both the
:class:`~repro.core.framework.DiversificationFramework` and the
:mod:`repro.serving` layer keep those artifacts in this bounded LRU
instead of the seed's unbounded dicts.

The counters (hits / misses / evictions) feed the framework's
``cache_info()`` and the serving layer's throughput reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters."""

    maxsize: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LRUCache(Generic[K, V]):
    """A dict bounded to *maxsize* entries, evicting least-recently-used.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    or updates and evicts the stalest entry when over capacity.
    ``__contains__`` is a pure probe — it does not touch the counters or
    the recency order — so instrumentation can inspect the cache without
    distorting its own statistics.

    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> "a" in cache, cache.stats().evictions
    (False, 1)
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or *default*."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/update *key*, evicting the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        self._data.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            maxsize=self.maxsize,
            size=len(self._data),
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
        )

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[K]:
        """Keys, least-recently-used first."""
        return iter(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(maxsize={self.maxsize}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

"""Bounded LRU cache with hit/miss accounting.

The paper's feasibility argument (Section 4.1) is that the per-
specialization artifacts — result lists R_q' and their snippet vectors —
are tiny and computed offline, so the online system only ever *reads*
them.  A production serving path still cannot hold every mined
specialization in memory, so both the
:class:`~repro.core.framework.DiversificationFramework` and the
:mod:`repro.serving` layer keep those artifacts in this bounded LRU
instead of the seed's unbounded dicts.

The counters (hits / misses / evictions) feed the framework's
``cache_info()`` and the serving layer's throughput reports.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Generic, Iterator, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters."""

    maxsize: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @classmethod
    def merge(cls, stats: Iterable["CacheStats"]) -> "CacheStats":
        """Aggregate many caches into one cluster-level snapshot.

        Every field sums: the sharded serving layer holds one cache per
        shard, and capacity, occupancy and traffic counters are all
        additive across disjoint shards.  ``hit_rate`` of the merged
        snapshot is then the traffic-weighted cluster hit rate.

        >>> a = CacheStats(maxsize=2, size=1, hits=3, misses=1, evictions=0)
        >>> CacheStats.merge([a, a]).hits
        6
        """
        stats = list(stats)
        return cls(
            maxsize=sum(s.maxsize for s in stats),
            size=sum(s.size for s in stats),
            hits=sum(s.hits for s in stats),
            misses=sum(s.misses for s in stats),
            evictions=sum(s.evictions for s in stats),
        )


class LRUCache(Generic[K, V]):
    """A dict bounded to *maxsize* entries, evicting least-recently-used.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    or updates and evicts the stalest entry when over capacity.
    ``__contains__`` is a pure probe — it does not touch the counters or
    the recency order — so instrumentation can inspect the cache without
    distorting its own statistics.

    Individual operations are atomic (an internal lock), so a cache
    shared across threads — e.g. one engine-level vector cache behind
    several serving shards — cannot be structurally corrupted or crash
    mid-``get`` when another thread evicts.  Compound check-then-act
    sequences remain the caller's responsibility to synchronise.

    The cache pickles: entries, recency order and counters round-trip,
    and the lock is recreated on load.  This is what lets a warmed
    framework travel across a process boundary (the
    :class:`~repro.serving.backends.ProcessBackend` worker protocol) or
    be snapshotted to disk via ``repro.retrieval.persistence``.

    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> "a" in cache, cache.stats().evictions
    (False, 1)
    """

    __slots__ = ("maxsize", "_data", "hits", "misses", "evictions", "_lock")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: OrderedDict[K, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value (refreshing recency) or *default*."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return value

    def put(self, key: K, value: V) -> None:
        """Insert/update *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        with self._lock:
            self._data.clear()

    def delete(self, key: K) -> bool:
        """Drop one entry if present; returns whether it was there.

        Counters are untouched — a targeted invalidation (the epoch
        publish path drops exactly the affected warm artifacts) is
        neither a miss nor an eviction.
        """
        with self._lock:
            if key in self._data:
                del self._data[key]
                return True
            return False

    def snapshot(self) -> list[tuple[K, V]]:
        """Every ``(key, value)`` pair, least-recently-used first.

        A pure probe like ``__contains__``: neither the counters nor the
        recency order are touched, so persistence and instrumentation
        can drain the cache without distorting its statistics.
        """
        with self._lock:
            return list(self._data.items())

    def __getstate__(self) -> dict:
        # The lock is process-local; everything else round-trips.
        with self._lock:
            return {
                "maxsize": self.maxsize,
                "data": list(self._data.items()),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __setstate__(self, state: dict) -> None:
        self.maxsize = state["maxsize"]
        self._data = OrderedDict(state["data"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
        self._lock = threading.Lock()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                maxsize=self.maxsize,
                size=len(self._data),
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
            )

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[K]:
        """Keys, least-recently-used first (a snapshot: safe to iterate
        while other threads mutate the cache)."""
        with self._lock:
            return iter(list(self._data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(maxsize={self.maxsize}, size={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )

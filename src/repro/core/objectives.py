"""Objective functions of the three problem formulations.

These are the *evaluation* side of Section 3: given a selected set S they
compute the value each formulation assigns to it.  The algorithms
themselves never call these (that would defeat the complexity analysis);
tests and ablation benches use them to check:

* IASelect's greedy value is within (1 − 1/e) of a brute-force optimum on
  small instances (the Nemhauser bound for submodular maximisation),
* OptSelect returns a maximiser of the additive objective (Eq. 8) when the
  proportionality constraint is inactive,
* the proportionality constraint of MaxUtility Diversify(k) holds.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.task import DiversificationTask

__all__ = [
    "ql_diversify_objective",
    "max_utility_objective",
    "xquad_step_score",
    "coverage_counts",
    "satisfies_proportionality",
    "brute_force_best",
]


def ql_diversify_objective(task: DiversificationTask, selected: Iterable[str]) -> float:
    """Equation (4): P(S|q) = Σ_q' P(q'|q)·(1 − Π_{d∈S}(1 − Ũ(d|R_q')))."""
    docs = list(selected)
    total = 0.0
    for spec, p in task.specializations:
        miss = 1.0
        for doc_id in docs:
            miss *= 1.0 - task.utilities.value(doc_id, spec)
        total += p * (1.0 - miss)
    return total


def max_utility_objective(task: DiversificationTask, selected: Iterable[str]) -> float:
    """Equations (7)/(8): Ũ(S|q) = Σ_{d∈S} Ũ(d|q) — additive."""
    return sum(task.overall_utility(doc_id) for doc_id in selected)


def xquad_step_score(
    task: DiversificationTask, selected: Sequence[str], doc_id: str
) -> float:
    """Equation (5) for candidate *doc_id* given current solution S.

    (1 − λ)·P(d|q) + λ·Σ_q' P(q'|q)·Ũ(d|R_q')·Π_{dj∈S}(1 − Ũ(dj|R_q'))
    """
    novelty = 0.0
    for spec, p in task.specializations:
        cov = 1.0
        for dj in selected:
            cov *= 1.0 - task.utilities.value(dj, spec)
        novelty += p * task.utilities.value(doc_id, spec) * cov
    return (1.0 - task.lambda_) * task.relevance_of(doc_id) + task.lambda_ * novelty


def coverage_counts(task: DiversificationTask, selected: Iterable[str]) -> dict[str, int]:
    """Per-specialization |S ⋈ q'| — how many selected docs are useful."""
    docs = list(selected)
    return {
        spec: sum(1 for d in docs if task.utilities.is_useful(d, spec))
        for spec, _ in task.specializations
    }


def satisfies_proportionality(
    task: DiversificationTask, selected: Iterable[str], k: int
) -> bool:
    """Check MaxUtility Diversify(k)'s constraint |S ⋈ q'| ≥ ⌊k·P(q'|q)⌋.

    The constraint can only be demanded up to what the candidate set
    offers: if fewer than ⌊k·P⌋ useful candidates exist at all, the bound
    drops to that number (the paper assumes rich candidate sets).
    """
    counts = coverage_counts(task, selected)
    for spec, p in task.specializations:
        available = len(task.utilities.useful_docs(spec))
        required = min(int(k * p), available)
        if counts.get(spec, 0) < required:
            return False
    return True


def brute_force_best(
    task: DiversificationTask,
    k: int,
    objective,
) -> tuple[tuple[str, ...], float]:
    """Exhaustively maximise *objective* over all k-subsets of candidates.

    Exponential — only for tiny test instances (n ≤ ~15).
    """
    best_set: tuple[str, ...] = ()
    best_value = float("-inf")
    for combo in itertools.combinations(task.candidates.doc_ids, k):
        value = objective(task, combo)
        if value > best_value:
            best_set, best_value = combo, value
    return best_set, best_value

"""End-to-end diversification framework (Section 3's pipeline).

Once trained, the paper's system answers a query ``q`` in three steps:

  (a) check whether ``q`` is ambiguous/faceted (Algorithm 1 over the
      query-log model);
  (b) if so, retrieve documents relevant to every mined specialization
      (the small precomputed lists ``R_q'``, |R_q'| ≪ |R_q|);
  (c) re-rank the original result list ``R_q`` so the final top-k
      maximises the chosen objective (OptSelect by default).

:class:`DiversificationFramework` implements that pipeline on top of the
library's search engine and specialization miner, and is what the
examples and the Table 3 / Figure 1 experiments drive.  A per-framework
cache of specialization result lists mirrors the paper's feasibility
argument (Section 4.1): those lists are tiny and computed once, offline.
The cache is a bounded LRU (:class:`~repro.core.cache.LRUCache`) with
hit/miss counters exposed via :meth:`DiversificationFramework.cache_info`,
and :meth:`DiversificationFramework.prefetch_specializations` lets the
serving layer (:mod:`repro.serving`) realise the offline phase explicitly
— warm the artifacts for an expected workload in one batched engine pass,
then serve queries that only read them.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet
from repro.core.base import Diversifier
from repro.core.cache import CacheStats, LRUCache
from repro.core.iaselect import IASelect
from repro.core.mmr import MMR
from repro.core.optselect import OptSelect
from repro.core.task import DiversificationTask
from repro.core.utility import UtilityMatrix
from repro.core.xquad import XQuAD
from repro.retrieval.engine import ResultList, SearchEngine

__all__ = [
    "FrameworkConfig",
    "DiversifiedResult",
    "DiversificationFramework",
    "get_diversifier",
    "fast_kernels_available",
    "default_diversifier",
]


def fast_kernels_available() -> bool:
    """Whether the numpy-backed kernels (:mod:`repro.core.fast`) import.

    The kernels are selection-identical to the pure-Python references, so
    when this returns True the framework and serving layer default onto
    them; when numpy is absent everything falls back to the references
    with no behaviour change beyond speed.
    """
    try:
        import repro.core.fast  # noqa: F401 - probe only
    except ImportError:
        return False
    return True


def default_diversifier(use_fast: bool | None = None) -> Diversifier:
    """The framework's default algorithm: OptSelect, kernel-backed if possible.

    ``use_fast=None`` (the default) auto-detects numpy and returns
    :class:`~repro.core.fast.FastOptSelect` when available, else the pure
    Python :class:`~repro.core.optselect.OptSelect`.  ``True`` demands
    the kernels (raising ``ImportError`` without numpy), ``False`` pins
    the instrumented reference.  Both variants produce identical
    rankings.
    """
    if use_fast is None:
        use_fast = fast_kernels_available()
    if use_fast:
        from repro.core.fast import FastOptSelect

        return FastOptSelect()
    return OptSelect()


def get_diversifier(
    name: str, use_fast: bool | None = False, **kwargs
) -> Diversifier:
    """Instantiate an algorithm by its paper name (case-insensitive).

    ``use_fast`` selects the implementation: ``False`` (default) returns
    the instrumented pure-Python reference — what the complexity
    experiments measure — ``True`` the numpy kernel-backed variant from
    :mod:`repro.core.fast`, and ``None`` auto-detects numpy.  Either way
    the ranking is identical; only the constant factor changes.

    >>> get_diversifier("xquad").name
    'xQuAD'
    """
    if use_fast is None:
        use_fast = fast_kernels_available()
    if use_fast:
        from repro.core.fast import get_fast_diversifier

        return get_fast_diversifier(name, **kwargs)
    registry = {
        "optselect": OptSelect,
        "iaselect": IASelect,
        "xquad": XQuAD,
        "mmr": MMR,
    }
    try:
        factory = registry[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown diversifier {name!r}; choose from {sorted(registry)}"
        ) from None
    return factory(**kwargs)


@dataclass(frozen=True)
class FrameworkConfig:
    """Operating parameters of the online pipeline.

    Paper defaults for Table 3: ``spec_results=20`` (|R_q'|), ``k=1000``,
    ``candidates=25000`` (|R_q|), ``lambda_=0.15``, ``threshold`` swept.
    The library defaults are SERP-scale; experiments override them.
    """

    k: int = 10
    candidates: int = 100
    spec_results: int = 20
    lambda_: float = 0.15
    threshold: float = 0.0
    relevance_method: str = "sum"

    def __post_init__(self) -> None:
        if self.k <= 0 or self.candidates <= 0 or self.spec_results <= 0:
            raise ValueError("k, candidates and spec_results must be positive")
        if not 0.0 <= self.lambda_ <= 1.0:
            raise ValueError("lambda_ must lie in [0, 1]")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")


@dataclass
class DiversifiedResult:
    """Outcome of one query: the final ranking plus full provenance."""

    query: str
    ranking: list[str]
    diversified: bool
    baseline: ResultList
    specializations: SpecializationSet
    task: DiversificationTask | None = None
    algorithm: str = ""

    @property
    def k(self) -> int:
        return len(self.ranking)


class DiversificationFramework:
    """Glue object: engine + ambiguity detection + diversifier.

    Parameters
    ----------
    engine:
        The search engine producing ``R_q`` and the ``R_q'`` lists.
    detector:
        Anything with a ``mine(query) -> SpecializationSet`` method (a
        :class:`~repro.querylog.specializations.SpecializationMiner`) or a
        ``detect(query)`` method (an
        :class:`~repro.core.ambiguity.AmbiguityDetector`).
    diversifier:
        Algorithm instance; when omitted, :func:`default_diversifier`
        picks OptSelect — kernel-backed
        (:class:`~repro.core.fast.FastOptSelect`) when numpy is present,
        the pure-Python reference otherwise.  Both are selection-identical.
    use_fast:
        Only consulted when *diversifier* is omitted: ``None`` (default)
        auto-detects numpy, ``True`` requires the fast kernels,
        ``False`` pins the pure-Python reference.
    config:
        Pipeline parameters.
    spec_cache_size:
        Bound on the specialization artifact cache (result list +
        snippet vectors per mined specialization).  The seed kept these
        in unbounded dicts; a bounded LRU keeps the online memory
        footprint constant under heavy traffic while still realising the
        paper's compute-once argument for the hot specializations.
    """

    def __init__(
        self,
        engine: SearchEngine,
        detector,
        diversifier: Diversifier | None = None,
        config: FrameworkConfig | None = None,
        spec_cache_size: int = 4096,
        use_fast: bool | None = None,
    ) -> None:
        self.engine = engine
        self.detector = detector
        self.diversifier = diversifier or default_diversifier(use_fast)
        self.config = config or FrameworkConfig()
        # Offline side structures (Section 4.1): specialization result
        # lists and their surrogate vectors, built once per specialization
        # and served from a bounded LRU (spec_query → (ResultList,
        # {doc_id → TermVector})).
        self._spec_cache: LRUCache[str, tuple[ResultList, dict]] = LRUCache(
            spec_cache_size
        )

    # -- pipeline pieces ---------------------------------------------------------

    def detect(self, query: str) -> SpecializationSet:
        """Step (a): Algorithm 1 via the configured detector."""
        if hasattr(self.detector, "mine"):
            return self.detector.mine(query)
        return self.detector.detect(query)

    def _pin_engine(self):
        """Pin the engine to one epoch for the duration of a pipeline pass.

        Epoch-versioned engines
        (:class:`~repro.retrieval.sharding.PartitionedSearchEngine`)
        expose ``pinned()``; a query's several engine touches — candidate
        retrieval, specialization fetches, vectorisation — then all read
        the same snapshot even when a publish lands mid-query.  Plain
        engines need no pin.
        """
        pin = getattr(self.engine, "pinned", None)
        if pin is None:
            return contextlib.nullcontext()
        return pin()

    def _cache_spec(self, spec_query: str, cached: tuple) -> None:
        """Insert a freshly computed artifact unless its epoch is gone.

        A query pinned to epoch N may finish computing an artifact after
        N+1 published and the serving layer already swept the stale
        entries; inserting then would resurrect epoch-N data.  The check
        and the put happen under the engine's epoch lock — the same lock
        a publish holds — so either the insert lands before the publish
        (and the sweep sees it) or the epoch comparison fails and the
        artifact is discarded.
        """
        engine = self.engine
        lock = getattr(engine, "_epoch_lock", None)
        if lock is None:
            self._spec_cache.put(spec_query, cached)
            return
        computed_at = engine._pinned_snapshot().epoch
        with lock:
            if engine.epoch == computed_at:
                self._spec_cache.put(spec_query, cached)

    def _spec_results(self, spec_query: str) -> tuple[ResultList, dict]:
        """Step (b): the cached small list R_q' and its snippet vectors."""
        cached = self._spec_cache.get(spec_query)
        if cached is None:
            results = self.engine.search(spec_query, self.config.spec_results)
            vectors = self.engine.snippet_vectors(spec_query, results)
            cached = (results, vectors)
            self._cache_spec(spec_query, cached)
        return cached

    def prefetch_specializations(self, spec_queries) -> int:
        """Warm the specialization cache for *spec_queries* in one pass.

        The serving layer's offline ``warm()`` phase and the batch path
        both funnel through here: engine lookups for specializations
        missing from the cache are batched (deduplicated) so a batch of
        queries sharing intents pays for each artifact once.  Returns the
        number of specializations actually fetched.
        """
        missing = [q for q in dict.fromkeys(spec_queries) if q not in self._spec_cache]
        if not missing:
            return 0
        with self._pin_engine():
            fetched = self.engine.search_batch(
                missing, self.config.spec_results
            )
            for spec_query in missing:
                results = fetched[spec_query]
                vectors = self.engine.snippet_vectors(spec_query, results)
                self._cache_spec(spec_query, (results, vectors))
        return len(missing)

    def invalidate_affected(self, delta) -> int:
        """Drop exactly the warm artifacts an epoch's delta stales.

        The soundness rule: a batch that changes the collection's
        document count or token total changes ``N`` and ``avg_dl`` and
        therefore *every* cached score — the whole cache drops.  A
        stats-preserving swap leaves an artifact byte-valid iff its
        specialization's terms are disjoint from the changed documents'
        terms (df/cf untouched) **and** none of the changed documents
        appear in its results (relative ordinal order of survivors is
        preserved, so tie-breaks hold).  Returns the number of artifacts
        dropped.
        """
        if delta is None or delta.stats_changed:
            dropped = len(self._spec_cache)
            self._spec_cache.clear()
            return dropped
        changed_terms = delta.terms
        changed_ids = delta.changed_ids
        if not changed_terms and not changed_ids:
            return 0
        analyzer = getattr(self.engine, "analyzer", None)
        if analyzer is None:
            dropped = len(self._spec_cache)
            self._spec_cache.clear()
            return dropped
        dropped = 0
        for spec_query, (results, vectors) in self._spec_cache.snapshot():
            touched = bool(set(analyzer.analyze(spec_query)) & changed_terms)
            if not touched:
                artifact_ids = set(results.doc_ids) | set(vectors)
                touched = bool(artifact_ids & changed_ids)
            if touched and self._spec_cache.delete(spec_query):
                dropped += 1
        return dropped

    def cache_info(self) -> CacheStats:
        """Hit/miss/eviction counters of the specialization cache."""
        return self._spec_cache.stats()

    def export_warm_state(self) -> dict:
        """Snapshot of the warm artifacts, LRU-oldest first.

        Returns ``{spec_query: (ResultList, {doc_id: TermVector})}`` —
        exactly what the offline phase computed.  The snapshot is a pure
        probe (cache counters untouched) and is what
        ``repro.retrieval.persistence.dump_warm_artifacts`` writes to
        disk so a restarted (or freshly forked) worker can hydrate
        instead of re-deriving the offline phase.
        """
        return dict(self._spec_cache.snapshot())

    def install_warm_state(self, artifacts) -> int:
        """Load previously exported warm artifacts into the cache.

        Entries already present are left untouched (their recency and
        the counters are not distorted); returns how many artifacts were
        actually installed.  The inverse of :meth:`export_warm_state`.

        The cache stays bounded: installing more artifacts than
        ``spec_cache_size`` evicts the earliest-installed ones, exactly
        as serving them would.  Size the cache to the saved artifact
        count (an export never exceeds the donor's bound) when the
        "re-warm fetches nothing" guarantee must hold in full.
        """
        installed = 0
        for spec_query, cached in dict(artifacts).items():
            if spec_query not in self._spec_cache:
                self._spec_cache.put(spec_query, tuple(cached))
                installed += 1
        return installed

    def build_task(
        self, query: str, specializations: SpecializationSet
    ) -> DiversificationTask | None:
        """Steps (b)+(c) inputs: retrieve, vectorise and score utilities."""
        candidates = self.engine.search(query, self.config.candidates)
        if not len(candidates):
            return None
        vectors = dict(self.engine.snippet_vectors(query, candidates))
        spec_results: dict[str, ResultList] = {}
        for spec_query, _p in specializations:
            results, spec_vectors = self._spec_results(spec_query)
            spec_results[spec_query] = results
            for doc_id, vector in spec_vectors.items():
                vectors.setdefault(doc_id, vector)
        matrix = UtilityMatrix.build(
            candidates,
            spec_results,
            vectors,
            threshold=self.config.threshold,
        )
        task = DiversificationTask.create(
            query=query,
            candidates=candidates,
            specializations=specializations,
            utilities=matrix,
            lambda_=self.config.lambda_,
            relevance_method=self.config.relevance_method,
        )
        task.vectors = vectors
        return task

    # -- main entry point -----------------------------------------------------------

    def diversify_query(self, query: str) -> DiversifiedResult:
        """Run the full pipeline for one query.

        Unambiguous queries (Algorithm 1 returns ∅) get the plain baseline
        top-k — the paper only diversifies when detection triggers.
        """
        return self.diversify_detected(query, self.detect(query))

    def diversify_detected(
        self, query: str, specializations: SpecializationSet
    ) -> DiversifiedResult:
        """Steps (b)+(c) for a query whose detection already ran.

        The serving layer batches step (a) across many queries and then
        ranks each one through here, so detection is never run twice for
        the same query in a batch.  The whole pass runs pinned to one
        engine snapshot, so a concurrent epoch publish cannot leave the
        result straddling two collections.
        """
        with self._pin_engine():
            return self._diversify_pinned(query, specializations)

    def _diversify_pinned(
        self, query: str, specializations: SpecializationSet
    ) -> DiversifiedResult:
        if not specializations:
            baseline = self.engine.search(query, self.config.k)
            return DiversifiedResult(
                query=query,
                ranking=baseline.doc_ids,
                diversified=False,
                baseline=baseline,
                specializations=specializations,
            )
        task = self.build_task(query, specializations)
        if task is None:
            return DiversifiedResult(
                query=query,
                ranking=[],
                diversified=False,
                baseline=ResultList(query, []),
                specializations=specializations,
            )
        ranking = self.diversifier.diversify(task, self.config.k)
        return DiversifiedResult(
            query=query,
            ranking=ranking,
            diversified=True,
            baseline=task.candidates,
            specializations=specializations,
            task=task,
            algorithm=self.diversifier.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiversificationFramework(diversifier={self.diversifier.name}, "
            f"k={self.config.k})"
        )

"""IASelect — greedy approximation of QL Diversify(k) (Section 3.1.1).

Agrawal et al.'s Diversify(k) objective, re-cast over query-log
specializations (Eq. 4)::

    P(S|q) = Σ_{q'∈S_q} P(q'|q) · (1 − Π_{d∈S} (1 − Ũ(d|R_q')))

The objective is submodular, so the greedy algorithm that repeatedly adds
the document with the largest *marginal* gain achieves a (1 − 1/e)
approximation (Nemhauser et al.).  The marginal gain of a document d
given the current solution S is::

    g(d|S) = Σ_{q'} [ P(q'|q) · Π_{dj∈S}(1 − Ũ(dj|R_q')) ] · Ũ(d|R_q')

The bracketed residual weight ``W(q')`` shrinks as a specialization gets
covered, steering later picks toward uncovered intents.  Each of the k
iterations rescans all remaining candidates against all specializations:
cost Σ_{i=1..k} |S_q|·(n−i) = O(n·k) for constant |S_q| (Table 1).

Ties (including the all-zero-marginal case produced by aggressive utility
thresholds) are broken by the baseline rank, so with no utility signal
IASelect degrades to the baseline ranking — the behaviour Table 3 shows
at c ≥ 0.75.
"""

from __future__ import annotations

from repro.core.base import Diversifier, DiversifierStats
from repro.core.task import DiversificationTask

__all__ = ["IASelect"]


class IASelect(Diversifier):
    """Greedy weighted-coverage diversification (Agrawal et al., adapted)."""

    name = "IASelect"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()

        specializations = task.specializations
        if len(specializations) > k:
            specializations = specializations.top(k)
        utilities = task.utilities

        # Residual weights W(q') = P(q'|q) · Π_{dj∈S}(1 − Ũ(dj|R_q')).
        residual: dict[str, float] = {spec: p for spec, p in specializations}

        remaining: list[str] = task.candidates.doc_ids
        rank_of = task.candidates.rank_of
        selected: list[str] = []
        selected_set: set[str] = set()

        for _ in range(k):
            best_doc: str | None = None
            best_gain = -1.0
            best_rank = 0
            for doc_id in remaining:
                if doc_id in selected_set:
                    continue
                gain = 0.0
                for spec, weight in residual.items():
                    if weight > 0.0:
                        gain += weight * utilities.value(doc_id, spec)
                    stats.marginal_updates += 1
                rank = rank_of(doc_id)
                if gain > best_gain or (gain == best_gain and rank < best_rank):
                    best_doc, best_gain, best_rank = doc_id, gain, rank
            if best_doc is None:
                break
            selected.append(best_doc)
            selected_set.add(best_doc)
            for spec in residual:
                residual[spec] *= 1.0 - utilities.value(best_doc, spec)

        stats.operations = stats.marginal_updates
        stats.selected = len(selected)
        self.last_stats = stats
        return selected

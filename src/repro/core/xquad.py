"""xQuAD — greedy approximation of xQuAD Diversify(k) (Section 3.1.2).

Santos et al.'s probabilistic framework selects, at every step, the
document d* ∈ R \\ S maximising Eq. (5)::

    (1 − λ) · P(d|q) + λ · P(d, S̄|q)

where the novelty term (Eq. 6) is::

    P(d, S̄|q) = Σ_{q'∈S_q} P(q'|q) · P(d|q') · Π_{dj∈S} (1 − P(dj|q'))

with ``P(d|q')`` measured by the normalised utility Ũ(d|R_q') as the
paper prescribes for its query-log instantiation.  Like IASelect it
re-scans the remaining candidates at every one of the k iterations —
cost Σ_{i=1..k} |S_q|·(n−i) = O(n·k) (Table 1) — but unlike IASelect it
also mixes in the relevance P(d|q), so its rankings stay anchored to the
baseline.

Ties break by baseline rank; with all utilities thresholded away the
score reduces to (1 − λ)·P(d|q) and the algorithm returns the baseline
ranking (Table 3's c ≥ 0.75 rows).
"""

from __future__ import annotations

from repro.core.base import Diversifier, DiversifierStats
from repro.core.task import DiversificationTask

__all__ = ["XQuAD"]


class XQuAD(Diversifier):
    """Greedy relevance/novelty mixture diversification (Santos et al.)."""

    name = "xQuAD"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()

        specializations = task.specializations
        if len(specializations) > k:
            specializations = specializations.top(k)
        utilities = task.utilities
        lam = task.lambda_

        # Coverage state Π_{dj∈S}(1 − Ũ(dj|R_q')) per specialization.
        coverage: dict[str, float] = {spec: 1.0 for spec, _ in specializations}
        probability = dict(specializations.items)

        remaining = task.candidates.doc_ids
        rank_of = task.candidates.rank_of
        relevance = task.relevance
        selected: list[str] = []
        selected_set: set[str] = set()

        for _ in range(k):
            best_doc: str | None = None
            best_score = float("-inf")
            best_rank = 0
            for doc_id in remaining:
                if doc_id in selected_set:
                    continue
                novelty = 0.0
                for spec, cov in coverage.items():
                    if cov > 0.0:
                        novelty += (
                            probability[spec]
                            * utilities.value(doc_id, spec)
                            * cov
                        )
                    stats.marginal_updates += 1
                score = (1.0 - lam) * relevance.get(doc_id, 0.0) + lam * novelty
                rank = rank_of(doc_id)
                if score > best_score or (score == best_score and rank < best_rank):
                    best_doc, best_score, best_rank = doc_id, score, rank
            if best_doc is None:
                break
            selected.append(best_doc)
            selected_set.add(best_doc)
            for spec in coverage:
                coverage[spec] *= 1.0 - utilities.value(best_doc, spec)

        stats.operations = stats.marginal_updates
        stats.selected = len(selected)
        self.last_stats = stats
        return selected

"""Shared numpy kernels of the greedy diversifiers.

Every kernel consumes a :class:`~repro.core.arrays.TaskArrays` (plus
scalars) and returns **candidate indices** in selection order; mapping
back to doc_ids, stats bookkeeping and the pure-Python fallbacks live in
:mod:`repro.core.fast`.  Keeping the kernels free of task/Diversifier
types makes them unit-testable on raw arrays and reusable by the serving
layer's batch ranking path.

Selection-equivalence contract (asserted in the test suite): each kernel
reproduces its reference implementation's ranking exactly, including tie
breaks.  Ties are broken by baseline rank everywhere, which ``argmax``
over candidate-ordered arrays yields for free (first maximiser wins), and
the bounded-retention kernel replicates
:class:`~repro.core.heaps.BoundedMaxHeap`'s earlier-insertion-wins rule
with a stable argsort.  That contract is what allows the kernel-backed
diversifiers to be the framework-wide *default* whenever numpy is
present (:func:`repro.core.framework.default_diversifier`): swapping the
kernels in or out changes latency, never a served ranking.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro.core.kernels requires numpy; install it or use the "
        "pure-Python algorithms in repro.core"
    ) from _exc

from repro.core.arrays import BatchArrays, TaskArrays

__all__ = [
    "overall_utilities",
    "xquad_select",
    "iaselect_select",
    "mmr_select",
    "bounded_retention",
    "overall_utilities_batch",
    "xquad_select_batch",
    "iaselect_select_batch",
    "mmr_select_batch",
]

#: ``bounded_retention`` switches from a full stable sort to an
#: ``argpartition`` partial top-k once the offered pool is this many
#: times larger than the capacity — below that a sort's cache behaviour
#: wins, above it the O(n) selection does.
PARTIAL_TOPK_FACTOR = 4


def overall_utilities(arrays: TaskArrays, lambda_: float) -> "_np.ndarray":
    """Equation (9) for every candidate at once.

    Ũ(d|q) = (1−λ)·|S_q|·P(d|q) + λ·Σ_{q'} P(q'|q)·Ũ(d|R_q') — the
    additive per-document score OptSelect ranks by; one dense
    matrix-vector product replaces n·m dict lookups.
    """
    coverage = arrays.utilities @ arrays.probabilities
    return (1.0 - lambda_) * arrays.m * arrays.relevance + lambda_ * coverage


def xquad_select(arrays: TaskArrays, lambda_: float, k: int) -> list[int]:
    """Greedy xQuAD (Eq. 5/6): k passes of one dense mat-vec each."""
    coverage = _np.ones(arrays.m)
    taken = _np.zeros(arrays.n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, arrays.n)):
        novelty = arrays.utilities @ (arrays.probabilities * coverage)
        scores = (1.0 - lambda_) * arrays.relevance + lambda_ * novelty
        scores[taken] = -_np.inf
        best = int(_np.argmax(scores))
        if scores[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        coverage *= 1.0 - arrays.utilities[best]
    return selected


def iaselect_select(arrays: TaskArrays, k: int) -> list[int]:
    """Greedy IASelect: marginal gains against shrinking residuals."""
    residual = arrays.probabilities.copy()
    taken = _np.zeros(arrays.n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, arrays.n)):
        gains = arrays.utilities @ residual
        gains[taken] = -_np.inf
        best = int(_np.argmax(gains))
        if gains[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        residual *= 1.0 - arrays.utilities[best]
    return selected


def mmr_select(
    similarity: "_np.ndarray",
    relevance: "_np.ndarray",
    lambda_: float,
    k: int,
) -> list[int]:
    """Greedy MMR over a precomputed candidate-candidate cosine matrix.

    ``redundancy`` is the running max similarity to the selected set —
    one vectorised ``maximum`` per pick instead of |S| cosines per
    remaining candidate.
    """
    n = len(relevance)
    redundancy = _np.zeros(n)
    taken = _np.zeros(n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, n)):
        scores = lambda_ * relevance - (1.0 - lambda_) * redundancy
        scores[taken] = -_np.inf
        best = int(_np.argmax(scores))
        if scores[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        redundancy = _np.maximum(redundancy, similarity[best])
    return selected


def bounded_retention(
    values: "_np.ndarray",
    capacity: int,
    offered: "_np.ndarray | None" = None,
) -> "_np.ndarray":
    """Indices a :class:`BoundedMaxHeap` of *capacity* would retain.

    ``offered`` are the candidate indices pushed, in index (= insertion)
    order; ``None`` offers every index.  The heap keeps the
    top-*capacity* by ``values``, earlier insertions winning ties.  A
    stable argsort on ``-values`` reproduces that rule: equal values stay
    in ascending-index (insertion) order.  Returned indices are ascending
    (candidate order).

    When the capacity is small relative to the offered pool (k ≪ n — the
    paper-scale serving regime: |R_q| = 25k candidates feeding heaps of
    ⌊k·P⌋+1) the full O(n log n) sort is replaced by an O(n)
    ``argpartition``: everything strictly above the capacity-th largest
    value is retained, and the boundary ties are filled earliest-index
    first — exactly the heap's earlier-insertion-wins rule, so the
    retained set is identical to the stable-sort path's.
    """
    if offered is None:
        offered = _np.arange(len(values))
    if capacity <= 0:
        return offered[:0]
    if len(offered) > capacity:
        vals = values[offered]
        if len(offered) >= PARTIAL_TOPK_FACTOR * capacity:
            part = _np.argpartition(-vals, capacity - 1)
            threshold = vals[part[capacity - 1]]
            keep = _np.nonzero(vals > threshold)[0]
            tied = _np.nonzero(vals == threshold)[0]
            keep = _np.concatenate([keep, tied[: capacity - len(keep)]])
            offered = _np.sort(offered[keep])
        else:
            order = _np.argsort(-vals, kind="stable")
            offered = _np.sort(offered[order[:capacity]])
    return offered


# ---------------------------------------------------------------------------
# Cross-query fused kernels
# ---------------------------------------------------------------------------
#
# The batched variants below advance a whole query group through one numpy
# call per greedy step instead of looping the per-query kernels in Python.
# They consume a :class:`~repro.core.arrays.BatchArrays` (padded 3-D
# stacking with validity masks) and uphold the same selection-equivalence
# contract as the per-query kernels: for every stacked query, the returned
# index sequence equals what the per-query kernel returns on that query's
# own ``TaskArrays`` — including tie breaks.  Two properties make that
# hold:
#
# * padding is arithmetically inert — padded probability entries are zero
#   (exact ``0.0`` terms in every coverage/novelty sum) and padded
#   candidate rows are masked to ``-inf`` before every argmax;
# * padded candidates sit *after* the real ones along the candidate axis,
#   so ``argmax``'s first-maximiser rule scans candidates in exactly the
#   per-query order.
#
# The batched reductions run through numpy's stacked ``matmul`` rather
# than B separate mat-vecs; as with every kernel in this module, scores
# that are mathematically tied are computed exactly in the regimes the
# identity sweep pins (sums of exactly-representable terms), so the
# tie-break contract survives the change of reduction order.


def _lambda_column(lambda_) -> "_np.ndarray":
    """λ broadcastable across a batch's rows.

    Accepts a scalar shared by the whole group or a ``(B,)`` vector of
    per-query trade-offs.  Either way the arithmetic stays elementwise
    per row, so each query sees exactly the scalar expression of its
    per-query kernel.
    """
    lam = _np.asarray(lambda_, dtype=float)
    return lam[:, None] if lam.ndim == 1 else lam


def overall_utilities_batch(batch: BatchArrays, lambda_) -> "_np.ndarray":
    """Equation (9) for every candidate of every stacked query at once.

    One stacked matrix-vector product over the ``B × n_pad × m_pad``
    utility tensor replaces B kernel launches.  ``lambda_`` may be a
    scalar or a ``(B,)`` per-query vector.  The relevance term scales
    by each query's *true* |S_q| (``batch.ms``), not the padded width.
    Rows beyond a query's true n hold meaningless zeros — consumers index
    ``[:n_b]`` per query.
    """
    lam = _lambda_column(lambda_)
    coverage = _np.matmul(
        batch.utilities, batch.probabilities[:, :, None]
    )[:, :, 0]
    return (
        (1.0 - lam) * batch.ms[:, None] * batch.relevance
        + lam * coverage
    )


def _greedy_limits(batch: BatchArrays, k: int) -> "_np.ndarray":
    """Per-query greedy step budget: ``min(k, n_b)``, like the kernels."""
    return _np.minimum(k, batch.ns)


def xquad_select_batch(
    batch: BatchArrays, lambda_, k: int
) -> list[list[int]]:
    """Batched greedy xQuAD: all stacked queries advance one pick per
    vectorised argmax.  ``lambda_`` may be a scalar or a ``(B,)``
    per-query vector.  Per query, identical to :func:`xquad_select`."""
    lam = _lambda_column(lambda_)
    rows = _np.arange(batch.batch)
    coverage = _np.ones((batch.batch, batch.m_pad))
    taken = ~batch.valid
    limits = _greedy_limits(batch, k)
    steps = _np.zeros(batch.batch, dtype=_np.int64)
    selected: list[list[int]] = [[] for _ in range(batch.batch)]
    active = steps < limits
    while active.any():
        weighted = batch.probabilities * coverage
        novelty = _np.matmul(batch.utilities, weighted[:, :, None])[:, :, 0]
        scores = (1.0 - lam) * batch.relevance + lam * novelty
        scores[taken] = -_np.inf
        best = _np.argmax(scores, axis=1)
        advancing = active & (scores[rows, best] != -_np.inf)
        if not advancing.any():
            break
        picked = best[advancing]
        for b, i in zip(_np.nonzero(advancing)[0], picked):
            selected[b].append(int(i))
        taken[advancing, picked] = True
        coverage[advancing] *= 1.0 - batch.utilities[advancing, picked]
        steps[advancing] += 1
        active = steps < limits
    return selected


def iaselect_select_batch(batch: BatchArrays, k: int) -> list[list[int]]:
    """Batched greedy IASelect; per query identical to
    :func:`iaselect_select`."""
    rows = _np.arange(batch.batch)
    residual = batch.probabilities.copy()
    taken = ~batch.valid
    limits = _greedy_limits(batch, k)
    steps = _np.zeros(batch.batch, dtype=_np.int64)
    selected: list[list[int]] = [[] for _ in range(batch.batch)]
    active = steps < limits
    while active.any():
        gains = _np.matmul(batch.utilities, residual[:, :, None])[:, :, 0]
        gains[taken] = -_np.inf
        best = _np.argmax(gains, axis=1)
        advancing = active & (gains[rows, best] != -_np.inf)
        if not advancing.any():
            break
        picked = best[advancing]
        for b, i in zip(_np.nonzero(advancing)[0], picked):
            selected[b].append(int(i))
        taken[advancing, picked] = True
        residual[advancing] *= 1.0 - batch.utilities[advancing, picked]
        steps[advancing] += 1
        active = steps < limits
    return selected


def mmr_select_batch(
    similarity: "_np.ndarray",
    relevance: "_np.ndarray",
    valid: "_np.ndarray",
    lambda_: float,
    k: int,
) -> list[list[int]]:
    """Batched greedy MMR over stacked cosine matrices.

    ``similarity`` is ``B × n_pad × n_pad`` (see
    :func:`~repro.core.arrays.stacked_similarity`), ``relevance`` and the
    boolean ``valid`` mask are ``B × n_pad``.  Per query identical to
    :func:`mmr_select`.
    """
    rows = _np.arange(len(relevance))
    redundancy = _np.zeros_like(relevance)
    taken = ~valid
    limits = _np.minimum(k, valid.sum(axis=1))
    steps = _np.zeros(len(relevance), dtype=_np.int64)
    selected: list[list[int]] = [[] for _ in range(len(relevance))]
    active = steps < limits
    while active.any():
        scores = lambda_ * relevance - (1.0 - lambda_) * redundancy
        scores[taken] = -_np.inf
        best = _np.argmax(scores, axis=1)
        advancing = active & (scores[rows, best] != -_np.inf)
        if not advancing.any():
            break
        picked = best[advancing]
        for b, i in zip(_np.nonzero(advancing)[0], picked):
            selected[b].append(int(i))
        taken[advancing, picked] = True
        redundancy[advancing] = _np.maximum(
            redundancy[advancing], similarity[advancing, picked]
        )
        steps[advancing] += 1
        active = steps < limits
    return selected

"""Shared numpy kernels of the greedy diversifiers.

Every kernel consumes a :class:`~repro.core.arrays.TaskArrays` (plus
scalars) and returns **candidate indices** in selection order; mapping
back to doc_ids, stats bookkeeping and the pure-Python fallbacks live in
:mod:`repro.core.fast`.  Keeping the kernels free of task/Diversifier
types makes them unit-testable on raw arrays and reusable by the serving
layer's batch ranking path.

Selection-equivalence contract (asserted in the test suite): each kernel
reproduces its reference implementation's ranking exactly, including tie
breaks.  Ties are broken by baseline rank everywhere, which ``argmax``
over candidate-ordered arrays yields for free (first maximiser wins), and
the bounded-retention kernel replicates
:class:`~repro.core.heaps.BoundedMaxHeap`'s earlier-insertion-wins rule
with a stable argsort.  That contract is what allows the kernel-backed
diversifiers to be the framework-wide *default* whenever numpy is
present (:func:`repro.core.framework.default_diversifier`): swapping the
kernels in or out changes latency, never a served ranking.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro.core.kernels requires numpy; install it or use the "
        "pure-Python algorithms in repro.core"
    ) from _exc

from repro.core.arrays import TaskArrays

__all__ = [
    "overall_utilities",
    "xquad_select",
    "iaselect_select",
    "mmr_select",
    "bounded_retention",
]


def overall_utilities(arrays: TaskArrays, lambda_: float) -> "_np.ndarray":
    """Equation (9) for every candidate at once.

    Ũ(d|q) = (1−λ)·|S_q|·P(d|q) + λ·Σ_{q'} P(q'|q)·Ũ(d|R_q') — the
    additive per-document score OptSelect ranks by; one dense
    matrix-vector product replaces n·m dict lookups.
    """
    coverage = arrays.utilities @ arrays.probabilities
    return (1.0 - lambda_) * arrays.m * arrays.relevance + lambda_ * coverage


def xquad_select(arrays: TaskArrays, lambda_: float, k: int) -> list[int]:
    """Greedy xQuAD (Eq. 5/6): k passes of one dense mat-vec each."""
    coverage = _np.ones(arrays.m)
    taken = _np.zeros(arrays.n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, arrays.n)):
        novelty = arrays.utilities @ (arrays.probabilities * coverage)
        scores = (1.0 - lambda_) * arrays.relevance + lambda_ * novelty
        scores[taken] = -_np.inf
        best = int(_np.argmax(scores))
        if scores[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        coverage *= 1.0 - arrays.utilities[best]
    return selected


def iaselect_select(arrays: TaskArrays, k: int) -> list[int]:
    """Greedy IASelect: marginal gains against shrinking residuals."""
    residual = arrays.probabilities.copy()
    taken = _np.zeros(arrays.n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, arrays.n)):
        gains = arrays.utilities @ residual
        gains[taken] = -_np.inf
        best = int(_np.argmax(gains))
        if gains[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        residual *= 1.0 - arrays.utilities[best]
    return selected


def mmr_select(
    similarity: "_np.ndarray",
    relevance: "_np.ndarray",
    lambda_: float,
    k: int,
) -> list[int]:
    """Greedy MMR over a precomputed candidate-candidate cosine matrix.

    ``redundancy`` is the running max similarity to the selected set —
    one vectorised ``maximum`` per pick instead of |S| cosines per
    remaining candidate.
    """
    n = len(relevance)
    redundancy = _np.zeros(n)
    taken = _np.zeros(n, dtype=bool)
    selected: list[int] = []
    for _ in range(min(k, n)):
        scores = lambda_ * relevance - (1.0 - lambda_) * redundancy
        scores[taken] = -_np.inf
        best = int(_np.argmax(scores))
        if scores[best] == -_np.inf:
            break
        taken[best] = True
        selected.append(best)
        redundancy = _np.maximum(redundancy, similarity[best])
    return selected


def bounded_retention(
    values: "_np.ndarray",
    capacity: int,
    offered: "_np.ndarray | None" = None,
) -> "_np.ndarray":
    """Indices a :class:`BoundedMaxHeap` of *capacity* would retain.

    ``offered`` are the candidate indices pushed, in index (= insertion)
    order; ``None`` offers every index.  The heap keeps the
    top-*capacity* by ``values``, earlier insertions winning ties.  A
    stable argsort on ``-values`` reproduces that rule: equal values stay
    in ascending-index (insertion) order.  Returned indices are ascending
    (candidate order).
    """
    if offered is None:
        offered = _np.arange(len(values))
    if capacity <= 0:
        return offered[:0]
    if len(offered) > capacity:
        order = _np.argsort(-values[offered], kind="stable")
        offered = _np.sort(offered[order[:capacity]])
    return offered

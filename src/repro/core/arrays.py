"""Dense task representation — the shared substrate of the fast kernels.

A :class:`TaskArrays` is the dense (numpy) view of one
:class:`~repro.core.task.DiversificationTask`:

* ``doc_ids`` — the candidates of ``R_q`` in baseline-rank order;
* ``utilities`` — the ``n × m`` matrix Ũ(d|R_q') (zero where the sparse
  :class:`~repro.core.utility.UtilityMatrix` has no entry);
* ``probabilities`` — the specialization distribution P(q'|q) (length m);
* ``relevance`` — P(d|q) per candidate (length n).

It is built **once per task** (lazily, via
:meth:`DiversificationTask.arrays`) and consumed by every kernel-backed
diversifier in :mod:`repro.core.fast`, so a batch of algorithms — or the
serving layer ranking the same task under several configurations — pays
the densification cost a single time.  The candidate index map is hoisted
out of the per-specialization loop, so construction is O(n·m̄) in the
number of non-zero utilities instead of the seed's O(n·m).

numpy is an optional dependency: importing this module without numpy
raises ``ImportError`` with a clear message and the pure-Python
algorithms keep working.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro.core.arrays requires numpy; install it or use the pure-Python "
        "algorithms in repro.core"
    ) from _exc

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.task import DiversificationTask

__all__ = ["TaskArrays", "BatchArrays", "stacked_similarity"]


class TaskArrays:
    """Dense ``(doc_ids, U[n×m], p[m], rel[n])`` views of one task.

    Instances are read-only by convention: every kernel treats the arrays
    as constants and keeps its mutable state (coverage, residuals, taken
    masks) in private copies.
    """

    __slots__ = (
        "doc_ids",
        "index_of",
        "spec_queries",
        "probabilities",
        "utilities",
        "relevance",
        "_vector_matrix",
        "_vector_token",
    )

    def __init__(
        self,
        doc_ids: list[str],
        spec_queries: list[str],
        probabilities,
        utilities,
        relevance,
        index_of: dict[str, int] | None = None,
    ) -> None:
        self.doc_ids = list(doc_ids)
        self.spec_queries = list(spec_queries)
        self.probabilities = _np.asarray(probabilities, dtype=_np.float64)
        self.utilities = _np.asarray(utilities, dtype=_np.float64)
        self.relevance = _np.asarray(relevance, dtype=_np.float64)
        self.index_of = index_of or {d: i for i, d in enumerate(self.doc_ids)}
        self._vector_matrix = None
        self._vector_token = None
        if self.utilities.shape != (len(self.doc_ids), len(self.spec_queries)):
            raise ValueError(
                f"utilities shape {self.utilities.shape} does not match "
                f"(n={len(self.doc_ids)}, m={len(self.spec_queries)})"
            )

    @classmethod
    def from_task(cls, task: "DiversificationTask") -> "TaskArrays":
        """Densify *task* in one pass over the sparse utility rows."""
        specializations = task.specializations
        doc_ids = task.candidates.doc_ids
        n, m = len(doc_ids), len(specializations)
        # Hoisted out of the per-specialization loop: one dict for all m
        # columns (the seed rebuilt it m times).
        index_of = {d: i for i, d in enumerate(doc_ids)}
        utilities = _np.zeros((n, m), dtype=_np.float64)
        probabilities = _np.empty(m, dtype=_np.float64)
        spec_queries: list[str] = []
        for j, (spec, p) in enumerate(specializations):
            spec_queries.append(spec)
            probabilities[j] = p
            for doc_id, value in task.utilities.useful_docs(spec).items():
                i = index_of.get(doc_id)
                if i is not None:
                    utilities[i, j] = value
        relevance = _np.array(
            [task.relevance.get(d, 0.0) for d in doc_ids], dtype=_np.float64
        )
        return cls(
            doc_ids=doc_ids,
            spec_queries=spec_queries,
            probabilities=probabilities,
            utilities=utilities,
            relevance=relevance,
            index_of=index_of,
        )

    # -- shape ----------------------------------------------------------------

    @property
    def n(self) -> int:
        """|R_q| — number of candidates (matrix rows)."""
        return len(self.doc_ids)

    @property
    def m(self) -> int:
        """|S_q| — number of specializations (matrix columns)."""
        return len(self.spec_queries)

    def head(self, m: int) -> "TaskArrays":
        """The first *m* specializations with renormalised probabilities.

        Mirrors :meth:`SpecializationSet.top` exactly — including its
        pure-Python renormalisation sum — so kernel-backed diversifiers
        that truncate ``S_q`` to k specializations see bit-identical
        probabilities to their reference implementations.
        """
        if m >= self.m:
            return self
        kept = self.probabilities[:m].tolist()
        total = sum(kept)
        return TaskArrays(
            doc_ids=self.doc_ids,
            spec_queries=self.spec_queries[:m],
            probabilities=[p / total for p in kept],
            utilities=self.utilities[:, :m],
            relevance=self.relevance,
            index_of=self.index_of,
        )

    # -- candidate-candidate similarity (MMR) -----------------------------------

    def _vector_rows(self, vectors, term_index: dict[str, int]):
        """Per-candidate sparse weight rows, extending *term_index* in place.

        One shared ``term_index`` can span several tasks (the fused batch
        path builds a whole MMR group against a single index instead of
        rebuilding one per task); the cosine values do not depend on the
        column order, only the build cost does.
        """
        rows: list[dict[str, float]] = []
        for doc_id in self.doc_ids:
            vector = vectors.get(doc_id)
            weights = vector.weights if vector is not None else {}
            for term in weights:
                if term not in term_index:
                    term_index[term] = len(term_index)
            rows.append(weights)
        return rows

    def _densify_rows(self, rows, term_index: dict[str, int]) -> "_np.ndarray":
        dense = _np.zeros((self.n, max(1, len(term_index))))
        for i, weights in enumerate(rows):
            for term, w in weights.items():
                dense[i, term_index[term]] = w
        return dense

    def similarity_matrix(self, vectors) -> "_np.ndarray":
        """Dense ``n × n`` cosine matrix of the candidate surrogates.

        ``vectors`` maps doc_id → :class:`~repro.retrieval.similarity.TermVector`
        (already L2-normalised); candidates without a vector get an all-zero
        row, i.e. similarity 0 with everything, matching
        :func:`repro.retrieval.similarity.cosine` on empty vectors.  Built
        lazily and memoized on an identity-stable token: the tuple of the
        per-candidate vector *objects* themselves.  A caller that rebuilds
        the mapping around the same ``TermVector`` instances (tasks share
        vectors across ``with_lambda``/``with_threshold`` copies, and the
        serving layer rebuilds its vector dicts per batch) still hits the
        memo, while swapping any candidate's vector for a different object
        is detected and rebuilds — the old ``is``-comparison against the
        whole mapping missed both cases.  MMR is the only consumer.
        """
        token = tuple(vectors.get(doc_id) for doc_id in self.doc_ids)
        if self._vector_matrix is None or self._vector_token != token:
            term_index: dict[str, int] = {}
            rows = self._vector_rows(vectors, term_index)
            dense = self._densify_rows(rows, term_index)
            self._vector_matrix = _np.clip(dense @ dense.T, 0.0, 1.0)
            self._vector_token = token
        return self._vector_matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskArrays(n={self.n}, m={self.m})"


class BatchArrays:
    """B :class:`TaskArrays` stacked into padded 3-D tensors.

    The cross-query fused kernels (:mod:`repro.core.kernels`'s
    ``*_batch`` functions) consume one of these instead of looping over
    B separate dense views: the per-query ``n_b × m_b`` matrices are
    right/bottom-padded with zeros into one ``B × n_pad × m_pad`` tensor
    so a whole query group advances through a single numpy call per
    greedy step.

    Padding is *inert by construction*: padded probability entries are
    zero (they contribute exact ``0.0`` terms to every coverage sum) and
    ``valid`` masks padded candidate rows out of every argmax, always
    *after* the real candidates — so the first-maximiser tie rule sees
    candidates in exactly the per-query order.  ``ns``/``ms`` keep each
    query's true shape (Eq. 9 scales by the true |S_q|, not the padded
    width).

    ``fill_ratio`` is the fraction of the stacked utility tensor holding
    real data; the serving planner refuses groups that would pad too
    wastefully (see ``repro.serving.service``).
    """

    __slots__ = (
        "sources",
        "utilities",
        "probabilities",
        "relevance",
        "valid",
        "ns",
        "ms",
    )

    def __init__(self, sources: list[TaskArrays]) -> None:
        if not sources:
            raise ValueError("cannot stack an empty batch")
        self.sources = list(sources)
        n_pad = max(a.n for a in self.sources)
        m_pad = max(1, max(a.m for a in self.sources))
        batch = len(self.sources)
        self.utilities = _np.zeros((batch, n_pad, m_pad), dtype=_np.float64)
        self.probabilities = _np.zeros((batch, m_pad), dtype=_np.float64)
        self.relevance = _np.zeros((batch, n_pad), dtype=_np.float64)
        self.valid = _np.zeros((batch, n_pad), dtype=bool)
        self.ns = _np.array([a.n for a in self.sources], dtype=_np.int64)
        self.ms = _np.array([a.m for a in self.sources], dtype=_np.int64)
        for b, a in enumerate(self.sources):
            self.utilities[b, : a.n, : a.m] = a.utilities
            self.probabilities[b, : a.m] = a.probabilities
            self.relevance[b, : a.n] = a.relevance
            self.valid[b, : a.n] = True

    @classmethod
    def stack(cls, sources) -> "BatchArrays":
        """Stack an iterable of :class:`TaskArrays` (any shapes)."""
        return cls(list(sources))

    # -- shape ----------------------------------------------------------------

    @property
    def batch(self) -> int:
        """B — number of stacked queries."""
        return len(self.sources)

    @property
    def n_pad(self) -> int:
        return self.utilities.shape[1]

    @property
    def m_pad(self) -> int:
        return self.utilities.shape[2]

    @property
    def filled_cells(self) -> int:
        """Σ n_b·m_b — utility cells holding real (unpadded) data."""
        return int((self.ns * self.ms).sum())

    @property
    def padded_cells(self) -> int:
        """B·n_pad·m_pad — total cells of the stacked utility tensor."""
        return self.batch * self.n_pad * self.m_pad

    @property
    def fill_ratio(self) -> float:
        """Real-data fraction of the stacked tensor (1.0 = no padding)."""
        return self.filled_cells / self.padded_cells if self.padded_cells else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchArrays(batch={self.batch}, n_pad={self.n_pad}, "
            f"m_pad={self.m_pad}, fill={self.fill_ratio:.2f})"
        )


def stacked_similarity(batch: BatchArrays, vectors_list) -> "_np.ndarray":
    """``B × n_pad × n_pad`` candidate-cosine tensor for a fused MMR group.

    ``vectors_list`` aligns with ``batch.sources``: one doc_id →
    :class:`~repro.retrieval.similarity.TermVector` mapping per stacked
    task.  One *shared* term index spans the whole group — the fused
    batch path used to rebuild an index per task; the cosine values are
    independent of column order, so sharing the index only removes
    redundant dict building.  Padded rows/columns stay zero (similarity
    0 with everything), which the batched MMR kernel masks out anyway.
    """
    if len(vectors_list) != batch.batch:
        raise ValueError("vectors_list must align with the stacked tasks")
    term_index: dict[str, int] = {}
    all_rows = [
        arrays._vector_rows(vectors, term_index)
        for arrays, vectors in zip(batch.sources, vectors_list)
    ]
    similarity = _np.zeros(
        (batch.batch, batch.n_pad, batch.n_pad), dtype=_np.float64
    )
    for b, (arrays, rows) in enumerate(zip(batch.sources, all_rows)):
        dense = arrays._densify_rows(rows, term_index)
        similarity[b, : arrays.n, : arrays.n] = _np.clip(
            dense @ dense.T, 0.0, 1.0
        )
    return similarity

"""Dense task representation — the shared substrate of the fast kernels.

A :class:`TaskArrays` is the dense (numpy) view of one
:class:`~repro.core.task.DiversificationTask`:

* ``doc_ids`` — the candidates of ``R_q`` in baseline-rank order;
* ``utilities`` — the ``n × m`` matrix Ũ(d|R_q') (zero where the sparse
  :class:`~repro.core.utility.UtilityMatrix` has no entry);
* ``probabilities`` — the specialization distribution P(q'|q) (length m);
* ``relevance`` — P(d|q) per candidate (length n).

It is built **once per task** (lazily, via
:meth:`DiversificationTask.arrays`) and consumed by every kernel-backed
diversifier in :mod:`repro.core.fast`, so a batch of algorithms — or the
serving layer ranking the same task under several configurations — pays
the densification cost a single time.  The candidate index map is hoisted
out of the per-specialization loop, so construction is O(n·m̄) in the
number of non-zero utilities instead of the seed's O(n·m).

numpy is an optional dependency: importing this module without numpy
raises ``ImportError`` with a clear message and the pure-Python
algorithms keep working.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro.core.arrays requires numpy; install it or use the pure-Python "
        "algorithms in repro.core"
    ) from _exc

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.task import DiversificationTask

__all__ = ["TaskArrays"]


class TaskArrays:
    """Dense ``(doc_ids, U[n×m], p[m], rel[n])`` views of one task.

    Instances are read-only by convention: every kernel treats the arrays
    as constants and keeps its mutable state (coverage, residuals, taken
    masks) in private copies.
    """

    __slots__ = (
        "doc_ids",
        "index_of",
        "spec_queries",
        "probabilities",
        "utilities",
        "relevance",
        "_vector_matrix",
        "_vector_source",
    )

    def __init__(
        self,
        doc_ids: list[str],
        spec_queries: list[str],
        probabilities,
        utilities,
        relevance,
        index_of: dict[str, int] | None = None,
    ) -> None:
        self.doc_ids = list(doc_ids)
        self.spec_queries = list(spec_queries)
        self.probabilities = _np.asarray(probabilities, dtype=_np.float64)
        self.utilities = _np.asarray(utilities, dtype=_np.float64)
        self.relevance = _np.asarray(relevance, dtype=_np.float64)
        self.index_of = index_of or {d: i for i, d in enumerate(self.doc_ids)}
        self._vector_matrix = None
        self._vector_source = None
        if self.utilities.shape != (len(self.doc_ids), len(self.spec_queries)):
            raise ValueError(
                f"utilities shape {self.utilities.shape} does not match "
                f"(n={len(self.doc_ids)}, m={len(self.spec_queries)})"
            )

    @classmethod
    def from_task(cls, task: "DiversificationTask") -> "TaskArrays":
        """Densify *task* in one pass over the sparse utility rows."""
        specializations = task.specializations
        doc_ids = task.candidates.doc_ids
        n, m = len(doc_ids), len(specializations)
        # Hoisted out of the per-specialization loop: one dict for all m
        # columns (the seed rebuilt it m times).
        index_of = {d: i for i, d in enumerate(doc_ids)}
        utilities = _np.zeros((n, m), dtype=_np.float64)
        probabilities = _np.empty(m, dtype=_np.float64)
        spec_queries: list[str] = []
        for j, (spec, p) in enumerate(specializations):
            spec_queries.append(spec)
            probabilities[j] = p
            for doc_id, value in task.utilities.useful_docs(spec).items():
                i = index_of.get(doc_id)
                if i is not None:
                    utilities[i, j] = value
        relevance = _np.array(
            [task.relevance.get(d, 0.0) for d in doc_ids], dtype=_np.float64
        )
        return cls(
            doc_ids=doc_ids,
            spec_queries=spec_queries,
            probabilities=probabilities,
            utilities=utilities,
            relevance=relevance,
            index_of=index_of,
        )

    # -- shape ----------------------------------------------------------------

    @property
    def n(self) -> int:
        """|R_q| — number of candidates (matrix rows)."""
        return len(self.doc_ids)

    @property
    def m(self) -> int:
        """|S_q| — number of specializations (matrix columns)."""
        return len(self.spec_queries)

    def head(self, m: int) -> "TaskArrays":
        """The first *m* specializations with renormalised probabilities.

        Mirrors :meth:`SpecializationSet.top` exactly — including its
        pure-Python renormalisation sum — so kernel-backed diversifiers
        that truncate ``S_q`` to k specializations see bit-identical
        probabilities to their reference implementations.
        """
        if m >= self.m:
            return self
        kept = self.probabilities[:m].tolist()
        total = sum(kept)
        return TaskArrays(
            doc_ids=self.doc_ids,
            spec_queries=self.spec_queries[:m],
            probabilities=[p / total for p in kept],
            utilities=self.utilities[:, :m],
            relevance=self.relevance,
            index_of=self.index_of,
        )

    # -- candidate-candidate similarity (MMR) -----------------------------------

    def similarity_matrix(self, vectors) -> "_np.ndarray":
        """Dense ``n × n`` cosine matrix of the candidate surrogates.

        ``vectors`` maps doc_id → :class:`~repro.retrieval.similarity.TermVector`
        (already L2-normalised); candidates without a vector get an all-zero
        row, i.e. similarity 0 with everything, matching
        :func:`repro.retrieval.similarity.cosine` on empty vectors.  Built
        lazily and memoized per *vectors* mapping (a different mapping
        object rebuilds the matrix; mutating one in place after a build
        is not supported) — MMR is the only consumer.
        """
        if self._vector_matrix is None or self._vector_source is not vectors:
            term_index: dict[str, int] = {}
            rows: list[dict[str, float]] = []
            for doc_id in self.doc_ids:
                vector = vectors.get(doc_id)
                weights = vector.weights if vector is not None else {}
                for term in weights:
                    if term not in term_index:
                        term_index[term] = len(term_index)
                rows.append(weights)
            dense = _np.zeros((self.n, max(1, len(term_index))))
            for i, weights in enumerate(rows):
                for term, w in weights.items():
                    dense[i, term_index[term]] = w
            self._vector_matrix = _np.clip(dense @ dense.T, 0.0, 1.0)
            self._vector_source = vectors
        return self._vector_matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskArrays(n={self.n}, m={self.m})"

"""Maximal Marginal Relevance (Carbonell & Goldstein, SIGIR'98).

The pioneering diversification method the paper's related-work section
opens with.  It is not part of the paper's evaluation, but it is the
standard extra baseline any diversification toolkit ships, and the
ablation benchmarks use it as a query-log-free reference point::

    MMR(d) = λ · sim1(d, q) − (1 − λ) · max_{dj ∈ S} sim2(d, dj)

We use the task's relevance estimate P(d|q) as ``sim1`` and the cosine
between candidate surrogate vectors as ``sim2`` — so MMR needs the task's
``vectors`` to be populated (the framework does this automatically).

Greedy selection over k iterations costs O(n·k) pairwise similarities.
"""

from __future__ import annotations

from repro.core.base import Diversifier, DiversifierStats
from repro.core.task import DiversificationTask
from repro.retrieval.similarity import cosine

__all__ = ["MMR"]


class MMR(Diversifier):
    """The classic relevance-vs-redundancy greedy re-ranker.

    Parameters
    ----------
    lambda_:
        MMR's own trade-off (1.0 = pure relevance, 0.0 = pure novelty).
        Note this is *not* the task's λ: the paper's λ weights coverage of
        specializations, MMR's weights redundancy among selected items.
    """

    name = "MMR"

    def __init__(self, lambda_: float = 0.7) -> None:
        super().__init__()
        if not 0.0 <= lambda_ <= 1.0:
            raise ValueError("lambda_ must lie in [0, 1]")
        self.lambda_ = lambda_

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        if not task.vectors:
            raise ValueError(
                "MMR needs candidate surrogate vectors in task.vectors"
            )
        stats = DiversifierStats()
        lam = self.lambda_
        relevance = task.relevance
        vectors = task.vectors
        rank_of = task.candidates.rank_of

        selected: list[str] = []
        selected_set: set[str] = set()
        remaining = task.candidates.doc_ids

        for _ in range(k):
            best_doc: str | None = None
            best_score = float("-inf")
            best_rank = 0
            for doc_id in remaining:
                if doc_id in selected_set:
                    continue
                redundancy = 0.0
                vector = vectors.get(doc_id)
                if vector is not None:
                    for picked in selected:
                        other = vectors.get(picked)
                        if other is not None:
                            redundancy = max(redundancy, cosine(vector, other))
                        stats.marginal_updates += 1
                score = lam * relevance.get(doc_id, 0.0) - (1.0 - lam) * redundancy
                rank = rank_of(doc_id)
                if score > best_score or (score == best_score and rank < best_rank):
                    best_doc, best_score, best_rank = doc_id, score, rank
            if best_doc is None:
                break
            selected.append(best_doc)
            selected_set.add(best_doc)

        stats.operations = stats.marginal_updates
        stats.selected = len(selected)
        self.last_stats = stats
        return selected

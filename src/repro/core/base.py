"""Common interface and instrumentation for diversification algorithms.

Every algorithm consumes a :class:`~repro.core.task.DiversificationTask`
and produces a ranking of ``k`` doc_ids.  They also record an *operation
count* of their dominant loop — the quantity Table 1 reasons about
(``O(nk)`` for the greedy baselines vs ``O(n log k)`` for OptSelect) —
so the complexity benchmark can verify asymptotic shape independently of
wall-clock noise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.task import DiversificationTask

__all__ = ["DiversifierStats", "Diversifier"]


@dataclass
class DiversifierStats:
    """Counters of the last :meth:`Diversifier.diversify` call.

    ``operations`` counts the dominant-loop steps (marginal-utility
    updates for the greedy algorithms, heap pushes for OptSelect);
    ``selected`` is the size of the returned set.
    """

    operations: int = 0
    heap_pushes: int = 0
    marginal_updates: int = 0
    selected: int = 0
    extra: dict = field(default_factory=dict)


class Diversifier(ABC):
    """Base class: re-rank a candidate list into a diversified top-k."""

    #: Human-readable algorithm name, as used in the paper's tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.last_stats = DiversifierStats()

    @abstractmethod
    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        """Return up to *k* doc_ids, best-first."""

    def _check_k(self, task: DiversificationTask, k: int) -> int:
        if k <= 0:
            raise ValueError("k must be positive")
        return min(k, task.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"

"""Turning retrieval scores into the relevance probability P(d|q).

Both xQuAD (Eq. 5) and MaxUtility Diversify(k) (Eq. 7) mix the utility
signal with "the likelihood of document d being observed given q", written
P(d|q).  The paper does not specify how the baseline DPH score becomes a
probability, so this module offers the standard choices and documents the
default (min–max normalisation — monotone, bounded in [0, 1], and
parameter free, in keeping with DPH itself).  DESIGN.md §5 records this
decision.
"""

from __future__ import annotations

import math

from repro.retrieval.engine import ResultList

__all__ = [
    "minmax_relevance",
    "sum_relevance",
    "softmax_relevance",
    "reciprocal_rank_relevance",
    "estimate_relevance",
]


def minmax_relevance(results: ResultList) -> dict[str, float]:
    """Min–max normalise scores into [0, 1] (the library default).

    A single-result list maps to 1.0; an empty list to {}.
    """
    if not len(results):
        return {}
    scores = results.scores
    lo, hi = min(scores), max(scores)
    if hi == lo:
        return {r.doc_id: 1.0 for r in results}
    span = hi - lo
    return {r.doc_id: (r.score - lo) / span for r in results}


def sum_relevance(results: ResultList) -> dict[str, float]:
    """Score-mass normalisation: P(d|q) = score(d) / Σ scores (clamped ≥ 0).

    This treats the retrieval scores as unnormalised probability mass, the
    reading under which xQuAD's Eq. (5) was designed: P(d|q) is a proper
    distribution over the candidate list, so per-document differences are
    small and the λ-weighted diversity term can reorder documents.  This
    is the framework default (DESIGN.md §5).

    Negative scores (possible with DFR models on poor matches) are
    clamped to zero before normalising.
    """
    if not len(results):
        return {}
    clamped = {r.doc_id: max(r.score, 0.0) for r in results}
    total = sum(clamped.values())
    if total <= 0:
        uniform = 1.0 / len(results)
        return {doc_id: uniform for doc_id in clamped}
    return {doc_id: score / total for doc_id, score in clamped.items()}


def softmax_relevance(results: ResultList, temperature: float = 1.0) -> dict[str, float]:
    """Softmax over scores: a proper distribution summing to 1."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    if not len(results):
        return {}
    peak = max(results.scores)
    exps = {r.doc_id: math.exp((r.score - peak) / temperature) for r in results}
    total = sum(exps.values())
    return {doc_id: value / total for doc_id, value in exps.items()}


def reciprocal_rank_relevance(results: ResultList) -> dict[str, float]:
    """Score-free fallback: P(d|q) = 1 / rank(d).

    Useful when re-ranking third-party lists that expose order but not
    scores (the Appendix C setting with an external WSE).
    """
    return {r.doc_id: 1.0 / r.rank for r in results}


_ESTIMATORS = {
    "minmax": minmax_relevance,
    "sum": sum_relevance,
    "softmax": softmax_relevance,
    "reciprocal": reciprocal_rank_relevance,
}


def estimate_relevance(results: ResultList, method: str = "minmax") -> dict[str, float]:
    """Dispatch to a named estimator.

    >>> rl = ResultList("q", [("d1", 4.0), ("d2", 2.0)])
    >>> estimate_relevance(rl)["d1"]
    1.0
    """
    try:
        estimator = _ESTIMATORS[method]
    except KeyError:
        raise ValueError(
            f"unknown relevance estimator {method!r}; choose from {sorted(_ESTIMATORS)}"
        ) from None
    return estimator(results)

"""Kernel-backed (numpy) variants of all four diversifiers.

The reference implementations in :mod:`repro.core.optselect`,
:mod:`repro.core.xquad`, :mod:`repro.core.iaselect` and
:mod:`repro.core.mmr` are pure Python and instrumented — they are what
the complexity experiments measure.  Their per-iteration dict loops make
the paper's largest Table 2 cells (|R_q| = 100k, k = 1000) take tens of
minutes in the interpreter, so this module provides drop-in variants
built on the shared dense layer:

* :class:`~repro.core.arrays.TaskArrays` — the ``(doc_ids, U[n×m],
  p[m], rel[n])`` view built once per task (``task.arrays()``);
* :mod:`repro.core.kernels` — the common numpy selection kernels.

The asymptotics are unchanged (the paper's point survives vectorisation —
OptSelect still wins by ~k/log k); only the constant shrinks by ~50×.

**Selection-identical guarantee.**  Every ``Fast*`` class reproduces its
reference implementation's ranking *exactly*, including tie breaks
(baseline rank everywhere; earlier-insertion-wins in the bounded-heap
phase).  The test suite asserts equality on randomised tasks.  That
guarantee is what lets these classes be the library **default**: when
numpy is importable, :func:`repro.core.framework.default_diversifier`
returns :class:`FastOptSelect`, so a framework or serving layer built
without an explicit diversifier runs on the kernels.  The instrumented
pure-Python references remain what the complexity experiments (Tables 1
and 2) measure, and what the default falls back to without numpy.

numpy is an optional dependency: importing this module without numpy
installed raises ``ImportError`` with a clear message, and the rest of
the library is unaffected.
"""

from __future__ import annotations

import math

from repro.core import kernels
from repro.core.arrays import BatchArrays, TaskArrays, stacked_similarity
from repro.core.base import Diversifier, DiversifierStats
from repro.core.mmr import MMR
from repro.core.optselect import OptSelect
from repro.core.profiling import NULL_TIMER
from repro.core.task import DiversificationTask

import numpy as _np

__all__ = [
    "FastOptSelect",
    "FastXQuAD",
    "FastIASelect",
    "FastMMR",
    "get_fast_diversifier",
    "fused_capable",
    "fused_shape",
    "diversify_fused",
]


def _dense_inputs(task: DiversificationTask):
    """(doc_ids, U[n×m], p[m], rel[n]) dense views of the task.

    Retained for backwards compatibility; the dense view now lives in
    :class:`~repro.core.arrays.TaskArrays` and is memoized on the task.
    """
    arrays = task.arrays()
    return arrays.doc_ids, arrays.utilities, arrays.probabilities, arrays.relevance


def _truncated_arrays(task: DiversificationTask, k: int) -> TaskArrays:
    """The task's dense view, truncated to its k most probable
    specializations exactly like ``SpecializationSet.top(k)``."""
    arrays = task.arrays()
    if arrays.m > k:
        arrays = arrays.head(k)
    return arrays


class FastXQuAD(Diversifier):
    """Vectorised xQuAD; selection-identical to :class:`~repro.core.xquad.XQuAD`.

    Ties are broken by baseline rank exactly as in the reference: scores
    are compared in candidate order and ``argmax`` returns the first
    (lowest-rank) maximiser.
    """

    name = "xQuAD-fast"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()
        arrays = _truncated_arrays(task, k)
        picks = kernels.xquad_select(arrays, task.lambda_, k)
        stats.marginal_updates = arrays.utilities.size * len(picks)
        stats.operations = stats.marginal_updates
        stats.selected = len(picks)
        self.last_stats = stats
        return [arrays.doc_ids[i] for i in picks]


class FastIASelect(Diversifier):
    """Vectorised IASelect; selection-identical to the reference.

    The reference breaks zero-gain ties by baseline rank; ``argmax`` over
    candidate order reproduces that.
    """

    name = "IASelect-fast"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()
        arrays = _truncated_arrays(task, k)
        picks = kernels.iaselect_select(arrays, k)
        stats.marginal_updates = arrays.utilities.size * len(picks)
        stats.operations = stats.marginal_updates
        stats.selected = len(picks)
        self.last_stats = stats
        return [arrays.doc_ids[i] for i in picks]


class FastMMR(MMR):
    """Vectorised MMR; selection-identical to :class:`~repro.core.mmr.MMR`.

    The candidate-candidate cosine matrix is materialised once from the
    task's surrogate vectors (cached on the dense view); each greedy pick
    then costs one vectorised max-update instead of |S| sparse cosines
    per remaining candidate.
    """

    name = "MMR-fast"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        if not task.vectors:
            raise ValueError(
                "MMR needs candidate surrogate vectors in task.vectors"
            )
        stats = DiversifierStats()
        arrays = task.arrays()
        similarity = arrays.similarity_matrix(task.vectors)
        picks = kernels.mmr_select(
            similarity, arrays.relevance, self.lambda_, k
        )
        stats.marginal_updates = arrays.n * len(picks)
        stats.operations = stats.marginal_updates
        stats.selected = len(picks)
        self.last_stats = stats
        return [arrays.doc_ids[i] for i in picks]


class FastOptSelect(OptSelect):
    """Kernel-backed OptSelect; selection-identical to the reference.

    Overrides the two O(n·|S_q|) stages of Algorithm 2 — the Eq. 9 pass
    and the heap routing — with dense kernels, and inherits the
    selection phase unchanged.  :func:`kernels.bounded_retention`
    replicates :class:`~repro.core.heaps.BoundedMaxHeap`'s
    earlier-insertion-wins tie rule, so the retained pools (and hence
    the final ranking) match the reference exactly.
    """

    name = "OptSelect-fast"

    def _overall_utilities(self, task, specializations, stats):
        # Eq. 9 uses the task's *full* specialization set (the reference
        # truncates only the heap phase), so the kernel runs on the
        # untruncated arrays.
        arrays = task.arrays()
        overall = kernels.overall_utilities(arrays, task.lambda_)
        stats.marginal_updates += arrays.n * max(1, len(specializations))
        return dict(zip(arrays.doc_ids, overall.tolist()))

    def _build_pools(self, task, specializations, overall, k, stats):
        arrays = _truncated_arrays(task, k)
        utilities = arrays.utilities
        doc_ids = arrays.doc_ids
        rank_of = task.candidates.rank_of

        useful_mask = _np.zeros(arrays.n, dtype=bool)
        spec_pools: dict[str, list[str]] = {}
        pushes = 0
        for j, (spec, p) in enumerate(specializations):
            column = utilities[:, j]
            positive = column > 0.0
            offered = _np.nonzero(positive)[0]
            useful_mask |= positive
            pushes += len(offered)
            capacity = math.floor(k * p) + 1
            retained = kernels.bounded_retention(column, capacity, offered)
            docs = [doc_ids[i] for i in retained]
            docs.sort(key=lambda d: (-overall[d], rank_of(d)))
            spec_pools[spec] = docs

        not_useful = _np.nonzero(~useful_mask)[0]
        pushes += len(not_useful)
        overall_values = _np.array([overall[doc_ids[i]] for i in not_useful])
        retained = kernels.bounded_retention(overall_values, k)
        general_pool = [doc_ids[not_useful[i]] for i in retained]
        general_pool.sort(key=lambda d: (-overall[d], rank_of(d)))

        stats.heap_pushes = pushes
        stats.operations = stats.heap_pushes
        return spec_pools, general_pool


# ---------------------------------------------------------------------------
# Cross-query fused execution
# ---------------------------------------------------------------------------
#
# A batch of same-algorithm tasks can be pushed through the batched
# kernels in :mod:`repro.core.kernels` as one padded 3-D stack instead of
# a Python loop of per-query kernel launches.  The executors below do the
# stacking, kernel dispatch and map-back per algorithm; grouping policy
# (which tasks to stack together, when padding is too wasteful) lives in
# the serving layer's planner, which calls :func:`fused_shape` to reason
# about shapes and :func:`diversify_fused` to execute a group.
#
# The selection-identity contract extends unchanged: for every task in
# the group, the fused ranking equals ``diversifier.diversify(task, k)``
# including tie breaks.  The ``timer`` hooks feed the ``--profile`` mode
# of ``repro.experiments.throughput``.


def _record_stats(diversifier, arrays: TaskArrays, picks) -> None:
    """Mirror the per-query classes' stats bookkeeping for one task."""
    stats = DiversifierStats()
    stats.marginal_updates = arrays.utilities.size * len(picks)
    stats.operations = stats.marginal_updates
    stats.selected = len(picks)
    diversifier.last_stats = stats


def _fused_xquad(diversifier, tasks, k, timer):
    with timer.stage("densify"):
        arrays_list = [
            _truncated_arrays(task, diversifier._check_k(task, k))
            for task in tasks
        ]
        batch = BatchArrays(arrays_list)
    with timer.stage("select"):
        lambdas = _np.array([task.lambda_ for task in tasks])
        picks = kernels.xquad_select_batch(batch, lambdas, k)
    with timer.stage("map-back"):
        rankings = []
        for arrays, sel in zip(arrays_list, picks):
            rankings.append([arrays.doc_ids[i] for i in sel])
            _record_stats(diversifier, arrays, sel)
    return rankings


def _fused_iaselect(diversifier, tasks, k, timer):
    with timer.stage("densify"):
        arrays_list = [
            _truncated_arrays(task, diversifier._check_k(task, k))
            for task in tasks
        ]
        batch = BatchArrays(arrays_list)
    with timer.stage("select"):
        picks = kernels.iaselect_select_batch(batch, k)
    with timer.stage("map-back"):
        rankings = []
        for arrays, sel in zip(arrays_list, picks):
            rankings.append([arrays.doc_ids[i] for i in sel])
            _record_stats(diversifier, arrays, sel)
    return rankings


def _fused_mmr(diversifier, tasks, k, timer):
    for task in tasks:
        if not task.vectors:
            raise ValueError(
                "MMR needs candidate surrogate vectors in task.vectors"
            )
    with timer.stage("densify"):
        arrays_list = [task.arrays() for task in tasks]
        batch = BatchArrays(arrays_list)
        similarity = stacked_similarity(
            batch, [task.vectors for task in tasks]
        )
    with timer.stage("select"):
        picks = kernels.mmr_select_batch(
            similarity, batch.relevance, batch.valid, diversifier.lambda_, k
        )
    with timer.stage("map-back"):
        rankings = []
        for arrays, sel in zip(arrays_list, picks):
            rankings.append([arrays.doc_ids[i] for i in sel])
            stats = DiversifierStats()
            stats.marginal_updates = arrays.n * len(sel)
            stats.operations = stats.marginal_updates
            stats.selected = len(sel)
            diversifier.last_stats = stats
    return rankings


def _fused_optselect(diversifier, tasks, k, timer):
    # Eq. 9 uses the full specialization set, so the stacked matmul runs
    # on the untruncated arrays; the heap/selection machinery then runs
    # per query through OptSelect._select, unchanged — which is what
    # keeps the fused ranking identical to the per-query one.
    with timer.stage("densify"):
        arrays_list = [task.arrays() for task in tasks]
        batch = BatchArrays(arrays_list)
    with timer.stage("score"):
        lambdas = _np.array([task.lambda_ for task in tasks])
        overall = kernels.overall_utilities_batch(batch, lambdas)
    rankings = []
    with timer.stage("select"):
        for b, task in enumerate(tasks):
            kk = diversifier._check_k(task, k)
            stats = DiversifierStats()
            specializations = task.specializations
            if len(specializations) > kk:
                specializations = specializations.top(kk)
            arrays = arrays_list[b]
            scores = dict(
                zip(arrays.doc_ids, overall[b, : arrays.n].tolist())
            )
            stats.marginal_updates += arrays.n * max(1, len(specializations))
            rankings.append(
                diversifier._select(task, specializations, scores, kk, stats)
            )
    return rankings


#: Exact type → group executor.  Exact-type matching is deliberate: a
#: subclass may override per-query behaviour the fused path knows nothing
#: about, so anything not literally one of the four Fast classes falls
#: back to the per-query loop.
_FUSED_EXECUTORS = {
    FastOptSelect: _fused_optselect,
    FastXQuAD: _fused_xquad,
    FastIASelect: _fused_iaselect,
    FastMMR: _fused_mmr,
}


def fused_capable(diversifier: Diversifier) -> bool:
    """True iff *diversifier* has a fused group executor."""
    return type(diversifier) in _FUSED_EXECUTORS


def fused_shape(
    diversifier: Diversifier, task: DiversificationTask, k: int
) -> tuple[int, int]:
    """Rows × cols of the dominant stacked tensor *task* contributes.

    This is what the serving planner buckets and pads on: xQuAD and
    IASelect stack their k-truncated utility matrices, OptSelect its full
    Eq. 9 matrix, MMR its n × n cosine matrix.  The planner uses these
    shapes both to group compatible queries and to account pad fill.
    """
    arrays = task.arrays()
    kind = type(diversifier)
    if kind is FastMMR:
        return arrays.n, arrays.n
    if kind is FastOptSelect:
        return arrays.n, max(1, arrays.m)
    return arrays.n, max(1, min(arrays.m, min(k, arrays.n)))


def diversify_fused(
    diversifier: Diversifier,
    tasks: list[DiversificationTask],
    k: int,
    timer=NULL_TIMER,
) -> list[list[str]]:
    """Diversify a same-algorithm group of tasks through batched kernels.

    Returns one ranking per task, in task order; each equals
    ``diversifier.diversify(task, k)`` exactly, including tie breaks.
    Raises ``ValueError`` for diversifiers without a fused executor
    (check :func:`fused_capable` first).
    """
    try:
        executor = _FUSED_EXECUTORS[type(diversifier)]
    except KeyError:
        raise ValueError(
            f"no fused executor for {type(diversifier).__name__}; "
            "use the per-query diversify loop"
        ) from None
    if not tasks:
        return []
    return executor(diversifier, tasks, k, timer)


def get_fast_diversifier(name: str, **kwargs) -> Diversifier:
    """Instantiate a kernel-backed algorithm by its paper name.

    Accepts the same names as
    :func:`repro.core.framework.get_diversifier` (case-insensitive,
    with or without a ``-fast`` suffix).
    """
    registry = {
        "optselect": FastOptSelect,
        "iaselect": FastIASelect,
        "xquad": FastXQuAD,
        "mmr": FastMMR,
    }
    key = name.lower().removesuffix("-fast")
    try:
        factory = registry[key]
    except KeyError:
        raise ValueError(
            f"unknown diversifier {name!r}; choose from {sorted(registry)}"
        ) from None
    return factory(**kwargs)

"""Vectorised (numpy) variants of the greedy diversifiers.

The reference implementations in :mod:`repro.core.xquad` and
:mod:`repro.core.iaselect` are pure Python and instrumented — they are
what the complexity experiments measure.  Their O(n·k·|S_q|) inner loops
make the paper's largest Table 2 cells (|R_q| = 100k, k = 1000) take tens
of minutes in the interpreter, so this module provides drop-in variants
whose per-iteration marginal computation is a dense numpy product.  The
asymptotics are unchanged (the paper's point survives vectorisation —
OptSelect still wins by ~k/log k); only the constant shrinks by ~50×.

Equivalence with the reference implementations is asserted in the test
suite on randomised tasks.

numpy is an optional dependency: importing this module without numpy
installed raises ``ImportError`` with a clear message, and the rest of
the library is unaffected.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError as _exc:  # pragma: no cover - environment dependent
    raise ImportError(
        "repro.core.fast requires numpy; install it or use the pure-Python "
        "algorithms in repro.core"
    ) from _exc

from repro.core.base import Diversifier, DiversifierStats
from repro.core.task import DiversificationTask

__all__ = ["FastXQuAD", "FastIASelect"]


def _dense_inputs(task: DiversificationTask):
    """(doc_ids, U[n×m], p[m], rel[n]) dense views of the task."""
    specializations = task.specializations
    doc_ids = task.candidates.doc_ids
    n, m = len(doc_ids), len(specializations)
    utilities = _np.zeros((n, m), dtype=_np.float64)
    probabilities = _np.empty(m, dtype=_np.float64)
    for j, (spec, p) in enumerate(specializations):
        probabilities[j] = p
        useful = task.utilities.useful_docs(spec)
        if useful:
            index_of = {d: i for i, d in enumerate(doc_ids)}
            for doc_id, value in useful.items():
                i = index_of.get(doc_id)
                if i is not None:
                    utilities[i, j] = value
    relevance = _np.array(
        [task.relevance.get(d, 0.0) for d in doc_ids], dtype=_np.float64
    )
    return doc_ids, utilities, probabilities, relevance


class FastXQuAD(Diversifier):
    """Vectorised xQuAD; selection-identical to :class:`~repro.core.xquad.XQuAD`.

    Ties are broken by baseline rank exactly as in the reference: scores
    are compared in candidate order and ``argmax`` returns the first
    (lowest-rank) maximiser.
    """

    name = "xQuAD-fast"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()
        specializations = task.specializations
        if len(specializations) > k:
            specializations = specializations.top(k)
            task = DiversificationTask(
                query=task.query,
                candidates=task.candidates,
                specializations=specializations,
                utilities=task.utilities,
                relevance=task.relevance,
                lambda_=task.lambda_,
                vectors=task.vectors,
            )
        doc_ids, utilities, probabilities, relevance = _dense_inputs(task)
        lam = task.lambda_
        coverage = _np.ones(len(probabilities))
        taken = _np.zeros(len(doc_ids), dtype=bool)
        selected: list[str] = []
        for _ in range(k):
            novelty = utilities @ (probabilities * coverage)
            scores = (1.0 - lam) * relevance + lam * novelty
            scores[taken] = -_np.inf
            best = int(_np.argmax(scores))
            stats.marginal_updates += utilities.size
            if scores[best] == -_np.inf:
                break
            taken[best] = True
            selected.append(doc_ids[best])
            coverage *= 1.0 - utilities[best]
        stats.operations = stats.marginal_updates
        stats.selected = len(selected)
        self.last_stats = stats
        return selected


class FastIASelect(Diversifier):
    """Vectorised IASelect; selection-identical to the reference.

    The reference breaks zero-gain ties by baseline rank; ``argmax`` over
    candidate order reproduces that.
    """

    name = "IASelect-fast"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()
        specializations = task.specializations
        if len(specializations) > k:
            specializations = specializations.top(k)
            task = DiversificationTask(
                query=task.query,
                candidates=task.candidates,
                specializations=specializations,
                utilities=task.utilities,
                relevance=task.relevance,
                lambda_=task.lambda_,
                vectors=task.vectors,
            )
        doc_ids, utilities, probabilities, _relevance = _dense_inputs(task)
        residual = probabilities.copy()
        taken = _np.zeros(len(doc_ids), dtype=bool)
        selected: list[str] = []
        for _ in range(k):
            gains = utilities @ residual
            gains[taken] = -_np.inf
            best = int(_np.argmax(gains))
            stats.marginal_updates += utilities.size
            if gains[best] == -_np.inf:
                break
            taken[best] = True
            selected.append(doc_ids[best])
            residual *= 1.0 - utilities[best]
        stats.operations = stats.marginal_updates
        stats.selected = len(selected)
        self.last_stats = stats
        return selected

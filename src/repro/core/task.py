"""The shared input contract of every diversification algorithm.

A :class:`DiversificationTask` packages everything Section 3's three
problem formulations consume:

* the candidate list ``R_q`` (with its baseline ranking and scores),
* the specialization distribution ``S_q`` with ``P(q'|q)`` (Definition 1),
* the precomputed normalised utilities ``Ũ(d|R_q')`` (Definition 2),
* the relevance estimates ``P(d|q)``,
* the mixing parameter ``λ``.

Keeping the inputs in one immutable-ish object makes the three algorithms
interchangeable (same task in, same kind of ranking out) and lets the
benchmark harness build a workload once and hand it to each competitor —
exactly how the paper times them (Section 4, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet
from repro.core.relevance import estimate_relevance
from repro.core.utility import UtilityMatrix
from repro.retrieval.engine import ResultList

__all__ = ["DiversificationTask"]


@dataclass
class DiversificationTask:
    """Inputs of one diversification invocation.

    ``relevance`` maps each candidate doc_id to P(d|q) ∈ [0, 1]; omitted
    documents are treated as P(d|q) = 0.
    """

    query: str
    candidates: ResultList
    specializations: SpecializationSet
    utilities: UtilityMatrix
    relevance: dict[str, float] = field(default_factory=dict)
    lambda_: float = 0.15
    #: Optional surrogate vectors of the candidates (doc_id → TermVector).
    #: Only algorithms needing candidate-candidate similarity (MMR) use
    #: them; the paper's three algorithms work from the utility matrix.
    vectors: dict = field(default_factory=dict)
    #: Lazily-built dense view (:class:`~repro.core.arrays.TaskArrays`);
    #: never passed in — see :meth:`arrays`.
    _arrays: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_ <= 1.0:
            raise ValueError("lambda_ must lie in [0, 1]")
        missing = [
            spec
            for spec, _ in self.specializations
            if spec not in set(self.utilities.specializations)
        ]
        if missing:
            raise ValueError(
                f"utility matrix lacks specializations: {missing!r}"
            )

    @classmethod
    def create(
        cls,
        query: str,
        candidates: ResultList,
        specializations: SpecializationSet,
        utilities: UtilityMatrix,
        lambda_: float = 0.15,
        relevance_method: str = "minmax",
    ) -> "DiversificationTask":
        """Build a task, estimating P(d|q) from the candidate scores."""
        return cls(
            query=query,
            candidates=candidates,
            specializations=specializations,
            utilities=utilities,
            relevance=estimate_relevance(candidates, relevance_method),
            lambda_=lambda_,
        )

    def __getstate__(self) -> dict:
        # The dense view is a per-process memo over numpy arrays: heavy
        # on the wire and useless in a worker without numpy.  Receivers
        # rebuild it lazily on first kernel use.
        state = dict(self.__dict__)
        state["_arrays"] = None
        return state

    # -- convenience accessors ---------------------------------------------------

    def arrays(self):
        """The dense numpy view of this task, built once and memoized.

        Every kernel-backed diversifier (:mod:`repro.core.fast`) and the
        serving layer's batch ranking path consume the same
        :class:`~repro.core.arrays.TaskArrays`, so densification happens
        a single time per task regardless of how many algorithms run on
        it.  Requires numpy; raises ``ImportError`` otherwise.
        """
        if self._arrays is None:
            from repro.core.arrays import TaskArrays

            self._arrays = TaskArrays.from_task(self)
        return self._arrays

    @property
    def n(self) -> int:
        """|R_q| — the number of candidates."""
        return len(self.candidates)

    def relevance_of(self, doc_id: str) -> float:
        return self.relevance.get(doc_id, 0.0)

    def overall_utility(self, doc_id: str) -> float:
        """Equation (9): the additive per-document score OptSelect ranks by.

        Ũ(d|q) = Σ_{q'∈S_q} [(1−λ)·P(d|q) + λ·P(q'|q)·Ũ(d|R_q')]
               = (1−λ)·|S_q|·P(d|q) + λ·Σ_{q'} P(q'|q)·Ũ(d|R_q')
        """
        lam = self.lambda_
        coverage = sum(
            p_spec * self.utilities.value(doc_id, spec)
            for spec, p_spec in self.specializations
        )
        return (1.0 - lam) * len(self.specializations) * self.relevance_of(
            doc_id
        ) + lam * coverage

    def with_threshold(self, threshold: float) -> "DiversificationTask":
        """The same task with the utility threshold ``c`` re-applied."""
        return DiversificationTask(
            query=self.query,
            candidates=self.candidates,
            specializations=self.specializations,
            utilities=self.utilities.with_threshold(threshold),
            relevance=self.relevance,
            lambda_=self.lambda_,
            vectors=self.vectors,
        )

    def with_lambda(self, lambda_: float) -> "DiversificationTask":
        """The same task with a different mixing parameter (λ ablation)."""
        task = DiversificationTask(
            query=self.query,
            candidates=self.candidates,
            specializations=self.specializations,
            utilities=self.utilities,
            relevance=self.relevance,
            lambda_=lambda_,
            vectors=self.vectors,
        )
        # λ is not baked into the dense view, so the ablation sweep can
        # reuse an already-built one.
        task._arrays = self._arrays
        return task

"""Ambiguous-query detection — Algorithm 1 of the paper.

``AmbiguousQueryDetect(q, A, f(), s)``:

1. ``Ŝ_q ← A(q)`` — ask a query-recommendation algorithm ``A`` trained on
   the query log for candidate specializations of ``q``;
2. ``S_q ← { q' ∈ Ŝ_q | f(q') ≥ f(q)/s }`` — keep only candidates whose
   log popularity is at least ``1/s`` of the popularity of ``q``;
3. return ``S_q`` if ``|S_q| ≥ 2``, else the empty set (the query is not
   considered ambiguous/faceted).

Definition 1 then turns frequencies into the specialization distribution::

    P(q'|q) = f(q') / Σ_{q''∈S_q} f(q'')

Both the algorithm and the resulting :class:`SpecializationSet` are
recommender agnostic: ``A`` is any callable returning candidate queries
*present in the log* and ``f`` any frequency function, exactly as the
paper requires ("any other approach for deriving user intents from query
logs could be used and easily integrated").
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

__all__ = ["SpecializationSet", "ambiguous_query_detect", "AmbiguityDetector"]


@dataclass(frozen=True)
class SpecializationSet:
    """The mined specializations ``S_q`` of a query with ``P(q'|q)``.

    Probabilities are normalised to sum to 1 (Definition 1 assumes the
    distribution "is known and complete").

    >>> s = SpecializationSet.from_frequencies("apple",
    ...         {"apple iphone": 30, "apple fruit": 10})
    >>> s.probability("apple iphone")
    0.75
    """

    query: str
    items: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.items:
            total = sum(p for _, p in self.items)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"probabilities must sum to 1, got {total}")
            if any(p < 0 for _, p in self.items):
                raise ValueError("probabilities must be non-negative")
            if len({q for q, _ in self.items}) != len(self.items):
                raise ValueError("duplicate specialization")

    @classmethod
    def from_frequencies(
        cls, query: str, frequencies: Mapping[str, float]
    ) -> "SpecializationSet":
        """Normalise raw frequencies into ``P(q'|q)`` (Definition 1).

        Specializations are ordered by descending probability, ties broken
        lexicographically, so downstream iteration is deterministic.
        """
        total = float(sum(frequencies.values()))
        if total <= 0:
            return cls(query=query, items=())
        items = sorted(
            ((q, f / total) for q, f in frequencies.items()),
            key=lambda item: (-item[1], item[0]),
        )
        return cls(query=query, items=tuple(items))

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(q for q, _ in self.items)

    def probability(self, specialization: str) -> float:
        """``P(q'|q)``; zero for unknown specializations (Definition 1)."""
        for q, p in self.items:
            if q == specialization:
                return p
        return 0.0

    def top(self, k: int) -> "SpecializationSet":
        """Keep the *k* most probable specializations, renormalised.

        Used when ``|S_q| > k``: "we select from S_q the k specializations
        with the largest probabilities" (Section 3.1.3).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if len(self.items) <= k:
            return self
        kept = self.items[:k]
        total = sum(p for _, p in kept)
        return SpecializationSet(
            query=self.query,
            items=tuple((q, p / total) for q, p in kept),
        )

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)


def ambiguous_query_detect(
    query: str,
    recommend: Callable[[str], Sequence[str]],
    frequency: Callable[[str], float],
    s: float = 2.0,
) -> SpecializationSet:
    """Algorithm 1: detect whether *query* needs diversification.

    Parameters
    ----------
    query:
        The submitted query ``q``.
    recommend:
        The recommendation algorithm ``A``; must return candidate
        specializations present in the training log.
    frequency:
        The popularity function ``f`` over the log.
    s:
        The popularity-ratio parameter of step 2; a candidate survives if
        ``f(q') >= f(q) / s``.  Larger ``s`` admits rarer specializations.

    Returns an empty :class:`SpecializationSet` when fewer than two
    candidates survive (the query is treated as unambiguous).
    """
    if s <= 0:
        raise ValueError("s must be positive")
    candidates = recommend(query)
    threshold = frequency(query) / s
    surviving = {}
    for candidate in candidates:
        if candidate == query:
            continue
        f = frequency(candidate)
        if f >= threshold and f > 0:
            surviving[candidate] = float(f)
    if len(surviving) < 2:
        return SpecializationSet(query=query, items=())
    return SpecializationSet.from_frequencies(query, surviving)


class AmbiguityDetector:
    """Algorithm 1 bound to a concrete recommender and frequency function.

    A small convenience wrapper so callers configure ``s`` (and an optional
    cap on ``|S_q|``) once and reuse the detector across queries.
    """

    def __init__(
        self,
        recommend: Callable[[str], Sequence[str]],
        frequency: Callable[[str], float],
        s: float = 2.0,
        max_specializations: int | None = None,
    ) -> None:
        if max_specializations is not None and max_specializations < 2:
            raise ValueError("max_specializations must be at least 2")
        self._recommend = recommend
        self._frequency = frequency
        self.s = s
        self.max_specializations = max_specializations

    def detect(self, query: str) -> SpecializationSet:
        result = ambiguous_query_detect(
            query, self._recommend, self._frequency, self.s
        )
        if result and self.max_specializations is not None:
            result = result.top(self.max_specializations)
        return result

    def is_ambiguous(self, query: str) -> bool:
        return bool(self.detect(query))

    def detect_all(self, queries: Iterable[str]) -> dict[str, SpecializationSet]:
        """Detect over a query stream; only ambiguous queries are kept."""
        out: dict[str, SpecializationSet] = {}
        for query in queries:
            if query in out:
                continue
            result = self.detect(query)
            if result:
                out[query] = result
        return out

"""OptSelect — the paper's algorithm for MaxUtility Diversify(k).

Section 3.1.3 relaxes Agrawal et al.'s coverage objective into a purely
additive one (Eq. 7/8): the utility of a set is the sum of per-document
overall utilities Ũ(d|q) (Eq. 9).  Maximising an additive objective is a
top-k selection — no marginal-gain recomputation — subject to the
constraint that "every specialization is covered proportionally to its
probability" (at least ⌊k·P(q'|q)⌋ useful results per specialization).

Algorithm 2 (Appendix A) realises this with bounded heaps:

* one heap ``M_q'`` of capacity ``⌊k·P(q'|q)⌋ + 1`` per specialization,
  keeping the documents **most useful for that specialization**
  (retention ordered by Ũ(d|R_q'), line 06: pushed iff Ũ(d|R_q') > 0);
* one general heap ``M`` of capacity ``k`` receiving documents useful for
  no specialization (their Eq. 9 score reduces to the relevance term);
* a selection phase that pops "d with the max Ũ(d|q)" — the *overall*
  utility — first once per non-empty specialization heap (lines 07–09,
  guaranteeing coverage) and then fills ``S`` up to ``k`` (lines 10–12).

Every push costs O(log k), and each document is pushed at most once per
specialization, giving the paper's O(n·|S_q|·log k) bound (Table 1); the
selection phase touches only the O(k·|S_q|) retained entries.

Faithfulness note (DESIGN.md §5): the printed pseudocode fills the tail
of ``S`` only from ``M``.  When most candidates are useful for some
specialization (the common case) ``M`` holds too few documents to reach
``k`` and the proportionality constraint would never bind.  The default
mode therefore also drains the specialization heaps — up to their quota
``⌊k·P⌋ + 1``, best overall utility first — before topping up from the
baseline ranking.  ``strict_paper_pseudocode=True`` reproduces the
literal pseudocode instead (and may return fewer than *k* documents).
"""

from __future__ import annotations

import math

from repro.core.base import Diversifier, DiversifierStats
from repro.core.heaps import BoundedMaxHeap
from repro.core.task import DiversificationTask

__all__ = ["OptSelect"]


class OptSelect(Diversifier):
    """Heap-based optimal selection for the additive utility objective.

    Parameters
    ----------
    strict_paper_pseudocode:
        When True, follow Algorithm 2 to the letter (one pop per
        specialization heap, then fill from the general heap only); the
        returned list may then be shorter than *k*.  Default False — see
        the module docstring.
    """

    name = "OptSelect"

    def __init__(self, strict_paper_pseudocode: bool = False) -> None:
        super().__init__()
        self.strict_paper_pseudocode = strict_paper_pseudocode

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()

        # "if |S_q| > k we select from S_q the k specializations with the
        # largest probabilities" (Section 3.1.3).
        specializations = task.specializations
        if len(specializations) > k:
            specializations = specializations.top(k)

        overall = self._overall_utilities(task, specializations, stats)
        return self._select(task, specializations, overall, k, stats)

    def _select(
        self,
        task: DiversificationTask,
        specializations,
        overall: dict[str, float],
        k: int,
        stats: DiversifierStats,
    ) -> list[str]:
        """Algorithm 2 given the Eq. 9 scores: pools + selection phases.

        Split out of :meth:`diversify` so the fused batch path
        (:mod:`repro.core.fast`) can compute ``overall`` for a whole
        query group in one stacked matmul and still run the selection
        machinery — and hence the ranking — unchanged per query.
        """
        spec_pools, general_pool = self._build_pools(
            task, specializations, overall, k, stats
        )
        rank_of = task.candidates.rank_of

        # Lines 07-09: guarantee every non-empty specialization one slot,
        # most probable specialization first.
        selected: list[str] = []
        chosen: set[str] = set()
        consumed = {spec: 0 for spec, _ in specializations}
        for spec, _p in specializations:
            pool = spec_pools[spec]
            i = consumed[spec]
            while i < len(pool) and len(selected) < k:
                doc_id = pool[i]
                i += 1
                if doc_id not in chosen:
                    chosen.add(doc_id)
                    selected.append(doc_id)
                    break
            consumed[spec] = i

        if self.strict_paper_pseudocode:
            for doc_id in general_pool:
                if len(selected) >= k:
                    break
                if doc_id not in chosen:
                    chosen.add(doc_id)
                    selected.append(doc_id)
        else:
            self._fill_proportionally(
                task,
                specializations,
                spec_pools,
                consumed,
                general_pool,
                selected,
                chosen,
                k,
                overall,
                rank_of,
            )

        # The returned SERP keeps the *selection order* of Algorithm 2:
        # lines 07-09 put one document per specialization first (most
        # probable specialization first), then the fill phase appends by
        # descending overall utility.  Eq. 8 treats S as a set, so any
        # order maximises the objective; selection order is the one the
        # pseudocode itself produces and it front-loads coverage, which is
        # how a diversified SERP is presented (and evaluated at the
        # Table 3 rank cutoffs).
        stats.selected = len(selected)
        self.last_stats = stats
        return selected

    # -- overridable O(n·|S_q|) stages --------------------------------------------
    #
    # The two passes below dominate the runtime; the kernel-backed
    # FastOptSelect (repro.core.fast) overrides them with dense numpy
    # equivalents while reusing the selection phase above unchanged, which
    # is what keeps the two implementations ranking-identical.

    def _overall_utilities(
        self, task: DiversificationTask, specializations, stats: DiversifierStats
    ) -> dict[str, float]:
        """Eq. 9 per candidate: one pass, n·|S_q| utility lookups."""
        overall: dict[str, float] = {}
        for result in task.candidates:
            overall[result.doc_id] = task.overall_utility(result.doc_id)
            stats.marginal_updates += max(1, len(specializations))
        return overall

    def _build_pools(
        self,
        task: DiversificationTask,
        specializations,
        overall: dict[str, float],
        k: int,
        stats: DiversifierStats,
    ) -> tuple[dict[str, list[str]], list[str]]:
        """Algorithm 2 lines 02-06: route candidates into bounded heaps.

        Specialization heaps retain by per-specialization utility
        Ũ(d|R_q') — "the most useful documents for that specialization";
        the general heap retains by overall utility (its documents have
        no per-specialization signal at all).  Every heap is then drained
        once and re-ordered by the overall utility Ũ(d|q), because lines
        08 and 11 pop "d with the max Ũ(d|q)".  At most Σ(⌊kP⌋+1) + k =
        O(k) entries total.
        """
        general = BoundedMaxHeap(k)
        spec_heaps: dict[str, BoundedMaxHeap[str]] = {
            spec: BoundedMaxHeap(math.floor(k * p) + 1)
            for spec, p in specializations
        }
        utilities = task.utilities
        for result in task.candidates:
            doc_id = result.doc_id
            useful = False
            for spec, _ in specializations:
                value = utilities.value(doc_id, spec)
                if value > 0.0:
                    spec_heaps[spec].push(doc_id, value)
                    useful = True
            if not useful:
                general.push(doc_id, overall[doc_id])
        stats.heap_pushes = general.pushes + sum(
            heap.pushes for heap in spec_heaps.values()
        )
        stats.operations = stats.heap_pushes

        rank_of = task.candidates.rank_of
        spec_pools: dict[str, list[str]] = {}
        for spec, _p in specializations:
            docs = [doc_id for doc_id, _v in spec_heaps[spec].drain()]
            docs.sort(key=lambda d: (-overall[d], rank_of(d)))
            spec_pools[spec] = docs
        general_pool = [doc_id for doc_id, _v in general.drain()]
        general_pool.sort(key=lambda d: (-overall[d], rank_of(d)))
        return spec_pools, general_pool

    # -- proportional fill --------------------------------------------------------

    @staticmethod
    def _fill_proportionally(
        task: DiversificationTask,
        specializations,
        spec_pools: dict[str, list[str]],
        consumed: dict[str, int],
        general_pool: list[str],
        selected: list[str],
        chosen: set[str],
        k: int,
        overall: dict[str, float],
        rank_of,
    ) -> None:
        """Drain specialization pools up to quota, then M, then baseline.

        Entries across all pools are merged best-overall-utility-first
        while respecting each specialization's quota ``⌊k·P⌋ + 1``,
        realising the proportional-coverage constraint of MaxUtility
        Diversify(k).
        """
        quota = {spec: math.floor(k * p) + 1 for spec, p in specializations}
        taken = dict(consumed)  # phase-1 picks count against their spec

        merged: list[tuple[float, int, str, str | None]] = []
        for spec, _p in specializations:
            for doc_id in spec_pools[spec][consumed[spec] :]:
                merged.append((-overall[doc_id], rank_of(doc_id), doc_id, spec))
        for doc_id in general_pool:
            merged.append((-overall[doc_id], rank_of(doc_id), doc_id, None))
        merged.sort()

        for _neg_score, _rank, doc_id, spec in merged:
            if len(selected) >= k:
                break
            if doc_id in chosen:
                continue
            if spec is not None and taken[spec] >= quota[spec]:
                continue
            chosen.add(doc_id)
            selected.append(doc_id)
            if spec is not None:
                taken[spec] += 1

        # Degenerate workloads (everything thresholded away, tiny pools):
        # top up from the baseline ranking so |S| = k like the paper's
        # evaluated runs.
        if len(selected) < k:
            for result in task.candidates:
                if len(selected) >= k:
                    break
                if result.doc_id not in chosen:
                    chosen.add(result.doc_id)
                    selected.append(result.doc_id)

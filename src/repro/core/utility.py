"""The paper's utility measure (Definition 2) and the utility matrix.

Equation (1)::

    U(d | R_q') = Σ_{d' ∈ R_q'}  (1 − δ(d, d')) / rank(d', R_q')

"a result d ∈ R_q is more useful for specialization q' if it is very
similar to a highly ranked item contained in the results list R_q'".
δ is the cosine distance of Equation (2), computed between *snippets*
(document surrogates).

The normalised utility divides by the harmonic number of |R_q'| — the
value Eq. (1) would take if d were at distance 0 from every result::

    Ũ(d | R_q') = U(d | R_q') / H_{|R_q'|}          ∈ [0, 1]

Section 5 additionally forces the utility to 0 when it falls below a
threshold ``c`` — the knob swept in Table 3.

:class:`UtilityMatrix` precomputes Ũ for every candidate × specialization
pair once; every diversification algorithm then reads it in O(1), so the
algorithms' measured complexity (Table 2) reflects selection work, not
similarity computation — matching the paper's setting where utilities
come from precomputed specialization lists (Section 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector, cosine

__all__ = ["harmonic_number", "utility", "normalized_utility", "UtilityMatrix"]


def harmonic_number(n: int) -> float:
    """The n-th harmonic number H_n = Σ_{i=1..n} 1/i (H_0 = 0).

    >>> harmonic_number(3)
    1.8333333333333333
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return sum(1.0 / i for i in range(1, n + 1))


def utility(
    candidate_vector: TermVector,
    spec_results: ResultList,
    vectors: Mapping[str, TermVector],
) -> float:
    """Equation (1): raw utility of a candidate for one specialization.

    ``vectors`` must contain the surrogate vector of every document in
    *spec_results*; documents missing a vector contribute zero (they have
    no textual evidence).
    """
    total = 0.0
    for result in spec_results:
        spec_vector = vectors.get(result.doc_id)
        if spec_vector is None:
            continue
        similarity = cosine(candidate_vector, spec_vector)
        if similarity > 0.0:
            total += similarity / result.rank
    return total


def normalized_utility(
    candidate_vector: TermVector,
    spec_results: ResultList,
    vectors: Mapping[str, TermVector],
    threshold: float = 0.0,
) -> float:
    """Ũ of Definition 2, with the Section 5 threshold ``c`` applied.

    Values below *threshold* are forced to exactly 0, as the paper does
    ("we forced its returning value to be 0 when it is below a given
    threshold c").
    """
    n = len(spec_results)
    if n == 0:
        return 0.0
    value = utility(candidate_vector, spec_results, vectors) / harmonic_number(n)
    # Floating-point safety: Ũ is mathematically in [0, 1].
    value = min(1.0, max(0.0, value))
    if value < threshold:
        return 0.0
    return value


class UtilityMatrix:
    """Precomputed Ũ(d | R_q') for candidates × specializations.

    Stored sparsely: zero utilities (including thresholded ones) take no
    space, and :meth:`useful_docs` exposes the paper's ``R_q ⋈ q'`` —
    the candidates with strictly positive utility for a specialization,
    used by the MaxUtility Diversify(k) proportionality constraint.
    """

    def __init__(
        self,
        values: Mapping[str, Mapping[str, float]],
        candidates: Iterable[str],
        threshold: float = 0.0,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self.threshold = threshold
        self.candidates: list[str] = list(candidates)
        self._by_spec: dict[str, dict[str, float]] = {}
        for spec, row in values.items():
            kept = {}
            for doc_id, value in row.items():
                if value < 0 or value > 1 + 1e-9:
                    raise ValueError(
                        f"normalised utility out of range: {value} for"
                        f" ({doc_id!r}, {spec!r})"
                    )
                if value > 0 and value >= threshold:
                    kept[doc_id] = min(value, 1.0)
            self._by_spec[spec] = kept

    # -- constructors ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        candidates: ResultList,
        spec_results: Mapping[str, ResultList],
        vectors: Mapping[str, TermVector],
        threshold: float = 0.0,
    ) -> "UtilityMatrix":
        """Compute Ũ for every candidate against every specialization list.

        *vectors* holds surrogate vectors for both the candidates and the
        specialization results (one shared vector space).
        """
        values: dict[str, dict[str, float]] = {}
        for spec, results in spec_results.items():
            row: dict[str, float] = {}
            n = len(results)
            if n == 0:
                values[spec] = row
                continue
            h = harmonic_number(n)
            spec_vectors = [
                (r.rank, vectors.get(r.doc_id)) for r in results
            ]
            for candidate in candidates:
                cand_vector = vectors.get(candidate.doc_id)
                if cand_vector is None:
                    continue
                total = 0.0
                for rank, spec_vector in spec_vectors:
                    if spec_vector is None:
                        continue
                    sim = cosine(cand_vector, spec_vector)
                    if sim > 0.0:
                        total += sim / rank
                value = min(1.0, total / h)
                if value > 0:
                    row[candidate.doc_id] = value
            values[spec] = row
        return cls(values, candidates.doc_ids, threshold=threshold)

    # -- access ------------------------------------------------------------------

    @property
    def specializations(self) -> list[str]:
        return list(self._by_spec)

    def value(self, doc_id: str, spec: str) -> float:
        """Ũ(d|R_q'), zero when unknown or thresholded away."""
        return self._by_spec.get(spec, {}).get(doc_id, 0.0)

    def row(self, doc_id: str) -> dict[str, float]:
        """All non-zero utilities of one candidate."""
        return {
            spec: values[doc_id]
            for spec, values in self._by_spec.items()
            if doc_id in values
        }

    def useful_docs(self, spec: str) -> dict[str, float]:
        """The paper's ``R_q ⋈ q'``: candidates with Ũ > 0 for *spec*."""
        return dict(self._by_spec.get(spec, {}))

    def is_useful(self, doc_id: str, spec: str) -> bool:
        return doc_id in self._by_spec.get(spec, {})

    def with_threshold(self, threshold: float) -> "UtilityMatrix":
        """A re-thresholded copy (cheap: values are already computed).

        Table 3 sweeps ``c`` over nine values; recomputing cosines each
        time would dominate, so experiments build the matrix once at
        ``c = 0`` and re-threshold.
        """
        return UtilityMatrix(self._by_spec, self.candidates, threshold=threshold)

    def density(self) -> float:
        """Fraction of non-zero cells — a workload statistic for benches."""
        cells = len(self.candidates) * max(1, len(self._by_spec))
        nonzero = sum(len(v) for v in self._by_spec.values())
        return nonzero / cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UtilityMatrix(candidates={len(self.candidates)}, "
            f"specs={len(self._by_spec)}, threshold={self.threshold})"
        )

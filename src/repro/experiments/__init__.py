"""Experiment harnesses — one module per paper table/figure.

==================  ==========================================  =============================
Paper artefact      Module                                      CLI
==================  ==========================================  =============================
Table 1             :mod:`repro.experiments.table1`             ``python -m repro.experiments.table1``
Table 2             :mod:`repro.experiments.table2`             ``python -m repro.experiments.table2 [--full] [--fast]``
Table 3             :mod:`repro.experiments.table3`             ``python -m repro.experiments.table3 [--paper-scale]``
Serving throughput  :mod:`repro.experiments.throughput`         ``python -m repro.experiments.throughput``
Offline pipeline    :mod:`repro.experiments.offline`            ``python -m repro.experiments.offline``
Figure 1            :mod:`repro.experiments.figure1`            ``python -m repro.experiments.figure1``
Recall (App. C)     :mod:`repro.experiments.recall`             ``python -m repro.experiments.recall``
Feasibility (§4.1)  :mod:`repro.experiments.feasibility`        ``python -m repro.experiments.feasibility``
λ ablation          :mod:`repro.experiments.ablation_lambda`    ``python -m repro.experiments.ablation_lambda``
Constraint ablation :mod:`repro.experiments.ablation_constraint`  ``python -m repro.experiments.ablation_constraint``
==================  ==========================================  =============================

Shared workload builders live in :mod:`repro.experiments.workloads`.
"""

from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    WorkloadScale,
    build_trec_workload,
    synthetic_task,
)

__all__ = [
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TrecWorkload",
    "WorkloadScale",
    "build_trec_workload",
    "synthetic_task",
]

"""Ablation — OptSelect's proportional-coverage constraint.

Section 3.1.3 motivates the constraint "every specialization is covered
proportionally to its probability": without it, the additive objective of
MaxUtility Diversify(k) is maximised by a pure top-k on the overall
utility Ũ(d|q), which can starve minority specializations.  This ablation
compares three OptSelect variants on the diversity testbed:

* ``constrained`` — the default implementation (specialization heaps with
  quotas ⌊k·P⌋+1);
* ``strict-pseudocode`` — Algorithm 2 exactly as printed (one pop per
  specialization heap, fill from the general heap only);
* ``pure-topk`` — no heaps, no constraint: sort all candidates by Ũ(d|q).

Reported: α-NDCG@k, IA-P@k and the average number of subtopics covered in
the top k (subtopic recall) — the quantity the constraint protects.

Run as a script::

    python -m repro.experiments.ablation_constraint
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.core.base import Diversifier, DiversifierStats
from repro.core.optselect import OptSelect
from repro.core.task import DiversificationTask
from repro.evaluation.metrics import subtopic_recall
from repro.evaluation.runner import EvaluationReport, evaluate_run
from repro.experiments.reporting import render_table
from repro.experiments.table3 import build_topic_tasks
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)

__all__ = ["PureTopK", "ConstraintAblationResult", "run_constraint_ablation", "main"]


class PureTopK(Diversifier):
    """OptSelect without the constraint: top-k by overall utility Ũ(d|q).

    This is the unconstrained maximiser of Eq. 8 — the ablation baseline
    showing what the specialization heaps add.
    """

    name = "PureTopK"

    def diversify(self, task: DiversificationTask, k: int) -> list[str]:
        k = self._check_k(task, k)
        stats = DiversifierStats()
        scored = []
        for result in task.candidates:
            scored.append(
                (-task.overall_utility(result.doc_id), result.rank, result.doc_id)
            )
            stats.marginal_updates += max(1, len(task.specializations))
        scored.sort()
        stats.operations = stats.marginal_updates
        stats.selected = min(k, len(scored))
        self.last_stats = stats
        return [doc_id for _s, _r, doc_id in scored[:k]]


@dataclass
class ConstraintAblationResult:
    cutoff: int
    reports: dict[str, EvaluationReport] = field(default_factory=dict)
    avg_subtopic_recall: dict[str, float] = field(default_factory=dict)


def run_constraint_ablation(
    workload: TrecWorkload | None = None,
    threshold: float = 0.2,
    log_name: str = "AOL",
) -> ConstraintAblationResult:
    workload = workload or build_trec_workload(SMALL_SCALE)
    scale = workload.scale
    cutoff = scale.cutoffs[min(2, len(scale.cutoffs) - 1)]
    tasks, baseline_run = build_topic_tasks(workload, log_name)
    variants: dict[str, Diversifier] = {
        "constrained": OptSelect(),
        "strict-pseudocode": OptSelect(strict_paper_pseudocode=True),
        "pure-topk": PureTopK(),
    }
    result = ConstraintAblationResult(cutoff=cutoff)
    for variant_name, diversifier in variants.items():
        run: dict[int, list[str]] = {}
        recalls: list[float] = []
        for topic in workload.testbed.topics:
            task = tasks.get(topic.topic_id)
            if task is None:
                run[topic.topic_id] = baseline_run[topic.topic_id]
            else:
                run[topic.topic_id] = diversifier.diversify(
                    task.with_threshold(threshold), scale.k
                )
            recalls.append(
                subtopic_recall(
                    run[topic.topic_id],
                    topic.topic_id,
                    workload.testbed.qrels,
                    cutoff=cutoff,
                )
            )
        result.reports[variant_name] = evaluate_run(
            run, workload.testbed, scale.cutoffs, name=variant_name
        )
        result.avg_subtopic_recall[variant_name] = sum(recalls) / len(recalls)
    return result


def summarize(result: ConstraintAblationResult) -> str:
    headers = [
        "variant",
        f"a-nDCG@{result.cutoff}",
        f"IA-P@{result.cutoff}",
        f"s-recall@{result.cutoff}",
    ]
    rows = []
    for variant, report in result.reports.items():
        rows.append(
            [
                variant,
                round(report.mean("alpha-ndcg", result.cutoff), 3),
                round(report.mean("ia-p", result.cutoff), 3),
                round(result.avg_subtopic_recall[variant], 3),
            ]
        )
    return render_table(
        headers, rows, title="Ablation — OptSelect proportionality constraint"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale)
    print(summarize(run_constraint_ablation(workload)))


if __name__ == "__main__":
    main()

"""Plain-text table rendering for the experiment CLIs.

Each experiment module prints its regenerated table/figure in roughly the
paper's layout; this module keeps the alignment logic in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_number"]


def format_number(value: object, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned fixed-width table.

    >>> print(render_table(["a", "b"], [[1, 2.5]], title="T"))
    T
    a  b
    1  2.500
    """
    text_rows = [
        [format_number(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: dict[str, dict[object, float]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render multiple named series sharing an x axis (a textual figure)."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name].get(x, float("nan")) for name in series]
        for x in xs
    ]
    return render_table(headers, rows, title=title, precision=precision)

"""Section 4.1 — feasibility: memory footprint of the side structures.

The paper argues the diversification side data is small: "storing N
ambiguous queries along with the data needed to assess the similarity
among results lists incurs in a maximal memory occupancy of
N · |S_q̂| · |R_q̂'| · L bytes", where |S_q̂| is the largest number of
specializations, |R_q̂'| the per-specialization list length and L the
average surrogate length in bytes.

This harness mines the ambiguous-query structure from a log, materialises
the specialization result lists and surrogates, and reports:

* the analytic bound N · |S_q̂| · |R_q̂'| · L,
* the actually measured bytes of surrogate text stored,
* per-ambiguous-query averages.

Run as a script::

    python -m repro.experiments.feasibility
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)

__all__ = ["FeasibilityResult", "run_feasibility", "main"]


@dataclass(frozen=True)
class FeasibilityResult:
    """Measured footprint of the diversification side structures."""

    num_ambiguous_queries: int
    max_specializations: int
    spec_results: int
    avg_surrogate_bytes: float
    analytic_bound_bytes: int
    measured_surrogate_bytes: int

    @property
    def analytic_bound_mb(self) -> float:
        return self.analytic_bound_bytes / (1024.0 * 1024.0)

    @property
    def measured_mb(self) -> float:
        return self.measured_surrogate_bytes / (1024.0 * 1024.0)


def run_feasibility(
    workload: TrecWorkload | None = None,
    log_name: str = "AOL",
    min_frequency: int = 3,
) -> FeasibilityResult:
    """Mine every ambiguous query and measure the surrogate storage."""
    workload = workload or build_trec_workload(SMALL_SCALE)
    miner = workload.miner(log_name)
    engine = workload.engine
    spec_results = workload.scale.spec_results

    mined = miner.mine_all(min_frequency=min_frequency)
    max_specs = max((len(s) for s in mined.values()), default=0)

    total_bytes = 0
    total_snippets = 0
    seen_specs: set[str] = set()
    for spec_set in mined.values():
        for spec_query, _p in spec_set:
            if spec_query in seen_specs:
                continue
            seen_specs.add(spec_query)
            results = engine.search(spec_query, spec_results)
            for r in results:
                snippet = engine.snippet(spec_query, r.doc_id)
                total_bytes += len(snippet.text.encode("utf-8"))
                total_snippets += 1
    avg_len = total_bytes / total_snippets if total_snippets else 0.0
    bound = int(len(mined) * max_specs * spec_results * avg_len)
    return FeasibilityResult(
        num_ambiguous_queries=len(mined),
        max_specializations=max_specs,
        spec_results=spec_results,
        avg_surrogate_bytes=avg_len,
        analytic_bound_bytes=bound,
        measured_surrogate_bytes=total_bytes,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale)
    result = run_feasibility(workload)
    rows = [
        ["ambiguous queries N", result.num_ambiguous_queries],
        ["max specializations |S_q̂|", result.max_specializations],
        ["per-spec results |R_q̂'|", result.spec_results],
        ["avg surrogate bytes L", round(result.avg_surrogate_bytes, 1)],
        ["analytic bound N·|S|·|R|·L (MB)", round(result.analytic_bound_mb, 3)],
        ["measured surrogate storage (MB)", round(result.measured_mb, 3)],
    ]
    print(render_table(["quantity", "value"], rows, title="Section 4.1 — feasibility"))


if __name__ == "__main__":
    main()

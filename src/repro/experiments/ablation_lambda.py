"""Ablation — sensitivity of OptSelect and xQuAD to the mixing λ.

The paper fixes λ = 0.15 for both OptSelect and xQuAD, citing the value
that maximises α-NDCG@20 in Santos et al.  This ablation sweeps λ over
{0, 0.15, 0.3, 0.5, 0.75, 1.0} at a fixed utility threshold and reports
α-NDCG@20 and IA-P@20, showing where the relevance/coverage trade-off
peaks on our testbed:

* λ = 0 ranks by relevance only → baseline behaviour,
* λ = 1 ranks by coverage only → relevance is ignored (IASelect-like
  failure mode for xQuAD; OptSelect keeps ordering by summed utility).

Run as a script::

    python -m repro.experiments.ablation_lambda
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.core.framework import get_diversifier
from repro.evaluation.runner import EvaluationReport, evaluate_run
from repro.experiments.reporting import render_table
from repro.experiments.table3 import build_topic_tasks
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)

__all__ = ["LambdaAblationResult", "run_lambda_ablation", "main"]

DEFAULT_LAMBDAS = (0.0, 0.15, 0.3, 0.5, 0.75, 1.0)


@dataclass
class LambdaAblationResult:
    cutoff: int
    #: reports[algorithm][lambda]
    reports: dict[str, dict[float, EvaluationReport]] = field(default_factory=dict)

    def best_lambda(self, algorithm: str, metric: str = "alpha-ndcg") -> float:
        per_lambda = self.reports[algorithm]
        return max(per_lambda, key=lambda lam: per_lambda[lam].mean(metric, self.cutoff))


def run_lambda_ablation(
    workload: TrecWorkload | None = None,
    lambdas: tuple[float, ...] = DEFAULT_LAMBDAS,
    algorithms: tuple[str, ...] = ("OptSelect", "xQuAD"),
    threshold: float = 0.2,
    log_name: str = "AOL",
) -> LambdaAblationResult:
    workload = workload or build_trec_workload(SMALL_SCALE)
    scale = workload.scale
    cutoff = scale.cutoffs[min(2, len(scale.cutoffs) - 1)]
    tasks, baseline_run = build_topic_tasks(workload, log_name)
    result = LambdaAblationResult(cutoff=cutoff)
    for algorithm_name in algorithms:
        diversifier = get_diversifier(algorithm_name)
        per_lambda: dict[float, EvaluationReport] = {}
        for lam in lambdas:
            run: dict[int, list[str]] = {}
            for topic in workload.testbed.topics:
                task = tasks.get(topic.topic_id)
                if task is None:
                    run[topic.topic_id] = baseline_run[topic.topic_id]
                else:
                    adjusted = task.with_threshold(threshold).with_lambda(lam)
                    run[topic.topic_id] = diversifier.diversify(adjusted, scale.k)
            per_lambda[lam] = evaluate_run(
                run,
                workload.testbed,
                scale.cutoffs,
                name=f"{diversifier.name} lambda={lam}",
            )
        result.reports[diversifier.name] = per_lambda
    return result


def summarize(result: LambdaAblationResult) -> str:
    headers = ["algorithm", "lambda", f"a-nDCG@{result.cutoff}", f"IA-P@{result.cutoff}"]
    rows = []
    for algorithm, per_lambda in result.reports.items():
        for lam, report in sorted(per_lambda.items()):
            rows.append(
                [
                    algorithm,
                    lam,
                    round(report.mean("alpha-ndcg", result.cutoff), 3),
                    round(report.mean("ia-p", result.cutoff), 3),
                ]
            )
    return render_table(headers, rows, title="Ablation — mixing parameter lambda")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale)
    result = run_lambda_ablation(workload)
    print(summarize(result))
    for algorithm in result.reports:
        print(
            f"best lambda for {algorithm} by a-nDCG@{result.cutoff}: "
            f"{result.best_lambda(algorithm)}"
        )


if __name__ == "__main__":
    main()

"""Offline pipeline benchmark — serial vs partition-parallel build + warm.

The online path has had its scale-out story since PR 2 (sharded serving,
execution backends); this harness measures the *offline* phase the
paper's feasibility argument rests on, end to end:

1. **Index build** — a synthetic corpus at the chosen scale is built
   into a :class:`~repro.retrieval.sharding.PartitionedSearchEngine`
   twice: serially (the plain constructor, one core) and
   partition-parallel
   (:func:`~repro.serving.offline.build_partitioned_engine` over the
   chosen execution backend).  Before any number is reported, both
   engines — and a single undivided reference engine — are asserted to
   return **identical rankings and scores** over every topic query.
   The parallel arm reports per-partition build time and estimated
   resident memory (postings, vocabulary, document tables) through a
   merged :class:`~repro.retrieval.sharding.BuildReport` that carries
   both the scatter/gather wall-clock and the summed per-partition busy
   time.

2. **Warm** — a sharded cluster over the parallel-built engine runs the
   paper's offline phase per-shard on the same backend, reporting
   wall-clock *and* summed shard-busy time
   (:class:`~repro.serving.service.WarmReport`), plus an estimated
   warm-artifact footprint (snippet vectors, per-specialization result
   lists) summed across shards.  Cluster rankings are asserted
   identical to an unsharded service over the serially built engine.

3. **Persistence round-trip** (``--warm-dir``) — the warmed cluster
   saves one JSONL artifact file per shard, and a *restarted* cluster
   hydrates them in parallel through the backend; re-warming the
   hydrated cluster must fetch **zero** artifacts.

On a single-core host the parallel arms read as parity (the identity
check is the load-bearing result there); on an N-core host the process
backend is the arm that scales.  ``--save-stats`` writes the run as a
JSON benchmark record in the repo's ``BENCH_*.json`` trajectory.

Run as a script::

    python -m repro.experiments.offline
    python -m repro.experiments.offline --partitions 4 --backend process
    python -m repro.experiments.offline --paper-scale --save-stats BENCH_offline.json
    python -m repro.experiments.offline --backend process --start-method spawn
"""

from __future__ import annotations

import argparse
import os
import time
from dataclasses import dataclass

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.experiments.reporting import render_table
from repro.experiments.throughput import save_stats_record, zipf_workload
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)
from repro.querylog.specializations import SpecializationMiner
from repro.retrieval.engine import SearchEngine
from repro.retrieval.sharding import BuildReport, PartitionedSearchEngine
from repro.serving import (
    BACKEND_NAMES,
    DiversificationService,
    ShardedDiversificationService,
    WarmReport,
    build_partitioned_engine,
    make_backend,
)

__all__ = [
    "OfflineBuildResult",
    "PartitionedFrameworkFactory",
    "run_offline_build",
    "summarize_build",
    "main",
]


@dataclass(frozen=True)
class PartitionedFrameworkFactory:
    """Per-shard framework factory over a shared (partitioned) engine.

    Frozen, closure-free, and built from picklable parts, so it travels
    to process-backend workers under ``fork`` *and* ``spawn`` — the
    spawn-safe counterpart of building frameworks inline.
    """

    engine: SearchEngine
    miner: SpecializationMiner
    config: FrameworkConfig

    def __call__(self, shard: int) -> DiversificationFramework:
        return DiversificationFramework(
            self.engine, self.miner, config=self.config
        )


@dataclass(frozen=True)
class OfflineBuildResult:
    """Everything one offline-pipeline run measured."""

    partitions: int
    shards: int
    backend: str
    start_method: str | None
    queries: int
    distinct: int
    serial_build_seconds: float
    build_report: BuildReport      #: merged; per-partition in ``.shards``
    serial_warm: WarmReport        #: unsharded service over the serial engine
    cluster_warm: WarmReport       #: merged cluster warm (wall + busy)
    warm_memory: dict              #: cluster-summed warm-artifact estimate
    hydrate_fetched: int | None    #: re-warm fetches after hydration (0 = hit)
    hydrate_installed: int | None  #: artifacts installed from disk
    cores: int
    identity_checked: bool
    store_bytes: int | None = None           #: size of the written store file
    store_write_seconds: float | None = None
    store_attach_seconds: float | None = None
    #: re-warm fetches on a store-hydrated cluster (0 = warm rows hit in full)
    store_warm_fetched: int | None = None

    @property
    def parallel_build_seconds(self) -> float:
        return self.build_report.seconds

    @property
    def build_speedup(self) -> float:
        """Serial build time over parallel build wall-clock."""
        return (
            self.serial_build_seconds / self.build_report.seconds
            if self.build_report.seconds
            else 0.0
        )

    @property
    def hardware_limited(self) -> bool:
        """True when the host cannot express the full N-way build fan-out."""
        return self.cores < max(2, self.partitions)


def _assert_engines_identical(
    reference: SearchEngine,
    candidates: dict[str, SearchEngine],
    queries: list[str],
    k: int,
) -> None:
    for query in queries:
        want = reference.search(query, k)
        for label, engine in candidates.items():
            got = engine.search(query, k)
            if want.doc_ids != got.doc_ids or want.scores != got.scores:
                raise AssertionError(
                    f"{label} engine changed ranking/scores of {query!r}"
                )


def run_offline_build(
    workload: TrecWorkload | None = None,
    num_queries: int = 60,
    partitions: int = 4,
    shards: int = 2,
    backend: str = "thread",
    start_method: str | None = None,
    seed: int = 13,
    log_name: str = "AOL",
    warm_dir=None,
    store_path=None,
) -> OfflineBuildResult:
    """Run the offline pipeline serial-vs-parallel at the given sizes.

    The identity checks run before any timing is trusted: the parallel-
    built partitioned engine must equal the serially built one *and*
    the single undivided engine (rankings and scores), and the sharded
    cluster's served rankings must equal the unsharded service's.  With
    *warm_dir* the warmed cluster additionally persists its artifacts
    and a restarted cluster re-warms from disk (``hydrate_fetched`` is
    the number of artifacts the re-warm still had to fetch — zero when
    hydration hit in full).  With *store_path* the pipeline additionally
    persists the engine plus every shard's warm artifacts as one SQLite
    index store, attaches it (timed), asserts the store-backed engine
    byte-identical to the undivided reference, and re-warms a
    store-hydrated cluster — which must fetch **zero** artifacts and
    serve rankings identical to the in-memory reference service.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    if shards <= 0:
        raise ValueError("shards must be positive")
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES}")
    workload = workload or build_trec_workload(SMALL_SCALE)
    scale = workload.scale
    collection = workload.corpus.collection
    queries = zipf_workload(workload, num_queries, seed)
    topic_queries = [topic.query for topic in workload.testbed.topics]
    config = FrameworkConfig(
        k=scale.k, candidates=scale.candidates, spec_results=scale.spec_results
    )
    miner = workload.miner(log_name)

    # Arm 1: the serial build (the pre-PR-5 path, one core by design).
    start = time.perf_counter()
    serial_engine = PartitionedSearchEngine(collection, partitions)
    serial_build_seconds = time.perf_counter() - start

    # Arm 2: the partition-parallel build on the chosen backend.
    parallel_engine, build_report = build_partitioned_engine(
        collection,
        partitions,
        backend=backend,
        start_method=start_method,
    )

    # Identity before any timing is trusted — both partitioned engines
    # against the undivided single-index reference.
    _assert_engines_identical(
        workload.engine,
        {"serial partitioned": serial_engine,
         "parallel partitioned": parallel_engine},
        topic_queries,
        scale.k,
    )

    # Warm reference: unsharded service over the serially built engine.
    reference = DiversificationService(
        DiversificationFramework(serial_engine, miner, config=config)
    )
    serial_warm = reference.warm(queries)
    reference_results = reference.diversify_batch(queries)

    # The cluster: per-shard warm over the parallel-built engine, fanned
    # out on a fresh backend of the same kind (a process backend is
    # consumed by the build and cannot restart).
    factory = PartitionedFrameworkFactory(parallel_engine, miner, config)
    cluster = ShardedDiversificationService.from_factory(
        factory,
        shards,
        backend=make_backend(backend, start_method=start_method),
    )
    hydrate_fetched = hydrate_installed = None
    store_bytes = store_write_seconds = store_attach_seconds = None
    store_warm_fetched = None
    try:
        cluster_warm = cluster.warm(queries)
        got = cluster.diversify_batch(queries)
        for want, result in zip(reference_results, got):
            if want.ranking != result.ranking:
                raise AssertionError(
                    f"cluster changed the ranking of {want.query!r}"
                )
        warm_memory = cluster.warm_memory_estimate()
        if warm_dir is not None:
            cluster.save_warm(warm_dir)
        if store_path is not None:
            from repro.serving.offline import persist_store

            start = time.perf_counter()
            persist_store(store_path, parallel_engine, cluster)
            store_write_seconds = time.perf_counter() - start
            store_bytes = os.path.getsize(store_path)
    finally:
        cluster.close()

    if store_path is not None:
        from repro.retrieval.store import StoreBackedSearchEngine

        start = time.perf_counter()
        store_engine = StoreBackedSearchEngine(store_path)
        store_attach_seconds = time.perf_counter() - start
        _assert_engines_identical(
            workload.engine,
            {"store-backed": store_engine},
            topic_queries,
            scale.k,
        )
        store_cluster = ShardedDiversificationService.from_factory(
            PartitionedFrameworkFactory(store_engine, miner, config),
            shards,
            backend=make_backend(backend, start_method=start_method),
            warm_store=store_path,
        )
        try:
            # Warm rows hydrated at build time: a re-warm must fetch
            # nothing, and served rankings must match the reference.
            store_warm_fetched = store_cluster.warm(queries).fetched
            got = store_cluster.diversify_batch(queries)
            for want, result in zip(reference_results, got):
                if want.ranking != result.ranking:
                    raise AssertionError(
                        "store-hydrated cluster changed the ranking of "
                        f"{want.query!r}"
                    )
        finally:
            store_cluster.close()
            store_engine.close()

    if warm_dir is not None:
        restarted = ShardedDiversificationService.from_factory(
            factory,
            shards,
            backend=make_backend(backend, start_method=start_method),
        )
        try:
            # Explicit parallel hydration (fans out per shard through
            # the backend); re-warming after it must fetch nothing.
            hydrate_installed = restarted.load_warm(warm_dir)
            hydrate_fetched = restarted.warm(queries).fetched
        finally:
            restarted.close()

    return OfflineBuildResult(
        partitions=partitions,
        shards=shards,
        backend=backend,
        start_method=start_method,
        queries=len(queries),
        distinct=len(set(queries)),
        serial_build_seconds=serial_build_seconds,
        build_report=build_report,
        serial_warm=serial_warm,
        cluster_warm=cluster_warm,
        warm_memory=warm_memory,
        hydrate_fetched=hydrate_fetched,
        hydrate_installed=hydrate_installed,
        cores=os.cpu_count() or 1,
        identity_checked=True,
        store_bytes=store_bytes,
        store_write_seconds=store_write_seconds,
        store_attach_seconds=store_attach_seconds,
        store_warm_fetched=store_warm_fetched,
    )


def summarize_build(result: OfflineBuildResult) -> str:
    headers = [
        "partition", "docs", "terms", "postings", "build s", "est. MB",
    ]
    rows = []
    for report in result.build_report.shards:
        rows.append(
            [
                report.name,
                report.documents,
                report.terms,
                report.postings,
                round(report.seconds, 3),
                round(report.total_bytes / 1e6, 2),
            ]
        )
    total = result.build_report
    rows.append(
        [
            total.name,
            total.documents,
            total.terms,
            total.postings,
            # The column holds per-partition busy time, so the total row
            # shows the *summed* busy time (the column's own sum); the
            # scatter/gather wall-clock is reported separately below —
            # never in a column whose other rows mean something else.
            round(total.busy_seconds, 3),
            round(total.total_bytes / 1e6, 2),
        ]
    )
    return render_table(
        headers,
        rows,
        title=(
            f"Partition-parallel build — {result.partitions} partitions "
            f"over the {result.backend} backend, {result.cores} core(s)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="50 topics / larger corpus (slower)",
    )
    parser.add_argument("--log", default="AOL", choices=("AOL", "MSN"))
    parser.add_argument(
        "--partitions",
        type=int,
        default=4,
        metavar="N",
        help="index partitions to build (serially vs on the backend)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="M",
        help="serving shards warming over the parallel-built engine",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="thread",
        help="execution backend for the parallel build and the warm fan-out",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --backend process "
        "(default: the platform's own default)",
    )
    parser.add_argument(
        "--warm-dir",
        metavar="DIR",
        default=None,
        help="persist per-shard warm artifacts here and verify a "
        "restarted cluster hydrates them (re-warm must fetch 0)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="persist the built engine + warm artifacts as one SQLite "
        "index store at PATH, then attach-verify it (byte-identical "
        "rankings/scores, store-hydrated cluster re-warm fetches 0)",
    )
    parser.add_argument(
        "--save-stats",
        metavar="PATH",
        default=None,
        help="write this run's benchmark record (build + warm timings, "
        "per-partition memory) as JSON to PATH",
    )
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale, logs=(args.log,))

    result = run_offline_build(
        workload,
        args.queries,
        partitions=args.partitions,
        shards=args.shards,
        backend=args.backend,
        start_method=args.start_method,
        log_name=args.log,
        warm_dir=args.warm_dir,
        store_path=args.store,
    )

    print(summarize_build(result))
    print()
    build = result.build_report
    print(
        f"index build: serial {result.serial_build_seconds:.3f}s  vs  "
        f"{result.backend} {build.seconds:.3f}s wall "
        f"(busy {build.busy_seconds:.3f}s across partitions)  "
        f"→ {result.build_speedup:.2f}x"
    )
    if result.cores < 2:
        print(
            f"note: this host reports {result.cores} core(s) — build "
            "parallelism cannot beat the serial arm here; parity within "
            "noise is the expected reading (the identity check is the "
            "load-bearing result on single-core hosts)."
        )
    elif result.hardware_limited:
        print(
            f"note: {result.cores} cores for {result.partitions} "
            f"partitions — expect at most ~{result.cores}x."
        )
    warm = result.cluster_warm
    print(
        f"warm: unsharded {result.serial_warm.seconds:.3f}s  vs  "
        f"{result.shards}-shard cluster {warm.seconds:.3f}s wall "
        f"(busy {warm.busy_seconds:.3f}s, fetched {warm.fetched})"
    )
    memory = result.warm_memory
    print(
        f"memory: index {build.total_bytes / 1e6:.2f}MB estimated across "
        f"{result.partitions} partitions; warm artifacts "
        f"{memory['total_bytes'] / 1e6:.2f}MB "
        f"({memory['specializations']} specializations, "
        f"{memory['vectors']} snippet vectors) across {result.shards} "
        f"shards"
    )
    if result.hydrate_fetched is not None:
        print(
            f"hydrate: restarted cluster installed "
            f"{result.hydrate_installed} artifacts from {args.warm_dir!r} "
            f"and re-warm fetched {result.hydrate_fetched} "
            f"({'hit in full' if result.hydrate_fetched == 0 else 'partial'})"
        )
    if result.store_bytes is not None:
        print(
            f"store: {args.store!r} written in "
            f"{result.store_write_seconds:.3f}s "
            f"({result.store_bytes / 1e6:.2f}MB), attached in "
            f"{result.store_attach_seconds:.4f}s (vs "
            f"{result.serial_build_seconds:.3f}s rebuild); store-hydrated "
            f"cluster re-warm fetched {result.store_warm_fetched} "
            f"({'hit in full' if result.store_warm_fetched == 0 else 'partial'})"
        )
    print(
        "rankings and scores verified identical: single engine == serial "
        "partitioned == parallel partitioned; unsharded service == "
        f"{result.shards}-shard cluster ({result.backend} backend)."
    )
    if args.save_stats:
        path = save_stats_record(
            args.save_stats,
            {
                "mode": "offline",
                "backend": result.backend,
                "start_method": result.start_method,
                "partitions": result.partitions,
                "shards": result.shards,
                "queries": result.queries,
                "distinct": result.distinct,
                "serial_build_seconds": round(result.serial_build_seconds, 5),
                "build_seconds": round(build.seconds, 5),
                "build_busy_seconds": round(build.busy_seconds, 5),
                "build_speedup": round(result.build_speedup, 3),
                "warm_seconds": round(warm.seconds, 5),
                "warm_busy_seconds": round(warm.busy_seconds, 5),
                "serial_warm_seconds": round(result.serial_warm.seconds, 5),
                "warm_fetched": warm.fetched,
                "memory": {
                    "index_total_bytes": build.total_bytes,
                    "postings_bytes": build.postings_bytes,
                    "vocabulary_bytes": build.vocabulary_bytes,
                    "documents_bytes": build.documents_bytes,
                    "warm_total_bytes": memory["total_bytes"],
                    "warm_vector_bytes": memory["vector_bytes"],
                    "warm_specializations": memory["specializations"],
                    "warm_vectors": memory["vectors"],
                },
                "per_partition": [
                    {
                        "name": r.name,
                        "documents": r.documents,
                        "terms": r.terms,
                        "postings": r.postings,
                        "seconds": round(r.seconds, 5),
                        "total_bytes": r.total_bytes,
                    }
                    for r in build.shards
                ],
                "hydrate_fetched": result.hydrate_fetched,
                "store": args.store,
                "store_bytes": result.store_bytes,
                "store_write_seconds": (
                    round(result.store_write_seconds, 5)
                    if result.store_write_seconds is not None
                    else None
                ),
                "store_attach_seconds": (
                    round(result.store_attach_seconds, 5)
                    if result.store_attach_seconds is not None
                    else None
                ),
                "store_warm_fetched": result.store_warm_fetched,
                "hardware_limited": result.hardware_limited,
                "identity_checked": result.identity_checked,
                "scale": scale.name,
            },
        )
        print(f"benchmark record written to {path}")


if __name__ == "__main__":
    main()

"""Table 2 — execution time of OptSelect, xQuAD and IASelect.

The paper times the three algorithms diversifying the retrieved list for
the 50 TREC 2009 diversity topics, varying |R_q| ∈ {1k, 10k, 100k} and
k ∈ {10, 50, 100, 500, 1000} (milliseconds, Table 2).  Headline claims:

* every algorithm is linear in |R_q| for fixed k;
* OptSelect's time barely grows with k while the greedy pair grows
  linearly in k;
* at large k OptSelect is about two orders of magnitude faster.

Our harness reproduces the same grid over the synthetic utility workload
(:func:`repro.experiments.workloads.synthetic_task` — the paper also
times the selection step on precomputed utilities).  The full paper grid
takes tens of minutes in pure Python (the greedy algorithms really are
O(n·k·|S_q|)); the default grid is scaled down and ``--full`` opts into
the paper's sizes.

``--fast`` times the kernel-backed variants (:mod:`repro.core.fast`)
instead: selection-identical rankings, same asymptotic shapes, ~50×
smaller constants — which is what the serving layer runs in production.

Run as a script::

    python -m repro.experiments.table2 [--full] [--fast]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.core.base import Diversifier
from repro.core.iaselect import IASelect
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD
from repro.experiments.reporting import render_table
from repro.experiments.workloads import synthetic_task

__all__ = ["TimingCell", "run_table2", "main", "DEFAULT_GRID", "PAPER_GRID"]

#: The timed competitors; (reference factory, kernel-backed factory name).
ALGORITHM_NAMES = ("OptSelect", "xQuAD", "IASelect")


def _algorithms(use_fast: bool) -> list[Diversifier]:
    """The three timed competitors, pure-Python or kernel-backed."""
    if not use_fast:
        return [OptSelect(), XQuAD(), IASelect()]
    from repro.core.fast import FastIASelect, FastOptSelect, FastXQuAD

    return [FastOptSelect(), FastXQuAD(), FastIASelect()]

#: (list of |R_q| sizes, list of k sizes)
DEFAULT_GRID = ((1000, 10000), (10, 50, 100))
PAPER_GRID = ((1000, 10000, 100000), (10, 50, 100, 500, 1000))
NUM_SPECS = 8


@dataclass(frozen=True)
class TimingCell:
    """Wall-clock measurement of one (algorithm, n, k) combination."""

    algorithm: str
    n: int
    k: int
    milliseconds: float


def time_once(algorithm: Diversifier, task, k: int, repeats: int = 3) -> float:
    """Best-of-*repeats* wall-clock milliseconds for one diversification."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        algorithm.diversify(task, k)
        elapsed = (time.perf_counter() - start) * 1000.0
        best = min(best, elapsed)
    return best


def run_table2(
    grid: tuple[tuple[int, ...], tuple[int, ...]] = DEFAULT_GRID,
    num_specs: int = NUM_SPECS,
    seed: int = 7,
    repeats: int = 3,
    use_fast: bool = False,
) -> list[TimingCell]:
    """Measure the timing grid; returns one cell per (algorithm, n, k)."""
    ns, ks = grid
    algorithms = _algorithms(use_fast)
    cells: list[TimingCell] = []
    for n in ns:
        task = synthetic_task(n, num_specs=num_specs, seed=seed)
        for k in ks:
            if k > n:
                continue
            for algorithm in algorithms:
                cells.append(
                    TimingCell(
                        algorithm=algorithm.name,
                        n=n,
                        k=k,
                        milliseconds=time_once(algorithm, task, k, repeats),
                    )
                )
    return cells


def summarize(cells: list[TimingCell]) -> str:
    """Render the paper's Table 2 layout: one block per algorithm,
    |R_q| rows × k columns, milliseconds."""
    ks = sorted({c.k for c in cells})
    ns = sorted({c.n for c in cells})
    blocks = []
    measured = list(dict.fromkeys(c.algorithm for c in cells))
    ordered = [
        name
        for base in ALGORITHM_NAMES
        for name in measured
        if name.removesuffix("-fast") == base
    ]
    for algorithm in ordered:
        algo_cells = {
            (c.n, c.k): c.milliseconds for c in cells if c.algorithm == algorithm
        }
        if not algo_cells:
            continue
        headers = ["|R_q|"] + [f"k={k}" for k in ks]
        rows = []
        for n in ns:
            row: list[object] = [n]
            for k in ks:
                ms = algo_cells.get((n, k))
                row.append(round(ms, 2) if ms is not None else "-")
            rows.append(row)
        blocks.append(render_table(headers, rows, title=algorithm, precision=2))
    return "\n\n".join(blocks)


def speedup_at_largest(cells: list[TimingCell]) -> dict[str, float]:
    """OptSelect speedup factors at the largest measured (n, k) cell."""
    n = max(c.n for c in cells)
    k = max(c.k for c in cells if c.n == n)
    times = {
        c.algorithm: c.milliseconds for c in cells if c.n == n and c.k == k
    }
    base = next(
        (
            ms
            for name, ms in times.items()
            if name.removesuffix("-fast") == "OptSelect"
        ),
        None,
    )
    if not base:
        return {}
    return {
        name: ms / base
        for name, ms in times.items()
        if name.removesuffix("-fast") != "OptSelect"
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full grid (n up to 100k, k up to 1000; slow)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="time the kernel-backed (numpy) variants instead",
    )
    args = parser.parse_args(argv)
    grid = PAPER_GRID if args.full else DEFAULT_GRID
    cells = run_table2(grid, repeats=args.repeats, use_fast=args.fast)
    print("Table 2 — execution time (msec)")
    print()
    print(summarize(cells))
    print()
    for name, factor in speedup_at_largest(cells).items():
        print(f"OptSelect vs {name} at the largest cell: {factor:.1f}x faster")


if __name__ == "__main__":
    main()

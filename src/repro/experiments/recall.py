"""Appendix C's recall measure — how often diversification triggers when
it is actually needed.

"we measured the number of times our method is able to provide
diversified results when they are actually needed, i.e., a sort of recall
measure.  This was done by considering the number of times a user, after
submitting an ambiguous/faceted query, issued a new query that is a
specialization of the previous one.  Concerning AOL, we are able to
diversify results for the 61% of the cases, whereas for MSN this recall
measure raises up to 65%."

Our harness replays that protocol: train the miner on the 70% split, walk
the test split's sessions, find every (q → q') event where q' specializes
q, and check whether Algorithm 1 (trained on the train split only) fires
for q.

Run as a script::

    python -m repro.experiments.recall
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)
from repro.querylog.flowgraph import is_specialization
from repro.querylog.records import QueryLog
from repro.querylog.sessions import split_by_time_gap
from repro.querylog.specializations import MinerConfig, SpecializationMiner

__all__ = ["RecallResult", "measure_recall", "run_recall", "main"]


@dataclass(frozen=True)
class RecallResult:
    """Recall of ambiguity detection over one log's test split."""

    log_name: str
    events: int
    detected: int

    @property
    def recall(self) -> float:
        return self.detected / self.events if self.events else 0.0


def measure_recall(log: QueryLog, train_fraction: float = 0.7) -> RecallResult:
    """Replay the Appendix C protocol on one log."""
    train, test = log.split(train_fraction)
    miner = SpecializationMiner(train, MinerConfig()).build()
    # Detection outcomes are query-level; cache them across events.
    detected_cache: dict[str, bool] = {}

    events = 0
    detected = 0
    for session in split_by_time_gap(test):
        for first, second in session.pairs():
            if not is_specialization(first.query, second.query):
                continue
            events += 1
            query = first.query
            hit = detected_cache.get(query)
            if hit is None:
                hit = bool(miner.mine(query))
                detected_cache[query] = hit
            if hit:
                detected += 1
    return RecallResult(log_name=log.name, events=events, detected=detected)


def run_recall(
    workload: TrecWorkload | None = None,
    logs: tuple[str, ...] = ("AOL", "MSN"),
) -> list[RecallResult]:
    workload = workload or build_trec_workload(SMALL_SCALE, logs=logs)
    return [measure_recall(workload.logs[log_name]) for log_name in logs]


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale, logs=("AOL", "MSN"))
    results = run_recall(workload)
    rows = [
        [r.log_name, r.events, r.detected, f"{r.recall:.0%}"] for r in results
    ]
    print(
        render_table(
            ["log", "refinement events", "detected", "recall"],
            rows,
            title="Appendix C — diversification recall (paper: AOL 61%, MSN 65%)",
        )
    )


if __name__ == "__main__":
    main()

"""Serving throughput — batched service vs the per-query loop.

The paper's claim is qualitative — OptSelect is cheap enough to
diversify *online* — and Tables 2/3 time the selection step in
isolation.  This harness measures what a deployment actually pays:
end-to-end wall-clock of serving a realistic (Zipf-repeating) query
workload, comparing

* the seed's architecture: one ``diversify_query`` pipeline per request;
* the serving layer: ``warm()`` offline, then ``diversify_batch``.

The service wins on three amortisations — distinct queries run the
pipeline once per batch, specialization artifacts are prefetched in one
deduplicated engine pass, and repeated traffic is served from the
bounded result LRU — and the report includes per-query latency
percentiles plus cache hit rates so each effect is visible.

With ``--shards N`` the harness instead benchmarks the sharded serving
layer: a 1-shard cluster versus an N-shard cluster
(:class:`~repro.serving.ShardedDiversificationService`, hash-routed,
thread-pool fan-out) over the same Zipf workload, after asserting the
cluster serves rankings identical to the unsharded service.  The report
shows per-shard stats next to the merged cluster summary.

With ``--mode async`` the harness drives the asyncio micro-batching
front-end (:class:`~repro.serving.AsyncDiversificationService`) under
**open-loop** arrivals: every request joins the system at its own
Zipf-sampled query's exponentially-spaced arrival time regardless of how
fast the service drains — the admission regime a real front-end faces.
Before reporting, every result is identity-checked against the
sequential ``diversify_batch`` path over the same queries.  Combine with
``--shards N`` to put the sharded cluster behind the front-end.

With ``--backend {inline,thread,process}`` the harness benchmarks the
chosen *execution backend* for an N-shard cluster against a baseline
backend (thread by default — the PR-2 status quo) on the same workload,
after asserting the chosen backend serves rankings identical to the
inline reference.  ``process`` fans ``warm()``/``diversify_batch()``
out over real OS processes; on a multi-core host that is the first
fan-out the GIL cannot serialise.  The report states the measured core
count — on a single-core host parity (within timing noise) is the
expected, documented reading.

With ``--replicas R`` the harness serves the stream on a fault-tolerant
cluster: R process replicas per shard behind a
:class:`~repro.serving.ReplicatedBackend`, every replica hydrated from a
warm store written by an inline donor cluster.  ``--kill-shard`` adds
chaos — one replica per shard is hard-killed after the first serving
batch, forcing the failover and respawn-and-rehydrate paths while
requests keep flowing — and ``--zipf-s`` sharpens the stream's hot-key
skew.  Every served result (ranking *and* baseline scores) is asserted
identical to the fault-free inline reference, no matter which replica
answered or died.

With ``--mode http`` the harness measures the system end-to-end through
a real socket: it starts a
:class:`~repro.serving.DiversificationHTTPServer` over the chosen
backend, drives it with an **open-loop** Zipf load generator (one
concurrent HTTP client per request, exponentially-spaced arrivals),
asserts every HTTP response field-identical to a direct
``diversify_batch`` on the same backend, then exercises the operational
surface — ``GET /health``, ``GET /stats``, ``POST /drain`` — and
reports client-observed request p50/p95/p99, per-status error counts
and the drain latency.

With ``--mode coldstart`` the harness times the two ways a serving
process can reach "ready to answer": rebuild the partitioned index from
raw documents, or *attach* the SQLite index store written by the
offline pipeline (:mod:`repro.retrieval.store`).  ``--scale-factor N``
multiplies the corpus (10x paper scale is the committed
``BENCH_store_coldstart.json``), ``--memory-budget BYTES`` enforces a
resident limit on the attached engine via LRU partition eviction, and
every probe query is asserted byte-identical (ranking and scores)
between the two arms before anything is reported.

With ``--mode ingest`` the harness serves the Zipf stream in chunks
while a paced live-ingest stream publishes epochs between them —
batches of new documents arrive, old documents are removed, and the
per-epoch cache sweeps keep only provably-unaffected warm artifacts.
After the stream, the final collection order is asserted equal to a
from-scratch prediction and every distinct query is re-served on both
the live service and a cold rebuild of the final collection; rankings
*and* baseline scores must be byte-identical (the epoch identity gate).

``--save-stats PATH`` writes the run's benchmark record as JSON — the
repo's ``BENCH_*.json`` perf trajectory is a series of these records.
Every mode emits the same core schema (mode, backend, policy, shards,
replicas, zipf_s, queries, qps, latency percentiles, cores,
hardware_limited — see :func:`build_stats_record`), so records compare
across modes and PRs.

Run as a script::

    python -m repro.experiments.throughput [--queries N] [--paper-scale]
    python -m repro.experiments.throughput --shards 4
    python -m repro.experiments.throughput --mode async [--shards N]
    python -m repro.experiments.throughput --backend process --shards 2
    python -m repro.experiments.throughput --replicas 2 --kill-shard
    python -m repro.experiments.throughput --mode http --save-stats BENCH_http_e2e.json
    python -m repro.experiments.throughput --mode coldstart --paper-scale --scale-factor 10
    python -m repro.experiments.throughput --mode ingest --save-stats BENCH_ingest_live.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.core.profiling import StageTimer
from repro.experiments.reporting import render_table
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)
from repro.retrieval.documents import DocumentCollection
from repro.serving import (
    BACKEND_NAMES,
    AsyncDiversificationService,
    CacheStats,
    DiversificationHTTPServer,
    DiversificationService,
    ServiceStats,
    ShardedDiversificationService,
    WarmReport,
    result_payload,
)
from repro.serving.service import _percentile

__all__ = [
    "ThroughputResult",
    "ShardedThroughputResult",
    "AsyncThroughputResult",
    "BackendThroughputResult",
    "ReplicatedThroughputResult",
    "FusedThroughputResult",
    "HTTPThroughputResult",
    "ColdstartResult",
    "IngestThroughputResult",
    "WorkloadFrameworkFactory",
    "zipf_workload",
    "make_framework",
    "run_throughput",
    "run_sharded_throughput",
    "run_async_throughput",
    "run_backend_throughput",
    "run_replicated_throughput",
    "run_fused_throughput",
    "run_http_throughput",
    "run_store_coldstart",
    "run_ingest_throughput",
    "summarize_coldstart",
    "summarize_ingest",
    "build_stats_record",
    "save_stats_record",
    "main",
]


@dataclass(frozen=True)
class ThroughputResult:
    """Timings of the two serving strategies over the same workload."""

    queries: int
    distinct: int
    loop_seconds: float
    batch_seconds: float
    warm_seconds: float
    service_stats: ServiceStats
    spec_cache_hit_rate: float
    result_cache_hit_rate: float
    #: per-stage fused-kernel timings ({} unless profiling was on and
    #: the fused path ran) — see repro.core.profiling.StageTimer
    stage_profile: dict = field(default_factory=dict)

    @property
    def loop_qps(self) -> float:
        return self.queries / self.loop_seconds if self.loop_seconds else 0.0

    @property
    def batch_qps(self) -> float:
        return self.queries / self.batch_seconds if self.batch_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.loop_seconds / self.batch_seconds if self.batch_seconds else 0.0
        )


def zipf_workload(
    workload: TrecWorkload, num_queries: int, seed: int = 13, s: float = 1.0
) -> list[str]:
    """A Zipf-repeating query stream over the testbed's topic queries.

    Web traffic repeats: the head query dominates, the tail is long.
    Weighting topic i by 1/(i+1)**s reproduces that shape, which is
    exactly the regime batching and result caching are built for.  The
    exponent ``s`` sets the hot-key skew: the default 1.0 keeps every
    historical stream byte-identical, larger values concentrate traffic
    on the head queries (and therefore on their shard — the hot-shard
    regime replica routing exists for), 0.0 is uniform.
    """
    if s < 0:
        raise ValueError("zipf exponent s must be non-negative")
    rng = random.Random(seed)
    queries = [topic.query for topic in workload.testbed.topics]
    weights = [1.0 / (i + 1) ** s for i in range(len(queries))]
    return rng.choices(queries, weights=weights, k=num_queries)


def make_framework(
    workload: TrecWorkload, log_name: str = "AOL"
) -> DiversificationFramework:
    """A fresh framework at the workload's scale (cold caches)."""
    scale = workload.scale
    return DiversificationFramework(
        workload.engine,
        workload.miner(log_name),
        config=FrameworkConfig(
            k=scale.k,
            candidates=scale.candidates,
            spec_results=scale.spec_results,
        ),
    )


def run_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    seed: int = 13,
    log_name: str = "AOL",
    fused: bool | None = None,
    profile: bool = False,
) -> ThroughputResult:
    """Time the per-query loop vs the warmed batched service.

    ``fused`` is the service's fused-kernel policy (None = auto);
    ``profile`` attaches a :class:`~repro.core.profiling.StageTimer` so
    the result carries per-stage fused-kernel timings.
    """
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # Seed architecture: a pipeline per request (its own spec cache,
    # as the seed framework had).
    loop_framework = make_framework(workload, log_name)
    start = time.perf_counter()
    loop_results = [loop_framework.diversify_query(q) for q in queries]
    loop_seconds = time.perf_counter() - start

    # Serving layer: offline warm, then one batch.
    service = DiversificationService(
        make_framework(workload, log_name), fused=fused
    )
    if profile:
        service.profiler = StageTimer()
    start = time.perf_counter()
    service.warm(queries)
    warm_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batch_results = service.diversify_batch(queries)
    batch_seconds = time.perf_counter() - start

    # Same system, same answers: the serving layer must not change what
    # gets served, only how fast.
    for loop_result, batch_result in zip(loop_results, batch_results):
        if loop_result.ranking != batch_result.ranking:
            raise AssertionError(
                f"serving layer changed the ranking of {loop_result.query!r}"
            )

    return ThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        loop_seconds=loop_seconds,
        batch_seconds=batch_seconds,
        warm_seconds=warm_seconds,
        service_stats=service.stats,
        spec_cache_hit_rate=service.spec_cache_info().hit_rate,
        result_cache_hit_rate=service.result_cache_info().hit_rate,
        stage_profile=service.profiler.snapshot(),
    )


@dataclass(frozen=True)
class ShardedThroughputResult:
    """1-shard vs N-shard cluster timings over the same workload."""

    queries: int
    distinct: int
    shards: int
    single_seconds: float      #: best 1-shard cluster batch time
    sharded_seconds: float     #: best N-shard cluster batch time
    single_times: tuple[float, ...]
    sharded_times: tuple[float, ...]
    single_warm: WarmReport
    sharded_warm: WarmReport
    cluster_stats: ServiceStats
    shard_stats: list[ServiceStats]
    spec_cache: CacheStats
    result_cache: CacheStats

    @property
    def single_qps(self) -> float:
        return self.queries / self.single_seconds if self.single_seconds else 0.0

    @property
    def sharded_qps(self) -> float:
        return (
            self.queries / self.sharded_seconds if self.sharded_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        """N-shard throughput over 1-shard (≥ 1.0 means sharding is free
        or better on this host)."""
        return (
            self.single_seconds / self.sharded_seconds
            if self.sharded_seconds
            else 0.0
        )

    @property
    def noise(self) -> float:
        """Worst relative spread across either arm's timing repeats.

        A speedup within ``1.0 ± noise`` is measurement noise, not a
        real difference — on a single-core host both arms do identical
        total work under the GIL, so parity is the expected reading.
        """
        spreads = [
            (max(times) - min(times)) / min(times)
            for times in (self.single_times, self.sharded_times)
            if times and min(times) > 0
        ]
        return max(spreads, default=0.0)


@dataclass(frozen=True)
class WorkloadFrameworkFactory:
    """A picklable per-shard framework factory over a built workload.

    The process backend's workers call this wherever they live: under
    ``fork`` the whole object (workload included) is inherited for
    free; under ``spawn`` it is pickled — the entire serving stack
    (engine, miner, caches) round-trips, which is exactly the
    "picklable warm state" contract the backend layer relies on.
    """

    workload: TrecWorkload
    log_name: str = "AOL"

    def __call__(self, shard: int) -> DiversificationFramework:
        return make_framework(self.workload, self.log_name)


def _build_cluster(
    workload: TrecWorkload,
    shards: int,
    log_name: str,
    backend: str | None = None,
) -> ShardedDiversificationService:
    return ShardedDiversificationService.from_factory(
        WorkloadFrameworkFactory(workload, log_name), shards, backend=backend
    )


def run_sharded_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    shards: int = 4,
    seed: int = 13,
    log_name: str = "AOL",
    repeats: int = 5,
) -> ShardedThroughputResult:
    """Benchmark a 1-shard vs an N-shard cluster on the Zipf workload.

    Every shard runs the same framework over the same corpus, so the
    cluster must serve exactly what the unsharded service serves — this
    harness asserts that identity before any timing is trusted, then
    measures each arm ``repeats`` times on fresh (cold-cache) clusters
    and keeps the best batch time, which is the standard way to strip
    scheduler noise from a wall-clock comparison.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # Identity first: the sharded cluster must not change one ranking.
    reference = DiversificationService(make_framework(workload, log_name))
    reference_results = reference.diversify_batch(queries)
    check_cluster = _build_cluster(workload, shards, log_name)
    try:
        for ref, res in zip(
            reference_results, check_cluster.diversify_batch(queries)
        ):
            if ref.ranking != res.ranking:
                raise AssertionError(
                    f"sharded cluster changed the ranking of {ref.query!r}"
                )
    finally:
        check_cluster.close()

    def timed_batch(num_shards: int):
        cluster = _build_cluster(workload, num_shards, log_name)
        try:
            warm_report = cluster.warm(queries)
            start = time.perf_counter()
            cluster.diversify_batch(queries)
            return time.perf_counter() - start, cluster, warm_report
        finally:
            # Stats stay readable after close(); only the fan-out pool
            # (created lazily on multi-core hosts) is released.
            cluster.close()

    # Interleave the arms (1, N, 1, N, …) so drift — thermal, frequency
    # scaling, page-cache state — cannot systematically favour either.
    single_times: list[float] = []
    sharded_times: list[float] = []
    cluster = single_warm = sharded_warm = None
    for _ in range(max(1, repeats)):
        seconds, _, single_warm = timed_batch(1)
        single_times.append(seconds)
        seconds, cluster, sharded_warm = timed_batch(shards)
        sharded_times.append(seconds)
    single_seconds = min(single_times)
    sharded_seconds = min(sharded_times)

    return ShardedThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        shards=shards,
        single_seconds=single_seconds,
        sharded_seconds=sharded_seconds,
        single_times=tuple(single_times),
        sharded_times=tuple(sharded_times),
        single_warm=single_warm,
        sharded_warm=sharded_warm,
        cluster_stats=cluster.cluster_stats(),
        shard_stats=cluster.shard_stats(),
        spec_cache=cluster.spec_cache_info(),
        result_cache=cluster.result_cache_info(),
    )


def summarize_sharded(result: ShardedThroughputResult) -> str:
    headers = ["shard", "served", "ranked", "qps", "p50 ms", "p95 ms", "spec fetched"]
    rows = []
    for stats, warm in zip(result.shard_stats, result.sharded_warm.shards):
        rows.append(
            [
                stats.name,
                stats.served,
                stats.ranked,
                round(stats.throughput_qps, 1),
                round(stats.percentile_ms(0.50), 2),
                round(stats.percentile_ms(0.95), 2),
                warm.fetched,
            ]
        )
    cluster = result.cluster_stats
    rows.append(
        [
            cluster.name,
            cluster.served,
            cluster.ranked,
            round(cluster.throughput_qps, 1),
            round(cluster.percentile_ms(0.50), 2),
            round(cluster.percentile_ms(0.95), 2),
            result.sharded_warm.fetched,
        ]
    )
    return render_table(
        headers,
        rows,
        title=(
            f"Sharded serving — {result.shards} shards, {result.queries} "
            f"queries ({result.distinct} distinct)"
        ),
    )


@dataclass(frozen=True)
class BackendThroughputResult:
    """One execution backend vs a baseline backend, same N-shard cluster."""

    queries: int
    distinct: int
    shards: int
    backend: str               #: the backend under test
    baseline: str              #: the comparison backend
    backend_seconds: float     #: best batch time under the tested backend
    baseline_seconds: float    #: best batch time under the baseline
    backend_times: tuple[float, ...]
    baseline_times: tuple[float, ...]
    backend_warm: WarmReport
    cluster_stats: ServiceStats
    cores: int                 #: os.cpu_count() of the measuring host
    identity_checked: bool

    @property
    def backend_qps(self) -> float:
        return self.queries / self.backend_seconds if self.backend_seconds else 0.0

    @property
    def baseline_qps(self) -> float:
        return (
            self.queries / self.baseline_seconds if self.baseline_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        """Tested-backend throughput over the baseline's (> 1.0 means the
        tested backend is faster on this host)."""
        return (
            self.baseline_seconds / self.backend_seconds
            if self.backend_seconds
            else 0.0
        )

    @property
    def noise(self) -> float:
        """Worst relative spread across either arm's timing repeats."""
        spreads = [
            (max(times) - min(times)) / min(times)
            for times in (self.backend_times, self.baseline_times)
            if times and min(times) > 0
        ]
        return max(spreads, default=0.0)

    @property
    def hardware_limited(self) -> bool:
        """True when the host has fewer cores than shards, so the full
        N-way process speedup cannot materialise (a single core allows
        none at all)."""
        return self.cores < max(2, self.shards)


def run_backend_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    shards: int = 2,
    backend: str = "process",
    baseline: str | None = None,
    seed: int = 13,
    log_name: str = "AOL",
    repeats: int = 3,
) -> BackendThroughputResult:
    """Benchmark one execution backend against a baseline backend.

    Both arms run the *same* N-shard cluster over the same Zipf
    workload; only the execution substrate differs.  Before any timing,
    the tested backend's rankings are asserted identical to the
    unsharded inline reference — the backends may only change *where*
    work runs, never *what* is served.  Arms are timed ``repeats`` times
    on fresh warmed clusters, interleaved, keeping the best time per
    arm.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES}")
    if baseline is None:
        baseline = "thread" if backend != "thread" else "inline"
    if baseline not in BACKEND_NAMES:
        raise ValueError(f"baseline must be one of {BACKEND_NAMES}")
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # Identity first: the tested backend must not change one ranking.
    reference = DiversificationService(make_framework(workload, log_name))
    reference_results = reference.diversify_batch(queries)
    check_cluster = _build_cluster(workload, shards, log_name, backend=backend)
    try:
        for ref, res in zip(
            reference_results, check_cluster.diversify_batch(queries)
        ):
            if ref.ranking != res.ranking:
                raise AssertionError(
                    f"{backend} backend changed the ranking of {ref.query!r}"
                )
    finally:
        check_cluster.close()

    def timed_batch(backend_name: str):
        cluster = _build_cluster(workload, shards, log_name, backend=backend_name)
        try:
            warm_report = cluster.warm(queries)
            start = time.perf_counter()
            cluster.diversify_batch(queries)
            seconds = time.perf_counter() - start
            stats = cluster.cluster_stats()
            return seconds, stats, warm_report
        finally:
            cluster.close()

    backend_times: list[float] = []
    baseline_times: list[float] = []
    cluster_stats = backend_warm = None
    for _ in range(max(1, repeats)):
        seconds, _, _ = timed_batch(baseline)
        baseline_times.append(seconds)
        seconds, cluster_stats, backend_warm = timed_batch(backend)
        backend_times.append(seconds)

    return BackendThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        shards=shards,
        backend=backend,
        baseline=baseline,
        backend_seconds=min(backend_times),
        baseline_seconds=min(baseline_times),
        backend_times=tuple(backend_times),
        baseline_times=tuple(baseline_times),
        backend_warm=backend_warm,
        cluster_stats=cluster_stats,
        cores=os.cpu_count() or 1,
        identity_checked=True,
    )


def summarize_backends(result: BackendThroughputResult) -> str:
    headers = ["backend", "seconds (best)", "qps", "repeats"]
    rows = [
        [
            result.baseline,
            round(result.baseline_seconds, 3),
            round(result.baseline_qps, 1),
            len(result.baseline_times),
        ],
        [
            result.backend,
            round(result.backend_seconds, 3),
            round(result.backend_qps, 1),
            len(result.backend_times),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Execution backends — {result.shards} shards, {result.queries} "
            f"queries ({result.distinct} distinct), {result.cores} core(s)"
        ),
    )


@dataclass(frozen=True)
class ReplicatedThroughputResult:
    """A replicated fault-tolerant cluster serving a Zipf stream —
    optionally with one replica per shard SIGKILLed mid-benchmark —
    identity-checked against the fault-free inline reference."""

    queries: int
    distinct: int
    shards: int
    replicas: int
    policy: str
    hedge_after_ms: float | None
    kill_shard: bool           #: a replica per shard was killed mid-run
    zipf_s: float              #: hot-key skew exponent of the stream
    batches: int               #: the stream was served in this many batches
    seconds: float             #: wall-clock across all serving batches
    warm: WarmReport
    cluster_stats: ServiceStats
    replica_stats: dict        #: shard -> ReplicaSetStats (routing counters)
    cores: int
    identity_checked: bool

    @property
    def qps(self) -> float:
        return self.queries / self.seconds if self.seconds else 0.0

    @property
    def respawns(self) -> int:
        return sum(s.respawns_total for s in self.replica_stats.values())

    @property
    def failovers(self) -> int:
        return sum(s.failovers_total for s in self.replica_stats.values())

    @property
    def hedges_fired(self) -> int:
        return sum(s.hedges_fired_total for s in self.replica_stats.values())

    @property
    def hedges_won(self) -> int:
        return sum(s.hedges_won_total for s in self.replica_stats.values())


def run_replicated_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    shards: int = 2,
    replicas: int = 2,
    policy: str = "round-robin",
    hedge_after_ms: float | None = None,
    kill_shard: bool = False,
    zipf_s: float = 1.0,
    batches: int = 4,
    seed: int = 13,
    log_name: str = "AOL",
) -> ReplicatedThroughputResult:
    """Serve the Zipf stream on an R-replica process cluster, optionally
    killing one replica per shard mid-benchmark.

    The run builds the fault-free inline reference first, then warms an
    inline donor cluster and saves its artifacts to a temporary warm
    store, so the replicated cluster — and every replica the routing
    layer respawns after a kill — hydrates from disk instead of
    re-mining.  The stream is served in ``batches`` chunks; with
    ``kill_shard`` one replica per shard is hard-killed after the first
    chunk, which forces the failover + respawn-and-rehydrate path while
    requests keep flowing.  Every served result is asserted identical to
    the reference — rankings *and* baseline scores — no matter which
    replica answered, which is the acceptance criterion of the
    replication layer.
    """
    import tempfile

    from repro.serving import REPLICA_POLICIES, ReplicatedBackend

    if shards <= 0:
        raise ValueError("shards must be positive")
    if replicas < 2:
        raise ValueError("replicated mode needs replicas >= 2")
    if policy not in REPLICA_POLICIES:
        raise ValueError(f"policy must be one of {REPLICA_POLICIES}")
    if batches <= 0:
        raise ValueError("batches must be positive")
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed, s=zipf_s)

    # Fault-free reference: the single inline service, cold caches.
    reference = DiversificationService(make_framework(workload, log_name))
    reference_results = reference.diversify_batch(queries)

    factory = WorkloadFrameworkFactory(workload, log_name)
    with tempfile.TemporaryDirectory(prefix="repro-warm-") as warm_dir:
        # Donor cluster writes the warm store the replicas (initial and
        # respawned alike) hydrate from.
        donor = ShardedDiversificationService.from_factory(
            factory, shards, backend="inline"
        )
        donor.warm(queries)
        donor.save_warm(warm_dir)
        donor.close()

        backend = ReplicatedBackend(
            replicas=replicas, policy=policy, hedge_after_ms=hedge_after_ms
        )
        cluster = ShardedDiversificationService.from_factory(
            factory,
            shards,
            backend=backend,
            warm_artifacts_dir=warm_dir,
        )
        try:
            warm_report = cluster.warm(queries)

            chunk = max(1, (len(queries) + batches - 1) // batches)
            served: list = []
            seconds = 0.0
            for index, start in enumerate(range(0, len(queries), chunk)):
                tick = time.perf_counter()
                served.extend(
                    cluster.diversify_batch(queries[start:start + chunk])
                )
                seconds += time.perf_counter() - tick
                if kill_shard and index == 0:
                    # Chaos: hard-kill the router's next-picked replica
                    # on every shard while the benchmark keeps running.
                    for shard in range(shards):
                        backend.kill_replica(shard)

            for ref, res in zip(reference_results, served):
                if (
                    ref.ranking != res.ranking
                    or ref.baseline.doc_ids != res.baseline.doc_ids
                    or ref.baseline.scores != res.baseline.scores
                ):
                    raise AssertionError(
                        f"replicated cluster changed the answer for "
                        f"{ref.query!r}"
                    )

            cluster_stats = cluster.cluster_stats()
            replica_stats = backend.replication_stats()
        finally:
            cluster.close()

    return ReplicatedThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        shards=shards,
        replicas=replicas,
        policy=policy,
        hedge_after_ms=hedge_after_ms,
        kill_shard=kill_shard,
        zipf_s=zipf_s,
        batches=batches,
        seconds=seconds,
        warm=warm_report,
        cluster_stats=cluster_stats,
        replica_stats=replica_stats,
        cores=os.cpu_count() or 1,
        identity_checked=True,
    )


def summarize_replicated(result: ReplicatedThroughputResult) -> str:
    headers = [
        "shard", "requests", "hedges fired", "hedges won",
        "respawns", "failovers",
    ]
    rows = []
    for shard, stats in sorted(result.replica_stats.items()):
        rows.append(
            [
                f"shard{shard}",
                "/".join(str(n) for n in stats.requests),
                "/".join(str(n) for n in stats.hedges_fired),
                "/".join(str(n) for n in stats.hedges_won),
                "/".join(str(n) for n in stats.respawns),
                "/".join(str(n) for n in stats.failovers),
            ]
        )
    rows.append(
        [
            "total",
            sum(s.requests_total for s in result.replica_stats.values()),
            result.hedges_fired,
            result.hedges_won,
            result.respawns,
            result.failovers,
        ]
    )
    chaos = " + kill-shard chaos" if result.kill_shard else ""
    return render_table(
        headers,
        rows,
        title=(
            f"Replicated serving — {result.shards} shards x "
            f"{result.replicas} replicas ({result.policy}){chaos}, "
            f"{result.queries} queries ({result.distinct} distinct, "
            f"zipf s={result.zipf_s:g})"
        ),
    )


@dataclass(frozen=True)
class FusedThroughputResult:
    """Fused cross-query kernels vs the per-query kernel loop — the same
    warmed service, the same Zipf workload, only the execution strategy
    inside ``diversify_batch`` differs."""

    queries: int
    distinct: int
    fused_seconds: float       #: best fused-arm batch time
    looped_seconds: float      #: best per-query-loop batch time
    fused_times: tuple[float, ...]
    looped_times: tuple[float, ...]
    warm_seconds: float
    fused_stats: ServiceStats  #: stats of the best fused run (accounting)
    stage_profile: dict        #: per-stage timings ({} unless profiled)
    identity_checked: bool

    @property
    def fused_qps(self) -> float:
        return self.queries / self.fused_seconds if self.fused_seconds else 0.0

    @property
    def looped_qps(self) -> float:
        return (
            self.queries / self.looped_seconds if self.looped_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        """Fused throughput over looped (> 1.0 means fusion pays)."""
        return (
            self.looped_seconds / self.fused_seconds
            if self.fused_seconds
            else 0.0
        )

    @property
    def noise(self) -> float:
        """Worst relative spread across either arm's timing repeats."""
        spreads = [
            (max(times) - min(times)) / min(times)
            for times in (self.fused_times, self.looped_times)
            if times and min(times) > 0
        ]
        return max(spreads, default=0.0)

    @property
    def pad_fill_ratio(self) -> float:
        return self.fused_stats.pad_fill_ratio


def run_fused_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    seed: int = 13,
    log_name: str = "AOL",
    repeats: int = 5,
    profile: bool = False,
) -> FusedThroughputResult:
    """Benchmark the fused batch path against the per-query kernel loop.

    Both arms are the *same* ``DiversificationService`` (warmed, cold
    result cache per repeat) — only the ``fused`` flag differs.  The
    fused kernels are selection-identical by contract, and this harness
    re-asserts it end-to-end before timing: every served
    :class:`DiversifiedResult` must match field-for-field.  Arms are
    timed ``repeats`` times on fresh services, interleaved so drift
    cannot systematically favour either, keeping the best time per arm.
    """
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # Identity first: fused and looped must serve the same results.
    fused_check = DiversificationService(
        make_framework(workload, log_name), fused=True
    )
    looped_check = DiversificationService(
        make_framework(workload, log_name), fused=False
    )
    fused_check.warm(queries)
    looped_check.warm(queries)
    for got, want in zip(
        fused_check.diversify_batch(queries),
        looped_check.diversify_batch(queries),
    ):
        if (
            got.ranking != want.ranking
            or got.diversified != want.diversified
            or got.algorithm != want.algorithm
            or got.baseline.doc_ids != want.baseline.doc_ids
        ):
            raise AssertionError(
                f"fused path changed the result of {want.query!r}"
            )

    def timed(fused: bool):
        service = DiversificationService(
            make_framework(workload, log_name), fused=fused
        )
        if profile and fused:
            service.profiler = StageTimer()
        warm_start = time.perf_counter()
        service.warm(queries)
        warm_seconds = time.perf_counter() - warm_start
        start = time.perf_counter()
        service.diversify_batch(queries)
        return time.perf_counter() - start, service, warm_seconds

    fused_runs: list[tuple[float, DiversificationService]] = []
    looped_times: list[float] = []
    warm_seconds = 0.0
    for _ in range(max(1, repeats)):
        seconds, _, _ = timed(False)
        looped_times.append(seconds)
        seconds, service, warm_seconds = timed(True)
        fused_runs.append((seconds, service))
    best_seconds, best_service = min(fused_runs, key=lambda run: run[0])

    return FusedThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        fused_seconds=best_seconds,
        looped_seconds=min(looped_times),
        fused_times=tuple(seconds for seconds, _ in fused_runs),
        looped_times=tuple(looped_times),
        warm_seconds=warm_seconds,
        fused_stats=best_service.stats,
        stage_profile=best_service.profiler.snapshot(),
        identity_checked=True,
    )


def summarize_fused(result: FusedThroughputResult) -> str:
    stats = result.fused_stats
    headers = ["strategy", "seconds (best)", "qps", "p50 ms", "p95 ms"]
    rows = [
        [
            "per-query kernels",
            round(result.looped_seconds, 3),
            round(result.looped_qps, 1),
            "-",
            "-",
        ],
        [
            "fused batch kernels",
            round(result.fused_seconds, 3),
            round(result.fused_qps, 1),
            round(stats.percentile_ms(0.50), 2),
            round(stats.percentile_ms(0.95), 2),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Fused batch kernels — {result.queries} queries "
            f"({result.distinct} distinct)"
        ),
    )


def _stage_profile_lines(stage_profile: dict) -> str:
    grand = sum(entry["seconds"] for entry in stage_profile.values()) or 1.0
    return "\n".join(
        f"  {name:<10} {entry['seconds'] * 1000.0:9.2f} ms "
        f"({entry['seconds'] / grand:5.1%}, {entry['entries']} entries)"
        for name, entry in sorted(
            stage_profile.items(), key=lambda item: -item[1]["seconds"]
        )
    )


@dataclass(frozen=True)
class ColdstartResult:
    """Rebuild-vs-attach cold start at a chosen corpus scale.

    Both arms end holding an engine that answers the same probe queries
    with byte-identical rankings *and scores* (asserted before anything
    is timed as "serving"); the interesting deltas are the seconds to
    get there and the bytes resident once there.
    """

    scale_name: str
    scale_factor: int
    partitions: int
    documents: int
    k: int
    #: seconds to build the partitioned in-memory engine from documents
    rebuild_seconds: float
    #: estimated resident bytes of the fully built in-memory engine
    rebuild_resident_bytes: int
    #: on-disk size of the SQLite store the attach arm opens
    store_bytes: int
    #: seconds write_store took (the offline, once-per-build price)
    store_write_seconds: float
    #: seconds to attach the store (open + validate + stats rows)
    attach_seconds: float
    #: resident bytes right after attach, before any query
    attach_resident_cold_bytes: int
    #: resident bytes after serving every probe (pages faulted in)
    attach_resident_warm_bytes: int
    probe_queries: int
    #: per-probe store-arm search latencies, milliseconds
    probe_latencies_ms: list[float]
    #: live page-cache counters after the probes (hits/misses/evictions)
    page_cache: "object"
    memory_budget: int | None
    identity_checked: bool

    @property
    def attach_speedup(self) -> float:
        """How many times faster attaching is than rebuilding."""
        return (
            self.rebuild_seconds / self.attach_seconds
            if self.attach_seconds
            else 0.0
        )

    @property
    def probe_seconds(self) -> float:
        return sum(self.probe_latencies_ms) / 1000.0

    @property
    def probe_qps(self) -> float:
        seconds = self.probe_seconds
        return self.probe_queries / seconds if seconds else 0.0

    def probe_percentile_ms(self, q: float) -> float:
        return _percentile(sorted(self.probe_latencies_ms), q)


def run_store_coldstart(
    store_path: str | Path,
    scale=SMALL_SCALE,
    scale_factor: int = 1,
    partitions: int = 4,
    memory_budget: int | None = None,
    seed: int = 42,
) -> ColdstartResult:
    """Time cold start by rebuild vs by store attach, identity-checked.

    Generates the synthetic corpus at ``scale`` with ``docs_per_aspect``
    and ``background_docs`` multiplied by *scale_factor* (the knob that
    takes the paper-shaped corpus to 10x/100x), then:

    1. **rebuild arm** — construct a
       :class:`~repro.retrieval.sharding.PartitionedSearchEngine` from
       the raw documents, timed; record its estimated resident bytes.
    2. write the engine into a SQLite index store at *store_path*
       (:func:`~repro.retrieval.store.write_store`), timed — the
       offline, once-per-build price.
    3. **attach arm** — open a
       :class:`~repro.retrieval.store.StoreBackedSearchEngine` on the
       store, timed; record resident bytes cold (before any query) and
       warm (after the probes below), plus the page-cache counters.
    4. assert rankings *and scores* byte-identical between the arms
       over every topic query, timing each store-arm search.

    ``memory_budget`` caps the attach arm's resident bytes with LRU
    partition eviction; the identity assertion still runs, pinning that
    eviction never changes results.  The in-memory engine, the store
    file and the store engine are all built here; the store engine is
    closed before returning.
    """
    from repro.corpus.generator import CorpusConfig, generate_corpus
    from repro.retrieval.sharding import PartitionedSearchEngine
    from repro.retrieval.store import StoreBackedSearchEngine, write_store

    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    corpus = generate_corpus(
        CorpusConfig(
            num_topics=scale.num_topics,
            docs_per_aspect=scale.docs_per_aspect * scale_factor,
            background_docs=scale.background_docs * scale_factor,
            seed=seed,
        )
    )
    probes = [topic.query for topic in corpus.topics]
    k = scale.k

    start = time.perf_counter()
    rebuilt = PartitionedSearchEngine(corpus.collection, partitions)
    rebuild_seconds = time.perf_counter() - start
    rebuild_resident = rebuilt.memory_estimate()["total_bytes"]

    store_path = Path(store_path)
    start = time.perf_counter()
    write_store(store_path, rebuilt)
    write_seconds = time.perf_counter() - start
    store_bytes = store_path.stat().st_size

    start = time.perf_counter()
    attached = StoreBackedSearchEngine(store_path, memory_budget=memory_budget)
    attach_seconds = time.perf_counter() - start
    attach_cold = attached.memory_estimate()["total_bytes"]

    latencies_ms: list[float] = []
    try:
        for query in probes:
            expected = rebuilt.search(query, k)
            start = time.perf_counter()
            got = attached.search(query, k)
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            if [r.doc_id for r in got] != [r.doc_id for r in expected]:
                raise AssertionError(
                    f"store-backed ranking diverged for {query!r}"
                )
            if got.scores != expected.scores:
                raise AssertionError(
                    f"store-backed scores diverged for {query!r}"
                )
        attach_warm = attached.memory_estimate()["total_bytes"]
        page_cache = attached.page_cache_info()
    finally:
        attached.close()

    return ColdstartResult(
        scale_name=scale.name,
        scale_factor=scale_factor,
        partitions=partitions,
        documents=len(corpus.collection),
        k=k,
        rebuild_seconds=rebuild_seconds,
        rebuild_resident_bytes=rebuild_resident,
        store_bytes=store_bytes,
        store_write_seconds=write_seconds,
        attach_seconds=attach_seconds,
        attach_resident_cold_bytes=attach_cold,
        attach_resident_warm_bytes=attach_warm,
        probe_queries=len(probes),
        probe_latencies_ms=latencies_ms,
        page_cache=page_cache,
        memory_budget=memory_budget,
        identity_checked=True,
    )


def summarize_coldstart(result: ColdstartResult) -> str:
    headers = ["cold-start path", "seconds", "resident MB"]
    rows = [
        [
            "rebuild from documents",
            round(result.rebuild_seconds, 4),
            round(result.rebuild_resident_bytes / 1e6, 2),
        ],
        [
            "attach store (cold)",
            round(result.attach_seconds, 4),
            round(result.attach_resident_cold_bytes / 1e6, 2),
        ],
        [
            "attach store (after probes)",
            "-",
            round(result.attach_resident_warm_bytes / 1e6, 2),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Store cold start — {result.documents} docs "
            f"({result.scale_name} scale x{result.scale_factor}), "
            f"{result.partitions} partitions"
        ),
    )


@dataclass(frozen=True)
class IngestThroughputResult:
    """A Zipf query stream interleaved with a paced live-ingest stream.

    The serving arm answers query chunks while epochs publish between
    them; afterwards, every distinct query is re-served by the *live*
    service (through whatever survived its per-epoch cache sweeps) and
    asserted byte-identical — ranking AND baseline scores — to a fresh
    from-scratch service built over the final collection.  That is the
    strongest form of the epoch identity gate: it validates not just the
    incremental index but the surgical invalidation that kept caches
    warm across publishes.
    """

    queries: int
    distinct: int
    partitions: int
    seconds: float                 #: wall-clock spent serving query chunks
    ingest_seconds: float          #: wall-clock spent inside ingest calls
    ingest_batches: int
    documents_added: int
    documents_removed: int
    epochs_published: int
    warm_invalidations: int
    final_documents: int
    ingest_latencies_ms: tuple[float, ...]
    service_stats: ServiceStats
    identity_checked: bool

    @property
    def qps(self) -> float:
        return self.queries / self.seconds if self.seconds else 0.0

    def ingest_percentile_ms(self, q: float) -> float:
        return _percentile(list(self.ingest_latencies_ms), q)


def run_ingest_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    *,
    partitions: int = 4,
    ingest_batches: int = 8,
    docs_per_batch: int = 4,
    removes_per_batch: int = 1,
    seed: int = 13,
    zipf_s: float = 1.0,
    log_name: str = "AOL",
) -> IngestThroughputResult:
    """Serve a Zipf stream while a paced ingest stream publishes epochs.

    The corpus's last ``ingest_batches * docs_per_batch`` documents are
    held out of the initial index and arrive as live-ingested batches
    between query chunks; each batch also removes ``removes_per_batch``
    still-present original documents, so both mutation paths (append and
    ordinal-shifting removal) run under load.  Identity gate: the final
    collection order is asserted equal to the survivors-then-adds
    prediction, and every distinct query's post-stream result from the
    live service (warm caches, swept per-epoch) is asserted byte-equal
    to a from-scratch service over the same final collection.
    """
    from repro.retrieval.sharding import PartitionedSearchEngine

    workload = workload or build_trec_workload(SMALL_SCALE)
    scale = workload.scale
    queries = zipf_workload(workload, num_queries, seed, s=zipf_s)
    distinct = sorted(set(queries))

    full_docs = list(workload.corpus.collection)
    holdout = ingest_batches * docs_per_batch
    if holdout + ingest_batches * removes_per_batch >= len(full_docs):
        raise ValueError(
            "corpus too small for the requested ingest stream: "
            f"{len(full_docs)} docs, {holdout} held out, "
            f"{ingest_batches * removes_per_batch} removals"
        )
    initial_docs = full_docs[: len(full_docs) - holdout]
    arrivals = full_docs[len(full_docs) - holdout:]

    engine = PartitionedSearchEngine(
        DocumentCollection(initial_docs), num_partitions=partitions
    )
    framework = DiversificationFramework(
        engine,
        workload.miner(log_name),
        config=FrameworkConfig(
            k=scale.k, candidates=scale.candidates, spec_results=scale.spec_results
        ),
    )
    service = DiversificationService(framework)
    service.warm(distinct)

    # Deterministic removal schedule over the still-present originals.
    rng = random.Random(seed + 1)
    removable = [doc.doc_id for doc in initial_docs]
    expected_ids = [doc.doc_id for doc in initial_docs]

    chunks = max(ingest_batches + 1, 1)
    chunk_size = max(1, (len(queries) + chunks - 1) // chunks)
    query_chunks = [
        queries[i:i + chunk_size] for i in range(0, len(queries), chunk_size)
    ]

    serve_seconds = 0.0
    ingest_seconds = 0.0
    ingest_latencies_ms: list[float] = []
    documents_added = 0
    documents_removed = 0
    batch_index = 0
    for chunk_number, chunk in enumerate(query_chunks):
        start = time.perf_counter()
        service.diversify_batch(chunk)
        serve_seconds += time.perf_counter() - start
        if batch_index >= ingest_batches or chunk_number == len(query_chunks) - 1:
            continue
        adds = arrivals[
            batch_index * docs_per_batch:(batch_index + 1) * docs_per_batch
        ]
        removes = rng.sample(removable, min(removes_per_batch, len(removable)))
        start = time.perf_counter()
        epoch = service.ingest(add_documents=adds, remove_doc_ids=removes)
        elapsed = time.perf_counter() - start
        ingest_seconds += elapsed
        ingest_latencies_ms.append(elapsed * 1000.0)
        assert epoch == batch_index + 1, (epoch, batch_index)
        documents_added += len(adds)
        documents_removed += len(removes)
        removed_set = set(removes)
        removable = [d for d in removable if d not in removed_set]
        expected_ids = [d for d in expected_ids if d not in removed_set]
        expected_ids.extend(doc.doc_id for doc in adds)
        batch_index += 1

    # Gate 1: the live engine's collection order matches the
    # survivors-in-original-order-then-adds-in-batch-order prediction —
    # the ordering a from-scratch build of the final collection has.
    live_ids = engine.collection.doc_ids
    if live_ids != expected_ids:
        raise AssertionError(
            "live-ingested collection order diverged from the "
            "from-scratch prediction"
        )

    # Gate 2: re-serve every distinct query on the live service (warm,
    # swept caches) and on a cold from-scratch service over the final
    # collection; rankings AND baseline scores must be byte-identical.
    reference_engine = PartitionedSearchEngine(
        DocumentCollection(
            [workload.corpus.collection[doc_id] for doc_id in expected_ids]
        ),
        num_partitions=partitions,
    )
    reference = DiversificationService(
        DiversificationFramework(
            reference_engine,
            workload.miner(log_name),
            config=framework.config,
        )
    )
    live_results = service.diversify_batch(distinct)
    reference_results = reference.diversify_batch(distinct)
    for live, fresh in zip(live_results, reference_results):
        if live.ranking != fresh.ranking:
            raise AssertionError(
                f"post-ingest ranking of {live.query!r} diverged from the "
                "from-scratch rebuild"
            )
        live_scored = [(r.doc_id, r.score) for r in live.baseline]
        fresh_scored = [(r.doc_id, r.score) for r in fresh.baseline]
        if live_scored != fresh_scored:
            raise AssertionError(
                f"post-ingest baseline scores of {live.query!r} diverged "
                "from the from-scratch rebuild"
            )

    stats = service.stats
    return IngestThroughputResult(
        queries=len(queries),
        distinct=len(distinct),
        partitions=partitions,
        seconds=serve_seconds,
        ingest_seconds=ingest_seconds,
        ingest_batches=batch_index,
        documents_added=documents_added,
        documents_removed=documents_removed,
        epochs_published=stats.epochs_published,
        warm_invalidations=stats.warm_invalidations,
        final_documents=len(expected_ids),
        ingest_latencies_ms=tuple(ingest_latencies_ms),
        service_stats=stats,
        identity_checked=True,
    )


def summarize_ingest(result: IngestThroughputResult) -> str:
    headers = ["stream", "events", "seconds", "latency p95 ms"]
    rows = [
        [
            "queries (Zipf chunks)",
            result.queries,
            round(result.seconds, 4),
            round(result.service_stats.percentile_ms(0.95), 3),
        ],
        [
            "ingest epochs",
            result.ingest_batches,
            round(result.ingest_seconds, 4),
            round(result.ingest_percentile_ms(0.95), 3),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Live ingest under load — {result.final_documents} final docs, "
            f"{result.partitions} partitions, +{result.documents_added}/"
            f"-{result.documents_removed} docs over "
            f"{result.epochs_published} epochs"
        ),
    )


def save_stats_record(path: str | Path, record: dict) -> Path:
    """Write one benchmark record as pretty JSON; returns the path.

    Every record carries a schema tag, the host's core count and a
    timestamp, so a directory of ``BENCH_*.json`` files reads as a perf
    trajectory across PRs and machines.
    """
    path = Path(path)
    payload = {
        "schema": "repro.experiments.throughput/v1",
        "timestamp": time.time(),
        "cores": os.cpu_count() or 1,
        "python": platform.python_version(),
        **record,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _latency_record(stats: ServiceStats) -> dict:
    return {
        "mean_ms": round(stats.mean_latency_ms, 4),
        "p50_ms": round(stats.percentile_ms(0.50), 4),
        "p95_ms": round(stats.percentile_ms(0.95), 4),
        "p99_ms": round(stats.percentile_ms(0.99), 4),
    }


def build_stats_record(
    mode: str,
    *,
    backend: str,
    shards: int,
    queries: int,
    distinct: int,
    qps: float,
    seconds: float,
    latency: dict,
    scale: str,
    replicas: int = 1,
    policy: str | None = None,
    zipf_s: float = 1.0,
    identity_checked: bool = False,
    hardware_limited: bool | None = None,
    store: str | None = None,
    memory_budget: int | None = None,
    **extras,
) -> dict:
    """One ``--save-stats`` record with the mode-invariant core schema.

    Every mode used to assemble its record ad hoc, so the emitted fields
    drifted (batch lacked ``hardware_limited``/``zipf_s``/``policy``,
    only replicated carried ``policy``, …) and BENCH trajectory tooling
    could not compare records across modes.  This builder pins the core
    keys — ``mode``/``backend``/``policy``/``shards``/``replicas``/
    ``zipf_s``/``queries``/``distinct``/``qps``/``seconds``/``latency``/
    ``identity_checked``/``hardware_limited``/``scale``/``store``/
    ``memory_budget`` — for *every* mode (``cores``/``python``/
    ``timestamp``/``schema`` come from :func:`save_stats_record`);
    mode-specific measurements ride along as ``extras``.  ``store`` is
    the index-store path a store-serving run attached (``None`` for
    fully in-memory runs) and ``memory_budget`` the enforced resident
    byte limit (``None`` = unbounded).

    ``hardware_limited`` defaults to "this host has fewer cores than the
    cluster has shards" (the reading under which fan-out speedups cannot
    reach the ideal); single-service runs are never hardware-limited.
    """
    if hardware_limited is None:
        hardware_limited = (
            shards > 0 and (os.cpu_count() or 1) < max(2, shards)
        )
    record = {
        "mode": mode,
        "backend": backend,
        "policy": policy,
        "shards": shards,
        "replicas": replicas,
        "zipf_s": zipf_s,
        "queries": queries,
        "distinct": distinct,
        "qps": round(qps, 2),
        "seconds": round(seconds, 5),
        "latency": latency,
        "identity_checked": identity_checked,
        "hardware_limited": hardware_limited,
        "scale": scale,
        "store": store,
        "memory_budget": memory_budget,
    }
    record.update(extras)
    return record


@dataclass(frozen=True)
class AsyncThroughputResult:
    """Open-loop run of the async micro-batching front-end."""

    queries: int
    distinct: int
    shards: int                #: 0 = unsharded backend
    seconds: float             #: wall-clock, first arrival → last result
    offered_qps: float         #: open-loop arrival rate the driver targeted
    front_stats: ServiceStats  #: batch formation (histogram, waits, depth)
    backend_stats: ServiceStats
    identity_checked: bool

    @property
    def achieved_qps(self) -> float:
        return self.queries / self.seconds if self.seconds else 0.0


def run_async_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    seed: int = 13,
    log_name: str = "AOL",
    shards: int = 0,
    max_batch_size: int = 16,
    max_wait_s: float = 0.002,
    offered_qps: float = 2000.0,
) -> AsyncThroughputResult:
    """Drive the async front-end under open-loop Zipf arrivals.

    Open-loop means arrivals do not wait for the service: each request is
    its own task that sleeps until its exponentially-spaced arrival time
    and then submits, so queueing pressure is real.  The front-end warms
    the backend first, serves the stream, and every returned ranking is
    asserted identical to a sequential ``diversify_batch`` over the same
    query list on a fresh service — the async layer may change *when*
    work happens, never *what* is served.
    """
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # The sequential reference first, on its own cold service.
    reference = DiversificationService(
        make_framework(workload, log_name)
    ).diversify_batch(queries)

    if shards > 0:
        backend = _build_cluster(workload, shards, log_name)
    else:
        backend = DiversificationService(make_framework(workload, log_name))

    rng = random.Random(seed + 1)
    arrivals: list[float] = []
    t = 0.0
    for _ in queries:
        t += rng.expovariate(offered_qps)
        arrivals.append(t)

    async def drive():
        async with AsyncDiversificationService(
            backend,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
        ) as front:
            await front.warm(queries)

            async def client(query: str, at: float):
                await asyncio.sleep(at)
                return await front.submit(query)

            start = time.perf_counter()
            results = await asyncio.gather(
                *(client(q, at) for q, at in zip(queries, arrivals))
            )
            seconds = time.perf_counter() - start
            return results, seconds, front.stats

    results, seconds, front_stats = asyncio.run(drive())

    for want, got in zip(reference, results):
        if want.query != got.query or want.ranking != got.ranking:
            raise AssertionError(
                f"async front-end changed the ranking of {want.query!r}"
            )

    if shards > 0:
        backend_stats = backend.cluster_stats()
        backend.close()
    else:
        backend_stats = backend.stats
    return AsyncThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        shards=shards,
        seconds=seconds,
        offered_qps=offered_qps,
        front_stats=front_stats,
        backend_stats=backend_stats,
        identity_checked=True,
    )


def summarize_async(result: AsyncThroughputResult) -> str:
    front = result.front_stats
    headers = ["batch size", "batches", "requests"]
    rows = [
        [size, count, size * count]
        for size, count in sorted(front.batch_sizes.items())
    ]
    backend_label = (
        f"{result.shards}-shard cluster" if result.shards else "single service"
    )
    return render_table(
        headers,
        rows,
        title=(
            f"Async micro-batching — {result.queries} queries "
            f"({result.distinct} distinct) over the {backend_label}, "
            f"offered {result.offered_qps:.0f} qps"
        ),
    )


@dataclass(frozen=True)
class HTTPThroughputResult:
    """Open-loop run of the REST front-end over a real socket."""

    queries: int
    distinct: int
    shards: int                #: 0 = unsharded backend
    backend: str               #: execution backend label
    seconds: float             #: wall-clock, first arrival → last response
    offered_qps: float
    ok: int                    #: 200 responses
    errors: dict[str, int]     #: non-200 responses, keyed by status code
    client_latencies_ms: tuple[float, ...]  #: client-observed, sorted
    front_stats: ServiceStats  #: admission-window formation
    backend_stats: ServiceStats
    health: dict               #: GET /health snapshot taken under load
    drain_report: dict         #: POST /drain response (incl. seconds)
    identity_checked: bool
    zipf_s: float

    @property
    def achieved_qps(self) -> float:
        return self.ok / self.seconds if self.seconds else 0.0

    def client_percentile_ms(self, q: float) -> float:
        return _percentile(self.client_latencies_ms, q)


def run_http_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    seed: int = 13,
    log_name: str = "AOL",
    shards: int = 0,
    backend: str | None = None,
    max_batch_size: int = 16,
    max_wait_s: float = 0.002,
    offered_qps: float = 500.0,
    zipf_s: float = 1.0,
    timeout_s: float = 60.0,
) -> HTTPThroughputResult:
    """Measure the serving stack end-to-end through HTTP sockets.

    The load is open-loop like ``--mode async`` — one client thread per
    request, each sleeping until its exponentially-spaced arrival time
    and then POSTing ``/diversify`` over a fresh connection — so the
    reported percentiles are what a network client observes: socket +
    JSON + admission window + serving, not just the inner batch.

    Identity is the load-bearing check: every 200 response body must be
    **field-identical** (the full :func:`~repro.serving.result_payload`
    projection — ranking, specializations, baseline scores) to a direct
    ``diversify_batch`` over the same query on a fresh inline reference.
    After the stream drains the harness hits ``GET /health`` and
    ``GET /stats``, then ``POST /drain`` — timing the graceful shutdown
    and asserting no request was dropped on the floor.
    """
    if offered_qps <= 0:
        raise ValueError("offered_qps must be positive")
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed, s=zipf_s)

    # The sequential reference on its own cold service, projected to the
    # wire format once so each HTTP body compares with plain ==.
    reference = [
        result_payload(result)
        for result in DiversificationService(
            make_framework(workload, log_name)
        ).diversify_batch(queries)
    ]

    if shards > 0:
        service = _build_cluster(workload, shards, log_name, backend=backend)
        backend_label = backend or "thread"
    else:
        service = DiversificationService(make_framework(workload, log_name))
        backend_label = "inline"
    service.warm(queries)

    rng = random.Random(seed + 1)
    arrivals: list[float] = []
    t = 0.0
    for _ in queries:
        t += rng.expovariate(offered_qps)
        arrivals.append(t)

    responses: list[tuple[int, dict] | None] = [None] * len(queries)
    latencies_ms: list[float] = [0.0] * len(queries)

    server = DiversificationHTTPServer(
        service,
        max_batch_size=max_batch_size,
        max_wait_s=max_wait_s,
        max_inflight=max(len(queries), 16),
        ring_size=max(len(queries), 16),
        default_timeout_s=timeout_s,
    )
    with server:
        base = server.base_url
        start = time.perf_counter() + 0.05  # let every client thread park

        def client(index: int, query: str, at: float) -> None:
            delay = start + at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            request = urllib.request.Request(
                base + "/diversify",
                data=json.dumps({"query": query}).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            sent = time.perf_counter()
            status, body = 0, {}
            for attempt in range(5):
                try:
                    with urllib.request.urlopen(
                        request, timeout=timeout_s
                    ) as rsp:
                        status, body = rsp.status, json.load(rsp)
                    break
                except urllib.error.HTTPError as error:
                    status, body = error.code, json.load(error)
                    break
                except OSError:
                    # Connect refused/reset under a burst: back off and
                    # retry — the connection never carried the request,
                    # so a retry cannot duplicate work.
                    time.sleep(0.01 * (attempt + 1))
            else:
                responses[index] = None  # recorded as client_error
                return
            latencies_ms[index] = (time.perf_counter() - sent) * 1000.0
            responses[index] = (status, body)

        threads = [
            threading.Thread(
                target=client, args=(i, q, at), name=f"http-client-{i}"
            )
            for i, (q, at) in enumerate(zip(queries, arrivals))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - start

        ok = 0
        errors: dict[str, int] = {}
        for index, outcome in enumerate(responses):
            if outcome is None:  # pragma: no cover - client thread died
                errors["client_error"] = errors.get("client_error", 0) + 1
                continue
            status, body = outcome
            if status != 200:
                errors[str(status)] = errors.get(str(status), 0) + 1
                continue
            ok += 1
            if body != reference[index]:
                raise AssertionError(
                    f"HTTP response for {queries[index]!r} differs from "
                    f"the direct diversify_batch reference"
                )

        with urllib.request.urlopen(base + "/health", timeout=10) as rsp:
            health = json.load(rsp)
        front_stats = server.front.stats
        drain_request = urllib.request.Request(
            base + "/drain", data=b"", method="POST"
        )
        with urllib.request.urlopen(drain_request, timeout=60) as rsp:
            drain_report = json.load(rsp)
        if drain_report["served_total"] != ok:
            raise AssertionError(
                f"drain reports {drain_report['served_total']} served but "
                f"{ok} requests got 200 responses — futures were dropped"
            )

    if shards > 0:
        backend_stats = service.cluster_stats()
        service.close()
    else:
        backend_stats = service.stats

    return HTTPThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        shards=shards,
        backend=backend_label,
        seconds=seconds,
        offered_qps=offered_qps,
        ok=ok,
        errors=errors,
        client_latencies_ms=tuple(sorted(
            latencies_ms[i]
            for i, outcome in enumerate(responses)
            if outcome is not None and outcome[0] == 200
        )),
        front_stats=front_stats,
        backend_stats=backend_stats,
        health=health,
        drain_report=drain_report,
        identity_checked=True,
        zipf_s=zipf_s,
    )


def summarize_http(result: HTTPThroughputResult) -> str:
    backend_label = (
        f"{result.shards}-shard {result.backend} cluster"
        if result.shards
        else "single service"
    )
    headers = ["measure", "value"]
    rows = [
        ["requests (200)", result.ok],
        ["errors", sum(result.errors.values())],
        ["achieved qps", round(result.achieved_qps, 1)],
        ["client p50 ms", round(result.client_percentile_ms(0.50), 2)],
        ["client p95 ms", round(result.client_percentile_ms(0.95), 2)],
        ["client p99 ms", round(result.client_percentile_ms(0.99), 2)],
        ["mean batch", round(result.front_stats.mean_batch_size, 2)],
        ["drain ms", round(result.drain_report["seconds"] * 1000.0, 2)],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"HTTP end-to-end — {result.queries} requests "
            f"({result.distinct} distinct) over the {backend_label}, "
            f"offered {result.offered_qps:.0f} qps"
        ),
    )


def summarize(result: ThroughputResult) -> str:
    stats = result.service_stats
    headers = ["strategy", "seconds", "qps", "p50 ms", "p95 ms"]
    rows = [
        [
            "per-query loop",
            round(result.loop_seconds, 3),
            round(result.loop_qps, 1),
            "-",
            "-",
        ],
        [
            "service batch",
            round(result.batch_seconds, 3),
            round(result.batch_qps, 1),
            round(stats.percentile_ms(0.50), 2),
            round(stats.percentile_ms(0.95), 2),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Serving throughput — {result.queries} queries "
            f"({result.distinct} distinct)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="50 topics / larger corpus (slower)",
    )
    parser.add_argument("--log", default="AOL", choices=("AOL", "MSN"))
    parser.add_argument(
        "--mode",
        default="batch",
        choices=("batch", "async", "http", "offline", "coldstart", "ingest"),
        help="'batch': pre-formed batches (loop-vs-batch, or 1-vs-N "
        "shards with --shards); 'async': the asyncio micro-batching "
        "front-end under open-loop Zipf arrivals, identity-checked "
        "against the sequential path; 'http': the REST front-end "
        "end-to-end through real sockets — open-loop clients, "
        "field-identity vs diversify_batch, /health + /stats + /drain; "
        "'offline': delegate to the offline-pipeline benchmark (serial "
        "vs partition-parallel index build + warm — python -m "
        "repro.experiments.offline has the full knob set); "
        "'coldstart': rebuild-from-documents vs attach-the-index-store "
        "cold start, timed and identity-checked at --scale-factor x "
        "the chosen corpus scale (writes BENCH_store_coldstart.json "
        "shape records via --save-stats); 'ingest': serve a Zipf stream "
        "while a paced live-ingest stream publishes epochs between "
        "query chunks, then assert the live service byte-identical "
        "(rankings and scores) to a from-scratch build of the final "
        "collection",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="in batch mode: benchmark a 1-shard vs an N-shard cluster; "
        "in async mode: put an N-shard cluster behind the front-end; "
        "with --backend: the cluster size both backend arms run at "
        "(defaults to 2 when --backend is given without --shards)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="benchmark this execution backend for the N-shard cluster "
        "against --baseline on the same workload (identity-checked "
        "against the inline reference first)",
    )
    parser.add_argument(
        "--baseline",
        choices=BACKEND_NAMES,
        default=None,
        help="comparison backend for --backend mode (default: thread, "
        "or inline when --backend thread)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="R",
        help="serve on a fault-tolerant cluster with R process replicas "
        "per shard (ReplicatedBackend), hydrated from a warm store; "
        "results are identity-checked against the fault-free inline "
        "reference (requires --backend process or no --backend)",
    )
    parser.add_argument(
        "--kill-shard",
        action="store_true",
        help="chaos flag for --replicas: hard-kill one replica per shard "
        "after the first serving batch, forcing failover and "
        "respawn-and-rehydrate mid-benchmark",
    )
    parser.add_argument(
        "--policy",
        default="round-robin",
        choices=("round-robin", "least-outstanding"),
        help="replica routing policy for --replicas",
    )
    parser.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        metavar="MS",
        help="with --replicas: hedge a request to a second replica when "
        "the first has not answered within MS milliseconds",
    )
    parser.add_argument(
        "--zipf-s",
        type=float,
        default=1.0,
        metavar="S",
        help="with --replicas or --mode http: hot-key skew exponent of "
        "the Zipf stream (1.0 = classic, larger = hotter head queries, "
        "0 = uniform)",
    )
    parser.add_argument(
        "--save-stats",
        metavar="PATH",
        default=None,
        help="write this run's benchmark record (backend, shards, qps, "
        "latency percentiles, cores) as JSON to PATH",
    )
    parser.add_argument(
        "--fused",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="--fused: benchmark the cross-query fused batch kernels "
        "against the per-query kernel loop (batch mode, identity-checked "
        "field-for-field before timing); --no-fused: pin the service's "
        "per-query loop; default: the service fuses automatically when "
        "numpy and a kernel-backed diversifier are available",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-stage fused-kernel time (densify, score, "
        "select, map-back) via repro.core.profiling.StageTimer",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="timing repeats per arm in --shards / --fused mode (best-of)",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=16,
        help="async/http mode: close the admission window at this many "
        "requests",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="async/http mode: close the admission window this long after "
        "its first request",
    )
    parser.add_argument(
        "--offered-qps",
        type=float,
        default=None,
        help="async/http mode: open-loop arrival rate of the Zipf stream "
        "(http defaults to 500 when unset)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="coldstart mode: path the SQLite index store is written to "
        "and attached from (defaults to a file next to --save-stats, or "
        "store_coldstart.sqlite3 in the working directory)",
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="coldstart mode: enforce this resident-byte limit on the "
        "attached engine (LRU whole-partition eviction); identity vs the "
        "in-memory rebuild is still asserted",
    )
    parser.add_argument(
        "--scale-factor",
        type=int,
        default=1,
        metavar="N",
        help="coldstart mode: multiply docs-per-aspect and background "
        "docs by N (10 = the committed BENCH_store_coldstart.json scale)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=4,
        metavar="N",
        help="coldstart/ingest mode: partitions of both engines",
    )
    args = parser.parse_args(argv)

    if args.mode == "offline":
        # The offline pipeline has its own harness (and extra knobs:
        # --partitions, --start-method, --warm-dir); forward the shared
        # ones so `throughput --mode offline` keeps working as the
        # single benchmarking entry point.
        from repro.experiments import offline as offline_experiment

        forwarded = ["--queries", str(args.queries), "--log", args.log]
        if args.paper_scale:
            forwarded.append("--paper-scale")
        if args.backend is not None:
            forwarded += ["--backend", args.backend]
        if args.shards > 0:
            forwarded += ["--shards", str(args.shards)]
        if args.save_stats:
            forwarded += ["--save-stats", args.save_stats]
        offline_experiment.main(forwarded)
        return

    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE

    if args.mode == "coldstart":
        # Coldstart generates its own (possibly 10x/100x) corpus — it
        # must not pay for the full TREC workload build the serving
        # modes share.
        store_path = args.store
        if store_path is None:
            store_path = (
                str(Path(args.save_stats).with_suffix(".sqlite3"))
                if args.save_stats
                else "store_coldstart.sqlite3"
            )
        result = run_store_coldstart(
            store_path,
            scale=scale,
            scale_factor=args.scale_factor,
            partitions=args.partitions,
            memory_budget=args.memory_budget,
        )
        print(summarize_coldstart(result))
        print()
        print(
            f"store: {result.store_bytes / 1e6:.2f}MB on disk, written in "
            f"{result.store_write_seconds:.3f}s (once, offline)."
        )
        print(
            f"cold start: attach {result.attach_seconds:.4f}s vs rebuild "
            f"{result.rebuild_seconds:.3f}s → {result.attach_speedup:.0f}x "
            f"faster to first query."
        )
        cache = result.page_cache
        print(
            f"probes: {result.probe_queries} topic queries at k={result.k}, "
            f"p50={result.probe_percentile_ms(0.50):.2f}ms "
            f"p95={result.probe_percentile_ms(0.95):.2f}ms; page cache "
            f"{cache.hits}/{cache.misses} hits/misses, "
            f"{cache.evictions} evictions, "
            f"{cache.resident_bytes / 1e6:.2f}MB resident."
        )
        if result.memory_budget is not None:
            print(
                f"memory budget: {result.memory_budget} bytes enforced on "
                f"the attached engine (LRU partition eviction)."
            )
        print(
            "every probe verified byte-identical (ranking and scores) "
            "between the rebuilt and the store-attached engine."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "coldstart",
                    backend="inline",
                    shards=result.partitions,
                    queries=result.probe_queries,
                    distinct=result.probe_queries,
                    qps=result.probe_qps,
                    seconds=result.probe_seconds,
                    latency={
                        "mean_ms": round(
                            sum(result.probe_latencies_ms)
                            / max(len(result.probe_latencies_ms), 1),
                            4,
                        ),
                        "p50_ms": round(result.probe_percentile_ms(0.50), 4),
                        "p95_ms": round(result.probe_percentile_ms(0.95), 4),
                        "p99_ms": round(result.probe_percentile_ms(0.99), 4),
                    },
                    scale=scale.name,
                    identity_checked=result.identity_checked,
                    hardware_limited=False,
                    store=str(store_path),
                    memory_budget=result.memory_budget,
                    scale_factor=result.scale_factor,
                    documents=result.documents,
                    k=result.k,
                    rebuild_seconds=round(result.rebuild_seconds, 5),
                    rebuild_resident_bytes=result.rebuild_resident_bytes,
                    store_bytes=result.store_bytes,
                    store_write_seconds=round(result.store_write_seconds, 5),
                    attach_seconds=round(result.attach_seconds, 5),
                    attach_speedup=round(result.attach_speedup, 2),
                    attach_resident_cold_bytes=(
                        result.attach_resident_cold_bytes
                    ),
                    attach_resident_warm_bytes=(
                        result.attach_resident_warm_bytes
                    ),
                    page_cache={
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "evictions": cache.evictions,
                        "resident_bytes": cache.resident_bytes,
                    },
                ),
            )
            print(f"benchmark record written to {path}")
        return

    workload = build_trec_workload(scale, logs=(args.log,))

    if args.mode == "ingest":
        result = run_ingest_throughput(
            workload,
            args.queries,
            partitions=args.partitions,
            zipf_s=args.zipf_s,
            log_name=args.log,
        )
        print(summarize_ingest(result))
        print()
        print(
            f"served {result.queries} queries ({result.distinct} distinct) "
            f"in {result.seconds:.3f}s ({result.qps:.1f} qps) interleaved "
            f"with {result.ingest_batches} ingest epochs "
            f"(+{result.documents_added}/-{result.documents_removed} docs, "
            f"{result.ingest_seconds:.3f}s in ingest, "
            f"p95 {result.ingest_percentile_ms(0.95):.2f}ms per epoch)"
        )
        print(
            f"caches: {result.warm_invalidations} warm artifacts "
            f"invalidated across publishes; {result.service_stats.summary()}"
        )
        print(
            "identity check: final collection order and every distinct "
            "query's ranking AND baseline scores verified byte-identical "
            "to a from-scratch build of the final collection."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "ingest",
                    backend="inline",
                    shards=0,
                    queries=result.queries,
                    distinct=result.distinct,
                    qps=result.qps,
                    seconds=result.seconds,
                    latency=_latency_record(result.service_stats),
                    scale=scale.name,
                    zipf_s=args.zipf_s,
                    identity_checked=result.identity_checked,
                    hardware_limited=False,
                    partitions=result.partitions,
                    ingest_batches=result.ingest_batches,
                    documents_added=result.documents_added,
                    documents_removed=result.documents_removed,
                    epochs_published=result.epochs_published,
                    warm_invalidations=result.warm_invalidations,
                    final_documents=result.final_documents,
                    ingest_seconds=round(result.ingest_seconds, 5),
                    ingest_latency={
                        "p50_ms": round(result.ingest_percentile_ms(0.50), 4),
                        "p95_ms": round(result.ingest_percentile_ms(0.95), 4),
                        "p99_ms": round(result.ingest_percentile_ms(0.99), 4),
                    },
                ),
            )
            print(f"benchmark record written to {path}")
        return

    if args.replicas > 1:
        if args.backend not in (None, "process"):
            parser.error(
                "--replicas runs on process workers; omit --backend or "
                "use --backend process"
            )
        if args.mode != "batch":
            parser.error("--replicas requires --mode batch")
        result = run_replicated_throughput(
            workload,
            args.queries,
            shards=args.shards or 2,
            replicas=args.replicas,
            policy=args.policy,
            hedge_after_ms=args.hedge_ms,
            kill_shard=args.kill_shard,
            zipf_s=args.zipf_s,
            log_name=args.log,
        )
        print(summarize_replicated(result))
        print()
        print(
            f"served {result.queries} queries in {result.seconds:.3f}s "
            f"({result.qps:.1f} qps) across {result.batches} batches on "
            f"{result.shards}x{result.replicas} process replicas"
        )
        print(f"warm (cluster): {result.warm.summary()}")
        if result.kill_shard:
            print(
                f"chaos: one replica per shard hard-killed after batch 1 "
                f"→ {result.respawns} respawn(s), "
                f"{result.failovers} failover(s); respawned replicas "
                f"rehydrated from the warm store."
            )
        if result.hedge_after_ms is not None:
            print(
                f"hedging after {result.hedge_after_ms:g}ms: "
                f"{result.hedges_fired} fired, {result.hedges_won} won."
            )
        print(f"cluster: {result.cluster_stats.summary()}")
        print(
            "every result (ranking and baseline scores) verified "
            "identical to the fault-free inline reference."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "replicated",
                    backend="process",
                    shards=result.shards,
                    replicas=result.replicas,
                    policy=result.policy,
                    zipf_s=result.zipf_s,
                    queries=result.queries,
                    distinct=result.distinct,
                    qps=result.qps,
                    seconds=result.seconds,
                    latency=_latency_record(result.cluster_stats),
                    identity_checked=result.identity_checked,
                    scale=scale.name,
                    hedge_after_ms=result.hedge_after_ms,
                    kill_shard=result.kill_shard,
                    respawns=result.respawns,
                    failovers=result.failovers,
                    hedges_fired=result.hedges_fired,
                    hedges_won=result.hedges_won,
                ),
            )
            print(f"benchmark record written to {path}")
        return
    if args.kill_shard or args.hedge_ms is not None:
        parser.error("--kill-shard/--hedge-ms require --replicas 2 or more")

    offered_qps = args.offered_qps
    if offered_qps is None:
        offered_qps = 500.0 if args.mode == "http" else 2000.0

    if args.mode == "http":
        shards = args.shards or (2 if args.backend else 0)
        result = run_http_throughput(
            workload,
            args.queries,
            log_name=args.log,
            shards=shards,
            backend=args.backend,
            max_batch_size=args.max_batch_size,
            max_wait_s=args.max_wait_ms / 1000.0,
            offered_qps=offered_qps,
            zipf_s=args.zipf_s,
        )
        print(summarize_http(result))
        print()
        print(
            f"served {result.ok}/{result.queries} requests over HTTP in "
            f"{result.seconds:.3f}s ({result.achieved_qps:.1f} qps achieved "
            f"vs {result.offered_qps:.0f} offered)"
        )
        if result.errors:
            print(f"errors by status: {result.errors}")
        front = result.front_stats
        print(
            f"formation: mean batch {front.mean_batch_size:.1f}, "
            f"queue wait mean={front.mean_wait_ms:.2f}ms "
            f"p95={front.wait_percentile_ms(0.95):.2f}ms"
        )
        print(f"health under load: {result.health['status']}")
        print(
            f"drain: {result.drain_report['served_total']} served, "
            f"{result.drain_report['pending_at_drain']} pending at drain, "
            f"{result.drain_report['seconds'] * 1000.0:.1f}ms"
        )
        print(
            "identity check: every 200 response body equals the direct "
            "diversify_batch payload, field for field."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "http",
                    backend=result.backend,
                    shards=result.shards,
                    queries=result.queries,
                    distinct=result.distinct,
                    qps=result.achieved_qps,
                    seconds=result.seconds,
                    latency={
                        "mean_ms": round(
                            sum(result.client_latencies_ms)
                            / max(len(result.client_latencies_ms), 1),
                            4,
                        ),
                        "p50_ms": round(result.client_percentile_ms(0.50), 4),
                        "p95_ms": round(result.client_percentile_ms(0.95), 4),
                        "p99_ms": round(result.client_percentile_ms(0.99), 4),
                    },
                    scale=scale.name,
                    zipf_s=result.zipf_s,
                    identity_checked=result.identity_checked,
                    offered_qps=round(result.offered_qps, 2),
                    ok=result.ok,
                    errors=result.errors,
                    mean_batch_size=round(front.mean_batch_size, 3),
                    drain_seconds=round(result.drain_report["seconds"], 5),
                    backend_latency=_latency_record(result.backend_stats),
                ),
            )
            print(f"benchmark record written to {path}")
        return

    if args.backend is not None:
        result = run_backend_throughput(
            workload,
            args.queries,
            shards=args.shards or 2,
            backend=args.backend,
            baseline=args.baseline,
            log_name=args.log,
            repeats=args.repeats,
        )
        print(summarize_backends(result))
        print()
        print(
            f"batch wall-clock (best of {len(result.backend_times)}): "
            f"{result.baseline} {result.baseline_seconds:.3f}s "
            f"({result.baseline_qps:.1f} qps)  vs  "
            f"{result.backend} {result.backend_seconds:.3f}s "
            f"({result.backend_qps:.1f} qps)  "
            f"→ {result.speedup:.2f}x (timing noise ±{result.noise:.1%})"
        )
        print(f"warm ({result.backend}): {result.backend_warm.summary()}")
        if result.cores < 2:
            print(
                f"note: this host reports {result.cores} core(s) — "
                "process-level parallelism cannot beat the baseline here; "
                "parity within noise is the expected reading (the identity "
                "check is the load-bearing result on single-core hosts)."
            )
        elif result.hardware_limited:
            print(
                f"note: {result.cores} cores for {result.shards} shards — "
                f"the ideal {result.shards}x fan-out cannot materialise; "
                f"expect at most ~{result.cores}x."
            )
        print(
            f"rankings verified identical to the inline reference under "
            f"the {result.backend} backend before timing."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "backend",
                    backend=result.backend,
                    shards=result.shards,
                    queries=result.queries,
                    distinct=result.distinct,
                    qps=result.backend_qps,
                    seconds=result.backend_seconds,
                    latency=_latency_record(result.cluster_stats),
                    identity_checked=result.identity_checked,
                    hardware_limited=result.hardware_limited,
                    scale=scale.name,
                    baseline=result.baseline,
                    baseline_qps=round(result.baseline_qps, 2),
                    baseline_seconds=round(result.baseline_seconds, 5),
                    speedup=round(result.speedup, 3),
                    noise=round(result.noise, 3),
                ),
            )
            print(f"benchmark record written to {path}")
        return

    if args.mode == "async":
        result = run_async_throughput(
            workload,
            args.queries,
            log_name=args.log,
            shards=args.shards,
            max_batch_size=args.max_batch_size,
            max_wait_s=args.max_wait_ms / 1000.0,
            offered_qps=offered_qps,
        )
        print(summarize_async(result))
        print()
        front = result.front_stats
        print(
            f"served {result.queries} requests in {result.seconds:.3f}s "
            f"({result.achieved_qps:.1f} qps achieved vs "
            f"{result.offered_qps:.0f} offered)"
        )
        print(
            f"formation: mean batch {front.mean_batch_size:.1f}, "
            f"queue wait mean={front.mean_wait_ms:.2f}ms "
            f"p95={front.wait_percentile_ms(0.95):.2f}ms, "
            f"queue depth peak={front.queue_depth_peak}"
        )
        print(f"backend: {result.backend_stats.summary()}")
        print(
            "identity check: every async result equals the sequential "
            "diversify_batch ranking for the same query stream."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "async",
                    backend="thread",
                    shards=result.shards,
                    queries=result.queries,
                    distinct=result.distinct,
                    qps=result.achieved_qps,
                    seconds=result.seconds,
                    latency=_latency_record(result.backend_stats),
                    identity_checked=result.identity_checked,
                    scale=scale.name,
                    offered_qps=round(result.offered_qps, 2),
                    mean_batch_size=round(front.mean_batch_size, 3),
                ),
            )
            print(f"benchmark record written to {path}")
        return

    if args.shards > 0:
        sharded = run_sharded_throughput(
            workload,
            args.queries,
            shards=args.shards,
            log_name=args.log,
            repeats=args.repeats,
        )
        print(summarize_sharded(sharded))
        print()
        print(
            f"batch wall-clock (best of {args.repeats}): "
            f"1 shard {sharded.single_seconds:.3f}s "
            f"({sharded.single_qps:.1f} qps)  vs  "
            f"{sharded.shards} shards {sharded.sharded_seconds:.3f}s "
            f"({sharded.sharded_qps:.1f} qps)  "
            f"→ {sharded.speedup:.2f}x (timing noise ±{sharded.noise:.1%})"
        )
        print(f"warm (cluster): {sharded.sharded_warm.summary()}")
        print(
            f"caches (cluster): specialization "
            f"{sharded.spec_cache.hit_rate:.0%} hit rate "
            f"({sharded.spec_cache.size} entries across shards), "
            f"result {sharded.result_cache.hit_rate:.0%}"
        )
        print(
            "rankings verified identical to the unsharded "
            "DiversificationService before timing."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "sharded",
                    backend="thread",
                    shards=sharded.shards,
                    queries=sharded.queries,
                    distinct=sharded.distinct,
                    qps=sharded.sharded_qps,
                    seconds=sharded.sharded_seconds,
                    latency=_latency_record(sharded.cluster_stats),
                    identity_checked=True,
                    scale=scale.name,
                    baseline_qps=round(sharded.single_qps, 2),
                    speedup=round(sharded.speedup, 3),
                    noise=round(sharded.noise, 3),
                ),
            )
            print(f"benchmark record written to {path}")
        return

    if args.fused:
        fused_result = run_fused_throughput(
            workload,
            args.queries,
            log_name=args.log,
            repeats=args.repeats,
            profile=args.profile,
        )
        stats = fused_result.fused_stats
        print(summarize_fused(fused_result))
        print()
        print(
            f"batch wall-clock (best of {len(fused_result.fused_times)}): "
            f"looped {fused_result.looped_seconds:.3f}s "
            f"({fused_result.looped_qps:.1f} qps)  vs  "
            f"fused {fused_result.fused_seconds:.3f}s "
            f"({fused_result.fused_qps:.1f} qps)  "
            f"→ {fused_result.speedup:.2f}x "
            f"(timing noise ±{fused_result.noise:.1%})"
        )
        print(
            f"fusion: groups={stats.fusion_groups} "
            f"fused={stats.fused_queries} "
            f"fallback={stats.fallback_queries} "
            f"pad fill={stats.pad_fill_ratio:.2f}"
        )
        if fused_result.stage_profile:
            print("stage profile (best fused run):")
            print(_stage_profile_lines(fused_result.stage_profile))
        print(
            "identity check: every fused result equals the per-query "
            "loop's, field-for-field, before timing."
        )
        if args.save_stats:
            path = save_stats_record(
                args.save_stats,
                build_stats_record(
                    "fused",
                    backend="inline",
                    shards=0,
                    queries=fused_result.queries,
                    distinct=fused_result.distinct,
                    qps=fused_result.fused_qps,
                    seconds=fused_result.fused_seconds,
                    latency=_latency_record(stats),
                    identity_checked=fused_result.identity_checked,
                    scale=scale.name,
                    baseline_qps=round(fused_result.looped_qps, 2),
                    baseline_seconds=round(fused_result.looped_seconds, 5),
                    speedup=round(fused_result.speedup, 3),
                    noise=round(fused_result.noise, 3),
                    warm_seconds=round(fused_result.warm_seconds, 5),
                    pad_fill_ratio=round(fused_result.pad_fill_ratio, 4),
                    fusion_groups=stats.fusion_groups,
                    fused_queries=stats.fused_queries,
                    fallback_queries=stats.fallback_queries,
                    stage_profile=fused_result.stage_profile,
                ),
            )
            print(f"benchmark record written to {path}")
        return

    result = run_throughput(
        workload,
        args.queries,
        log_name=args.log,
        fused=args.fused,
        profile=args.profile,
    )
    print(summarize(result))
    print()
    print(
        f"speedup: {result.speedup:.1f}x  "
        f"(warm phase: {result.warm_seconds:.3f}s, "
        f"ranked {result.service_stats.ranked} pipelines for "
        f"{result.queries} requests)"
    )
    print(
        f"cache hit rates: specialization={result.spec_cache_hit_rate:.0%}, "
        f"result={result.result_cache_hit_rate:.0%}"
    )
    if result.stage_profile:
        print("stage profile (fused kernels):")
        print(_stage_profile_lines(result.stage_profile))
    if args.save_stats:
        path = save_stats_record(
            args.save_stats,
            build_stats_record(
                "batch",
                backend="inline",
                shards=0,
                queries=result.queries,
                distinct=result.distinct,
                qps=result.batch_qps,
                seconds=result.batch_seconds,
                latency=_latency_record(result.service_stats),
                identity_checked=True,
                scale=scale.name,
                baseline_qps=round(result.loop_qps, 2),
                speedup=round(result.speedup, 3),
                warm_seconds=round(result.warm_seconds, 5),
            ),
        )
        print(f"benchmark record written to {path}")


if __name__ == "__main__":
    main()

"""Serving throughput — batched service vs the per-query loop.

The paper's claim is qualitative — OptSelect is cheap enough to
diversify *online* — and Tables 2/3 time the selection step in
isolation.  This harness measures what a deployment actually pays:
end-to-end wall-clock of serving a realistic (Zipf-repeating) query
workload, comparing

* the seed's architecture: one ``diversify_query`` pipeline per request;
* the serving layer: ``warm()`` offline, then ``diversify_batch``.

The service wins on three amortisations — distinct queries run the
pipeline once per batch, specialization artifacts are prefetched in one
deduplicated engine pass, and repeated traffic is served from the
bounded result LRU — and the report includes per-query latency
percentiles plus cache hit rates so each effect is visible.

Run as a script::

    python -m repro.experiments.throughput [--queries N] [--paper-scale]
"""

from __future__ import annotations

import argparse
import random
import time
from dataclasses import dataclass

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.experiments.reporting import render_table
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)
from repro.serving import DiversificationService, ServiceStats

__all__ = [
    "ThroughputResult",
    "zipf_workload",
    "make_framework",
    "run_throughput",
    "main",
]


@dataclass(frozen=True)
class ThroughputResult:
    """Timings of the two serving strategies over the same workload."""

    queries: int
    distinct: int
    loop_seconds: float
    batch_seconds: float
    warm_seconds: float
    service_stats: ServiceStats
    spec_cache_hit_rate: float
    result_cache_hit_rate: float

    @property
    def loop_qps(self) -> float:
        return self.queries / self.loop_seconds if self.loop_seconds else 0.0

    @property
    def batch_qps(self) -> float:
        return self.queries / self.batch_seconds if self.batch_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (
            self.loop_seconds / self.batch_seconds if self.batch_seconds else 0.0
        )


def zipf_workload(
    workload: TrecWorkload, num_queries: int, seed: int = 13
) -> list[str]:
    """A Zipf-repeating query stream over the testbed's topic queries.

    Web traffic repeats: the head query dominates, the tail is long.
    Weighting topic i by 1/(i+1) reproduces that shape, which is exactly
    the regime batching and result caching are built for.
    """
    rng = random.Random(seed)
    queries = [topic.query for topic in workload.testbed.topics]
    weights = [1.0 / (i + 1) for i in range(len(queries))]
    return rng.choices(queries, weights=weights, k=num_queries)


def make_framework(
    workload: TrecWorkload, log_name: str = "AOL"
) -> DiversificationFramework:
    """A fresh framework at the workload's scale (cold caches)."""
    scale = workload.scale
    return DiversificationFramework(
        workload.engine,
        workload.miner(log_name),
        config=FrameworkConfig(
            k=scale.k,
            candidates=scale.candidates,
            spec_results=scale.spec_results,
        ),
    )


def run_throughput(
    workload: TrecWorkload | None = None,
    num_queries: int = 100,
    seed: int = 13,
    log_name: str = "AOL",
) -> ThroughputResult:
    """Time the per-query loop vs the warmed batched service."""
    workload = workload or build_trec_workload(SMALL_SCALE)
    queries = zipf_workload(workload, num_queries, seed)

    # Seed architecture: a pipeline per request (its own spec cache,
    # as the seed framework had).
    loop_framework = make_framework(workload, log_name)
    start = time.perf_counter()
    loop_results = [loop_framework.diversify_query(q) for q in queries]
    loop_seconds = time.perf_counter() - start

    # Serving layer: offline warm, then one batch.
    service = DiversificationService(make_framework(workload, log_name))
    start = time.perf_counter()
    service.warm(queries)
    warm_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batch_results = service.diversify_batch(queries)
    batch_seconds = time.perf_counter() - start

    # Same system, same answers: the serving layer must not change what
    # gets served, only how fast.
    for loop_result, batch_result in zip(loop_results, batch_results):
        if loop_result.ranking != batch_result.ranking:
            raise AssertionError(
                f"serving layer changed the ranking of {loop_result.query!r}"
            )

    return ThroughputResult(
        queries=len(queries),
        distinct=len(set(queries)),
        loop_seconds=loop_seconds,
        batch_seconds=batch_seconds,
        warm_seconds=warm_seconds,
        service_stats=service.stats,
        spec_cache_hit_rate=service.spec_cache_info().hit_rate,
        result_cache_hit_rate=service.result_cache_info().hit_rate,
    )


def summarize(result: ThroughputResult) -> str:
    stats = result.service_stats
    headers = ["strategy", "seconds", "qps", "p50 ms", "p95 ms"]
    rows = [
        [
            "per-query loop",
            round(result.loop_seconds, 3),
            round(result.loop_qps, 1),
            "-",
            "-",
        ],
        [
            "service batch",
            round(result.batch_seconds, 3),
            round(result.batch_qps, 1),
            round(stats.percentile_ms(0.50), 2),
            round(stats.percentile_ms(0.95), 2),
        ],
    ]
    return render_table(
        headers,
        rows,
        title=(
            f"Serving throughput — {result.queries} queries "
            f"({result.distinct} distinct)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="50 topics / larger corpus (slower)",
    )
    parser.add_argument("--log", default="AOL", choices=("AOL", "MSN"))
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale, logs=(args.log,))
    result = run_throughput(workload, args.queries, log_name=args.log)
    print(summarize(result))
    print()
    print(
        f"speedup: {result.speedup:.1f}x  "
        f"(warm phase: {result.warm_seconds:.3f}s, "
        f"ranked {result.service_stats.ranked} pipelines for "
        f"{result.queries} requests)"
    )
    print(
        f"cache hit rates: specialization={result.spec_cache_hit_rate:.0%}, "
        f"result={result.result_cache_hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()

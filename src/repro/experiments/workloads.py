"""Workload builders shared by the experiment harnesses and benchmarks.

Two kinds of workload:

* :func:`synthetic_task` — a :class:`~repro.core.task.DiversificationTask`
  with synthetic utilities/relevance, used by the efficiency experiments
  (Tables 1 and 2).  The paper times the *diversification step itself*
  ("the time required ... to diversify the list of retrieved documents"),
  with utilities coming from precomputed structures, so the timing
  workload needs no retrieval engine — just realistic utility sparsity.

* :class:`TrecWorkload` / :func:`build_trec_workload` — the full pipeline
  (corpus → engine → logs → miner → testbed) behind the effectiveness
  experiments (Table 3, Figure 1, the Appendix C recall measure).  Built
  once and shared: constructing it is the expensive part of those
  experiments.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet
from repro.core.task import DiversificationTask
from repro.core.utility import UtilityMatrix
from repro.corpus.generator import CorpusConfig, SyntheticCorpus, generate_corpus
from repro.corpus.trec import DiversityTestbed, build_testbed
from repro.corpus.vocabulary import ZipfSampler
from repro.querylog.records import QueryLog
from repro.querylog.specializations import MinerConfig, SpecializationMiner
from repro.querylog.synthesis import AOL_PROFILE, MSN_PROFILE, generate_query_log
from repro.retrieval.documents import DocumentCollection
from repro.retrieval.engine import ResultList, SearchEngine
from repro.retrieval.models import BM25

__all__ = [
    "synthetic_task",
    "ExternalWebEngine",
    "TrecWorkload",
    "build_trec_workload",
    "SMALL_SCALE",
    "PAPER_SCALE",
]


def synthetic_task(
    n: int,
    num_specs: int = 8,
    density: float = 0.25,
    seed: int = 7,
    lambda_: float = 0.15,
    with_vectors: bool = False,
) -> DiversificationTask:
    """A diversification task over *n* synthetic candidates.

    * specialisation probabilities are Zipfian over *num_specs* intents
    * each candidate is useful (Ũ > 0) for a given specialization with
      probability *density*; positive utilities are uniform in (0, 1]
    * relevance decays with rank, like a real retrieval score curve
    * ``with_vectors`` additionally attaches random sparse surrogate
      vectors (over a 40-term vocabulary) so vector-based algorithms
      (MMR) can run on the synthetic workload too

    Deterministic given *seed*.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    rng = random.Random(seed)
    doc_ids = [f"d{i:07d}" for i in range(n)]
    # Score curve ~ 1/sqrt(rank): steep head, long flat tail.
    candidates = ResultList(
        "synthetic", [(d, 1.0 / (i + 1) ** 0.5) for i, d in enumerate(doc_ids)]
    )
    zipf = ZipfSampler(num_specs, s=1.0)
    spec_names = [f"spec{j}" for j in range(num_specs)]
    specializations = SpecializationSet(
        query="synthetic",
        items=tuple(
            (spec_names[j], zipf.probability(j)) for j in range(num_specs)
        ),
    )
    values: dict[str, dict[str, float]] = {s: {} for s in spec_names}
    for doc_id in doc_ids:
        for spec in spec_names:
            if rng.random() < density:
                values[spec][doc_id] = rng.random()
    matrix = UtilityMatrix(values, doc_ids)
    task = DiversificationTask.create(
        query="synthetic",
        candidates=candidates,
        specializations=specializations,
        utilities=matrix,
        lambda_=lambda_,
        relevance_method="sum",
    )
    if with_vectors:
        from repro.retrieval.similarity import TermVector

        vocabulary = [f"term{t}" for t in range(40)]
        task.vectors = {
            doc_id: TermVector(
                {
                    term: rng.random()
                    for term in rng.sample(vocabulary, rng.randint(0, 8))
                }
            )
            for doc_id in doc_ids
        }
    return task


# ---------------------------------------------------------------------------
# Full-pipeline workload
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadScale:
    """Size knobs of the full-pipeline workload."""

    name: str
    num_topics: int
    docs_per_aspect: int
    background_docs: int
    log_scale: float
    candidates: int
    k: int
    spec_results: int = 20
    cutoffs: tuple[int, ...] = (5, 10, 20, 100)


#: Fast scale for tests and default benchmark runs (seconds, not minutes).
SMALL_SCALE = WorkloadScale(
    name="small",
    num_topics=12,
    docs_per_aspect=10,
    background_docs=150,
    log_scale=0.15,
    candidates=120,
    k=30,
    cutoffs=(5, 10, 20),
)

#: The 50-topic scale mirroring the TREC 2009 diversity task shape.
PAPER_SCALE = WorkloadScale(
    name="paper",
    num_topics=50,
    docs_per_aspect=25,
    background_docs=800,
    log_scale=1.0,
    candidates=400,
    k=100,
    cutoffs=(5, 10, 20, 100),
)


@dataclass
class TrecWorkload:
    """Everything the effectiveness experiments need, built once."""

    scale: WorkloadScale
    corpus: SyntheticCorpus
    testbed: DiversityTestbed
    engine: SearchEngine
    logs: dict[str, QueryLog]
    miners: dict[str, SpecializationMiner]
    #: tasks[log_name][topic_id] — diversification task at threshold c=0,
    #: or None when Algorithm 1 did not fire for the topic's query.
    tasks: dict[str, dict[int, DiversificationTask]] = field(default_factory=dict)

    def miner(self, log_name: str = "AOL") -> SpecializationMiner:
        return self.miners[log_name]

    def external_engine(self) -> "ExternalWebEngine":
        """A second, differently-ranked engine playing Yahoo! BOSS
        (Appendix C re-ranks an *external* WSE's results)."""
        return ExternalWebEngine(self.corpus.collection)


class ExternalWebEngine(SearchEngine):
    """A stand-in for the external WSE of Appendix C (Yahoo! BOSS).

    A commercial engine's ranking mixes textual relevance with signals
    our corpus cannot model (link popularity, freshness, clicks), so its
    top results for an ambiguous query correlate only weakly with the
    specialization result lists mined from the paper's own index — which
    is exactly why re-ranking them by utility gains so much (Figure 1's
    5–10× ratios).  We model the missing signals as a deterministic
    per-document static prior mixed with BM25::

        score' = (1 − w) · minmax(BM25) + w · prior(doc_id)

    with ``prior`` a hash-based pseudo-random value in [0, 1] — the same
    document always gets the same prior, different documents are
    incomparable on text alone.  See DESIGN.md §3.
    """

    def __init__(
        self,
        collection: DocumentCollection,
        prior_weight: float = 0.9,
        prior_seed: int = 99,
    ) -> None:
        if not 0.0 <= prior_weight <= 1.0:
            raise ValueError("prior_weight must lie in [0, 1]")
        super().__init__(collection, model=BM25())
        self.prior_weight = prior_weight
        self.prior_seed = prior_seed

    def _prior(self, doc_id: str) -> float:
        # Deterministic, platform-stable hash → [0, 1).
        h = hashlib.blake2b(
            f"{self.prior_seed}:{doc_id}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(h, "big") / 2**64

    def _prior_ranked_pool(self) -> list[str]:
        """All doc_ids by descending static prior (computed lazily once)."""
        pool = getattr(self, "_pool", None)
        if pool is None:
            pool = sorted(
                (d.doc_id for d in self.collection),
                key=lambda doc_id: -self._prior(doc_id),
            )
            self._pool = pool
        return pool

    def search(self, query: str, k: int = 1000) -> ResultList:
        text_ranked = super().search(query, max(k * 3, k))
        w = self.prior_weight
        mixed: list[tuple[str, float]] = []
        matched: set[str] = set()
        if len(text_ranked):
            scores = text_ranked.scores
            lo, hi = min(scores), max(scores)
            span = (hi - lo) or 1.0
            for r in text_ranked:
                matched.add(r.doc_id)
                mixed.append(
                    (
                        r.doc_id,
                        (1.0 - w) * ((r.score - lo) / span)
                        + w * self._prior(r.doc_id),
                    )
                )
        # A web engine always fills its result page: pad with documents
        # "matched" through signals outside our corpus model (anchors,
        # clicks, freshness), ranked by the static prior alone.
        if len(mixed) < k:
            for doc_id in self._prior_ranked_pool():
                if len(mixed) >= k:
                    break
                if doc_id not in matched:
                    mixed.append((doc_id, w * self._prior(doc_id) * 0.999))
        mixed.sort(key=lambda item: (-item[1], item[0]))
        return ResultList(query, mixed[:k])


def build_trec_workload(
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 42,
    logs: tuple[str, ...] = ("AOL",),
    miner_config: MinerConfig | None = None,
) -> TrecWorkload:
    """Build corpus, engine, logs, miners and testbed at the given scale."""
    corpus = generate_corpus(
        CorpusConfig(
            num_topics=scale.num_topics,
            docs_per_aspect=scale.docs_per_aspect,
            background_docs=scale.background_docs,
            seed=seed,
        )
    )
    testbed = build_testbed(corpus)
    engine = SearchEngine(corpus.collection)
    profiles = {"AOL": AOL_PROFILE, "MSN": MSN_PROFILE}
    logs_built: dict[str, QueryLog] = {}
    miners: dict[str, SpecializationMiner] = {}
    for log_name in logs:
        profile = profiles[log_name].scaled(scale.log_scale)
        log = generate_query_log(corpus, profile)
        logs_built[log_name] = log
        miners[log_name] = SpecializationMiner(
            log, miner_config or MinerConfig()
        ).build()
    return TrecWorkload(
        scale=scale,
        corpus=corpus,
        testbed=testbed,
        engine=engine,
        logs=logs_built,
        miners=miners,
    )


def empty_collection() -> DocumentCollection:
    """Convenience for tests needing an engine over nothing."""
    return DocumentCollection()

"""Table 1 — time complexity of the three algorithms.

The paper's Table 1 states::

    IASelect   O(n·k)
    xQuAD      O(n·k)
    OptSelect  O(n·log2 k)

This experiment verifies the asymptotic *shape* empirically, using the
operation counters every algorithm records (marginal-utility updates for
the greedy pair, heap pushes for OptSelect) — which is hardware and
interpreter independent, unlike Table 2's wall-clock times:

* for fixed k, all three scale linearly in n;
* for fixed n, the greedy pair scales linearly in k while OptSelect's
  count stays flat (the log k factor sits inside each heap push, not in
  the number of operations).

Run as a script::

    python -m repro.experiments.table1
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.iaselect import IASelect
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD
from repro.experiments.reporting import render_table
from repro.experiments.workloads import synthetic_task

__all__ = ["ComplexityCell", "run_table1", "main"]

DEFAULT_N = (1000, 2000, 4000)
DEFAULT_K = (10, 50, 100, 200)
NUM_SPECS = 8


@dataclass(frozen=True)
class ComplexityCell:
    """Measured operation count of one (algorithm, n, k) combination."""

    algorithm: str
    n: int
    k: int
    operations: int

    @property
    def ops_per_candidate(self) -> float:
        return self.operations / self.n


def run_table1(
    ns: tuple[int, ...] = DEFAULT_N,
    ks: tuple[int, ...] = DEFAULT_K,
    num_specs: int = NUM_SPECS,
    seed: int = 7,
) -> list[ComplexityCell]:
    """Measure dominant-loop operation counts over the (n, k) grid."""
    algorithms = [OptSelect(), XQuAD(), IASelect()]
    cells: list[ComplexityCell] = []
    for n in ns:
        task = synthetic_task(n, num_specs=num_specs, seed=seed)
        for k in ks:
            if k > n:
                continue
            for algorithm in algorithms:
                algorithm.diversify(task, k)
                cells.append(
                    ComplexityCell(
                        algorithm=algorithm.name,
                        n=n,
                        k=k,
                        operations=algorithm.last_stats.operations,
                    )
                )
    return cells


def summarize(cells: list[ComplexityCell]) -> str:
    """Render measured counts next to the paper's complexity claims."""
    by_algo: dict[str, list[ComplexityCell]] = {}
    for cell in cells:
        by_algo.setdefault(cell.algorithm, []).append(cell)
    headers = ["algorithm", "paper claim", "n", "k", "measured ops", "ops / n"]
    claims = {
        "IASelect": "O(n k)",
        "xQuAD": "O(n k)",
        "OptSelect": "O(n log k)",
    }
    rows = []
    for algorithm, algo_cells in by_algo.items():
        for cell in algo_cells:
            rows.append(
                [
                    algorithm,
                    claims.get(algorithm, "?"),
                    cell.n,
                    cell.k,
                    cell.operations,
                    round(cell.ops_per_candidate, 2),
                ]
            )
    return render_table(headers, rows, title="Table 1 — measured complexity")


def main() -> None:
    cells = run_table1()
    print(summarize(cells))
    print()
    print(
        "Shape check: for the greedy pair 'ops / n' grows ~linearly with k;"
        " for OptSelect it stays ~constant (bounded by |S_q| pushes per"
        " candidate)."
    )


if __name__ == "__main__":
    main()

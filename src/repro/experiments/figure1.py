"""Figure 1 — average utility gain per number of specializations.

Appendix C of the paper: the two query logs are split 70/30 into train
and test; for every ambiguous query detected in the test split, the query
is submitted to an *external* web search engine (Yahoo! BOSS; |R_q| =
200), the result list is re-ranked by OptSelect (|R_q'| = k = 20), and
the ratio between the summed normalised utilities of the diversified and
the original top-k lists is computed::

    ratio = Σ_{i≤k} Ũ(d_i ∈ S)  /  Σ_{i≤k} Ũ(d_i ∈ R_q)

Figure 1 plots the average ratio against the number of specializations
|S_q|; the paper reports improvement factors between 5 and 10 for both
AOL and MSN.

Substitutions (DESIGN.md §3): Yahoo! BOSS is gone, so the external WSE is
a second engine over the same corpus with a different ranking model
(BM25), mirroring the external/internal engine mismatch of the original
setup.  The per-document utility is the pure coverage part of Eq. 9,
``Σ_q' P(q'|q)·Ũ(d|R_q')`` — Definition 2 aggregated over the mined
specializations, which is what "the utility function as in Definition 2"
can mean for a whole list.

Run as a script::

    python -m repro.experiments.figure1
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.core.optselect import OptSelect
from repro.core.task import DiversificationTask
from repro.experiments.reporting import render_series
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)
from repro.querylog.specializations import MinerConfig, SpecializationMiner

__all__ = ["UtilityPoint", "Figure1Result", "run_figure1", "main"]


@dataclass(frozen=True)
class UtilityPoint:
    """One evaluated ambiguous query."""

    query: str
    num_specializations: int
    original_utility: float
    diversified_utility: float

    #: Cap on individual ratios: near-zero original utilities would
    #: otherwise dominate the averages (the paper's per-query ratios stay
    #: within one order of magnitude, so the cap is conservative).
    MAX_RATIO = 20.0

    @property
    def ratio(self) -> float:
        if self.original_utility <= 1e-9:
            # No measurable utility in the original list: an unbounded
            # improvement, reported at the cap (or parity when the
            # diversified list found nothing either).
            return self.MAX_RATIO if self.diversified_utility > 0 else 1.0
        return min(self.MAX_RATIO, self.diversified_utility / self.original_utility)


@dataclass
class Figure1Result:
    """Per-log utility points and their aggregation by |S_q|."""

    points: dict[str, list[UtilityPoint]] = field(default_factory=dict)

    def series(self) -> dict[str, dict[int, float]]:
        """log name → (|S_q| → average ratio), the figure's series."""
        out: dict[str, dict[int, float]] = {}
        for log_name, points in self.points.items():
            by_n: dict[int, list[float]] = {}
            for point in points:
                by_n.setdefault(point.num_specializations, []).append(point.ratio)
            out[log_name] = {
                n: sum(ratios) / len(ratios) for n, ratios in sorted(by_n.items())
            }
        return out

    def overall_average(self, log_name: str) -> float:
        points = self.points.get(log_name, [])
        if not points:
            return 0.0
        return sum(p.ratio for p in points) / len(points)


def _coverage_utility(task: DiversificationTask, docs: list[str]) -> float:
    """Σ_d Σ_q' P(q'|q)·Ũ(d|R_q') — the list utility of Definition 2."""
    total = 0.0
    for doc_id in docs:
        for spec, p in task.specializations:
            total += p * task.utilities.value(doc_id, spec)
    return total


def run_figure1(
    workload: TrecWorkload | None = None,
    logs: tuple[str, ...] = ("AOL", "MSN"),
    external_candidates: int = 200,
    k: int = 20,
    spec_results: int = 20,
    threshold: float = 0.2,
    max_queries_per_log: int | None = None,
) -> Figure1Result:
    """Regenerate Figure 1: train on 70% of each log, evaluate ambiguous
    test-split queries, average utility ratios by |S_q|."""
    workload = workload or build_trec_workload(SMALL_SCALE, logs=logs)
    external = workload.external_engine()
    result = Figure1Result()
    for log_name in logs:
        log = workload.logs[log_name]
        train, test = log.split(0.7)
        miner = SpecializationMiner(train, MinerConfig()).build()
        framework = DiversificationFramework(
            external,
            miner,
            OptSelect(),
            FrameworkConfig(
                k=k,
                candidates=external_candidates,
                spec_results=spec_results,
                # A small utility threshold suppresses the incidental
                # cosine overlap two random synthetic documents share via
                # head-of-Zipf background terms (real snippets diverge
                # more); without it both lists' utilities carry the same
                # additive noise floor and the ratio is compressed.
                threshold=threshold,
            ),
        )
        points: list[UtilityPoint] = []
        seen: set[str] = set()
        for record in test:
            query = record.query
            if query in seen:
                continue
            seen.add(query)
            specializations = miner.mine(query)
            if not specializations:
                continue
            task = framework.build_task(query, specializations)
            if task is None:
                continue
            diversified = framework.diversifier.diversify(task, k)
            original_topk = task.candidates.doc_ids[:k]
            points.append(
                UtilityPoint(
                    query=query,
                    num_specializations=len(specializations),
                    original_utility=_coverage_utility(task, original_topk),
                    diversified_utility=_coverage_utility(task, diversified),
                )
            )
            if max_queries_per_log and len(points) >= max_queries_per_log:
                break
        result.points[log_name] = points
    return result


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale, logs=("AOL", "MSN"))
    result = run_figure1(workload)
    print(
        render_series(
            "|S_q|",
            result.series(),
            title="Figure 1 — average utility ratio per number of specializations",
            precision=2,
        )
    )
    print()
    for log_name in ("AOL", "MSN"):
        n = len(result.points.get(log_name, []))
        print(
            f"{log_name}: {n} ambiguous test queries, average ratio "
            f"{result.overall_average(log_name):.2f}"
        )


if __name__ == "__main__":
    main()

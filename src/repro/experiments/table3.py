"""Table 3 — effectiveness of OptSelect, xQuAD and IASelect on the
diversity testbed, sweeping the utility threshold c.

The paper's Table 3 reports α-NDCG and IA-P at cutoffs {5, 10, 20, 100,
1000} for the DPH baseline and the three diversifiers with
c ∈ {0, .05, .10, .15, .20, .25, .35, .50, .75}, λ = 0.15, |R_q'| = 20.
Headline shape claims we verify (EXPERIMENTS.md records the outcomes):

* every diversifier improves on the DPH baseline at small c;
* OptSelect and xQuAD behave similarly, IASelect is worse (it ignores
  relevance, so junk floods its deep ranks → low IA-P at deep cutoffs);
* for c ≥ 0.75 all algorithms collapse to the baseline;
* no difference is statistically significant under the Wilcoxon
  signed-rank test at the 0.05 level.

Utilities are computed once per topic at c = 0 and re-thresholded for the
sweep (recomputing the snippet cosines 9× would dominate the runtime and
change nothing).

Run as a script::

    python -m repro.experiments.table3 [--paper-scale]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.core.framework import DiversificationFramework, FrameworkConfig, get_diversifier
from repro.core.task import DiversificationTask
from repro.evaluation.runner import EvaluationReport, compare_reports, evaluate_run
from repro.serving import DiversificationService
from repro.experiments.reporting import render_table
from repro.experiments.workloads import (
    PAPER_SCALE,
    SMALL_SCALE,
    TrecWorkload,
    build_trec_workload,
)

__all__ = ["Table3Result", "PAPER_THRESHOLDS", "build_topic_tasks", "run_table3", "main"]

PAPER_THRESHOLDS = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.35, 0.50, 0.75)
ALGORITHMS = ("OptSelect", "xQuAD", "IASelect")


@dataclass
class Table3Result:
    """All evaluation reports of the sweep."""

    cutoffs: tuple[int, ...]
    baseline: EvaluationReport
    #: reports[algorithm][threshold]
    reports: dict[str, dict[float, EvaluationReport]] = field(default_factory=dict)
    detection_rate: float = 0.0

    def best_threshold(self, algorithm: str, metric: str = "alpha-ndcg", cutoff: int = 20) -> float:
        per_threshold = self.reports[algorithm]
        return max(per_threshold, key=lambda c: per_threshold[c].mean(metric, cutoff))


def build_topic_tasks(
    workload: TrecWorkload,
    log_name: str = "AOL",
    lambda_: float = 0.15,
) -> tuple[dict[int, DiversificationTask], dict[int, list[str]]]:
    """Per-topic diversification tasks (c = 0) and the baseline run.

    Topics whose query Algorithm 1 does not flag as ambiguous get no task
    — the framework leaves them at the baseline ranking, exactly like the
    deployed system would.  Tasks are built through the serving layer's
    batched offline path (:meth:`DiversificationService.prepare_batch`),
    so the effectiveness sweep exercises the same code the online system
    serves from: one deduplicated specialization prefetch for the whole
    topic set.
    """
    scale = workload.scale
    framework = DiversificationFramework(
        workload.engine,
        workload.miner(log_name),
        config=FrameworkConfig(
            k=scale.k,
            candidates=scale.candidates,
            spec_results=scale.spec_results,
            lambda_=lambda_,
            threshold=0.0,
        ),
    )
    service = DiversificationService(framework)
    topic_queries = [topic.query for topic in workload.testbed.topics]
    baselines = workload.engine.search_batch(topic_queries, scale.k)
    prepared = service.prepare_batch(topic_queries)
    tasks: dict[int, DiversificationTask] = {}
    baseline_run: dict[int, list[str]] = {}
    for topic in workload.testbed.topics:
        baseline_run[topic.topic_id] = baselines[topic.query].doc_ids
        task = prepared[topic.query].task
        if task is not None:
            tasks[topic.topic_id] = task
    workload.tasks[log_name] = tasks
    return tasks, baseline_run


def run_table3(
    workload: TrecWorkload | None = None,
    thresholds: tuple[float, ...] = PAPER_THRESHOLDS,
    algorithms: tuple[str, ...] = ALGORITHMS,
    log_name: str = "AOL",
    lambda_: float = 0.15,
) -> Table3Result:
    """Regenerate Table 3 at the workload's scale."""
    workload = workload or build_trec_workload(SMALL_SCALE)
    scale = workload.scale
    tasks, baseline_run = build_topic_tasks(workload, log_name, lambda_)
    baseline_report = evaluate_run(
        baseline_run, workload.testbed, scale.cutoffs, name="DPH baseline"
    )
    result = Table3Result(
        cutoffs=scale.cutoffs,
        baseline=baseline_report,
        detection_rate=len(tasks) / max(1, len(workload.testbed.topics)),
    )
    for algorithm_name in algorithms:
        diversifier = get_diversifier(algorithm_name)
        per_threshold: dict[float, EvaluationReport] = {}
        for c in thresholds:
            run: dict[int, list[str]] = {}
            for topic in workload.testbed.topics:
                task = tasks.get(topic.topic_id)
                if task is None:
                    run[topic.topic_id] = baseline_run[topic.topic_id]
                else:
                    run[topic.topic_id] = diversifier.diversify(
                        task.with_threshold(c), scale.k
                    )
            per_threshold[c] = evaluate_run(
                run,
                workload.testbed,
                scale.cutoffs,
                name=f"{diversifier.name} c={c}",
            )
        result.reports[diversifier.name] = per_threshold
    return result


def summarize(result: Table3Result) -> str:
    """Render the Table 3 layout: metric blocks over algorithms × c."""
    cutoffs = result.cutoffs
    headers = (
        ["system", "c"]
        + [f"a-nDCG@{c}" for c in cutoffs]
        + [f"IA-P@{c}" for c in cutoffs]
    )
    rows: list[list[object]] = [
        ["DPH baseline", "-"]
        + [round(result.baseline.mean("alpha-ndcg", c), 3) for c in cutoffs]
        + [round(result.baseline.mean("ia-p", c), 3) for c in cutoffs]
    ]
    for algorithm, per_threshold in result.reports.items():
        for c, report in sorted(per_threshold.items()):
            rows.append(
                [algorithm, c]
                + [round(report.mean("alpha-ndcg", k), 3) for k in cutoffs]
                + [round(report.mean("ia-p", k), 3) for k in cutoffs]
            )
    return render_table(headers, rows, title="Table 3 — effectiveness")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="50 topics / larger corpus (slower)",
    )
    parser.add_argument("--log", default="AOL", choices=("AOL", "MSN"))
    args = parser.parse_args(argv)
    scale = PAPER_SCALE if args.paper_scale else SMALL_SCALE
    workload = build_trec_workload(scale, logs=(args.log,))
    result = run_table3(workload, log_name=args.log)
    print(summarize(result))
    print()
    print(f"Algorithm-1 detection rate over topics: {result.detection_rate:.0%}")
    # The paper's significance statement: OptSelect vs xQuAD at their best
    # thresholds is not significant at the 0.05 level.
    best_opt = result.best_threshold("OptSelect")
    best_xq = result.best_threshold("xQuAD")
    cutoff = result.cutoffs[min(2, len(result.cutoffs) - 1)]
    wilcoxon = compare_reports(
        result.reports["OptSelect"][best_opt],
        result.reports["xQuAD"][best_xq],
        metric="alpha-ndcg",
        cutoff=cutoff,
    )
    print(
        f"Wilcoxon OptSelect(c={best_opt}) vs xQuAD(c={best_xq}) on "
        f"a-nDCG@{cutoff}: p = {wilcoxon.p_value:.3f} "
        f"({'significant' if wilcoxon.significant() else 'not significant'} at 0.05)"
    )


if __name__ == "__main__":
    main()

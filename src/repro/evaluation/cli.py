"""trec_eval-style command line for the diversity metrics.

Evaluate a TREC run file against subtopic-level diversity qrels with the
paper's two official metrics (plus optional extras)::

    python -m repro.evaluation.cli RUN QRELS [--cutoffs 5 10 20]
                                              [--alpha 0.5]
                                              [--metric alpha-ndcg ia-p ...]
                                              [--per-topic]

File formats (see :mod:`repro.corpus.trec`): the run file is the standard
6-column ``topic Q0 doc rank score tag``; the qrels file is the 4-column
diversity format ``topic subtopic doc relevance``.

This makes the library usable as a drop-in evaluator for real TREC Web
track diversity data.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.corpus.trec import parse_diversity_qrels, parse_run
from repro.evaluation.metrics import METRICS, alpha_ndcg

__all__ = ["evaluate_files", "main"]


def evaluate_files(
    run_path: str | Path,
    qrels_path: str | Path,
    metrics: Sequence[str] = ("alpha-ndcg", "ia-p"),
    cutoffs: Sequence[int] = (5, 10, 20),
    alpha: float = 0.5,
) -> dict[str, dict[int, dict[int, float]]]:
    """Return ``{metric: {cutoff: {topic_id: value}}}`` for the run file."""
    with open(run_path) as handle:
        run = parse_run(handle)
    with open(qrels_path) as handle:
        qrels = parse_diversity_qrels(handle)
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise ValueError(
            f"unknown metrics {unknown}; available: {sorted(METRICS)}"
        )
    results: dict[str, dict[int, dict[int, float]]] = {
        m: {c: {} for c in cutoffs} for m in metrics
    }
    for topic_id in qrels.topic_ids:
        ranking = [doc_id for doc_id, _score in run.get(topic_id, [])]
        for metric in metrics:
            for cutoff in cutoffs:
                if metric == "alpha-ndcg":
                    value = alpha_ndcg(
                        ranking, topic_id, qrels, alpha=alpha, cutoff=cutoff
                    )
                else:
                    value = METRICS[metric](
                        ranking, topic_id, qrels, cutoff=cutoff
                    )
                results[metric][cutoff][topic_id] = value
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.cli", description=__doc__
    )
    parser.add_argument("run", help="TREC run file (6 columns)")
    parser.add_argument("qrels", help="diversity qrels file (4 columns)")
    parser.add_argument(
        "--metric",
        nargs="+",
        default=["alpha-ndcg", "ia-p"],
        choices=sorted(METRICS),
    )
    parser.add_argument("--cutoffs", nargs="+", type=int, default=[5, 10, 20])
    parser.add_argument("--alpha", type=float, default=0.5)
    parser.add_argument(
        "--per-topic", action="store_true", help="print per-topic values too"
    )
    args = parser.parse_args(argv)

    results = evaluate_files(
        args.run, args.qrels, args.metric, args.cutoffs, args.alpha
    )
    for metric in args.metric:
        for cutoff in args.cutoffs:
            per_topic = results[metric][cutoff]
            mean = sum(per_topic.values()) / len(per_topic) if per_topic else 0.0
            print(f"{metric}@{cutoff}\tall\t{mean:.4f}")
            if args.per_topic:
                for topic_id in sorted(per_topic):
                    print(
                        f"{metric}@{cutoff}\t{topic_id}\t{per_topic[topic_id]:.4f}"
                    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())

"""TREC-style evaluation runner: runs × metrics × cutoffs tables.

Table 3 of the paper reports α-NDCG and IA-P at cutoffs
{5, 10, 20, 100, 1000} for each system configuration, averaged over the
50 diversity-task topics.  :func:`evaluate_run` produces exactly that
slice for one run; :class:`EvaluationReport` keeps the per-topic values
so systems can be compared with the Wilcoxon test, as the paper does.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.corpus.trec import DiversityTestbed
from repro.evaluation.metrics import alpha_ndcg, intent_aware_precision
from repro.evaluation.significance import WilcoxonResult, wilcoxon_signed_rank

__all__ = ["EvaluationReport", "evaluate_run", "compare_reports", "PAPER_CUTOFFS"]

#: The rank cutoffs of Table 3.
PAPER_CUTOFFS = (5, 10, 20, 100, 1000)


@dataclass
class EvaluationReport:
    """Per-topic and averaged metric values of one run.

    ``per_topic[metric][cutoff]`` is a mapping topic_id → value;
    ``mean(metric, cutoff)`` averages over *all* evaluated topics
    (topics missing from the run count as zero, per trec_eval
    ``-c`` semantics).
    """

    name: str
    topics: list[int]
    per_topic: dict[str, dict[int, dict[int, float]]] = field(default_factory=dict)

    def mean(self, metric: str, cutoff: int) -> float:
        values = self.per_topic[metric][cutoff]
        if not self.topics:
            return 0.0
        return sum(values.get(t, 0.0) for t in self.topics) / len(self.topics)

    def vector(self, metric: str, cutoff: int) -> list[float]:
        """Per-topic values in topic order (for significance testing)."""
        values = self.per_topic[metric][cutoff]
        return [values.get(t, 0.0) for t in self.topics]

    def row(self, metric: str, cutoffs: Sequence[int] = PAPER_CUTOFFS) -> list[float]:
        """One Table 3 row: the metric at every cutoff."""
        return [self.mean(metric, c) for c in cutoffs]


def evaluate_run(
    run: Mapping[int, Sequence[str]],
    testbed: DiversityTestbed,
    cutoffs: Sequence[int] = PAPER_CUTOFFS,
    alpha: float = 0.5,
    use_testbed_probabilities: bool = False,
    name: str = "run",
) -> EvaluationReport:
    """Score *run* (topic_id → ranked doc_ids) on the paper's two metrics.

    ``alpha = 0.5`` follows "the standard practice in the TREC 2009
    Web-Track's Diversity Task" quoted by the paper.  IA-P uses uniform
    subtopic weights by default (the official setting); set
    *use_testbed_probabilities* to weight by the testbed's ground-truth
    popularities instead.
    """
    report = EvaluationReport(
        name=name,
        topics=[t.topic_id for t in testbed.topics],
        per_topic={
            "alpha-ndcg": {c: {} for c in cutoffs},
            "ia-p": {c: {} for c in cutoffs},
        },
    )
    for topic in testbed.topics:
        ranking = list(run.get(topic.topic_id, ()))
        probabilities = None
        if use_testbed_probabilities:
            probabilities = testbed.subtopic_probabilities.get(topic.topic_id)
        for cutoff in cutoffs:
            report.per_topic["alpha-ndcg"][cutoff][topic.topic_id] = alpha_ndcg(
                ranking, topic.topic_id, testbed.qrels, alpha=alpha, cutoff=cutoff
            )
            report.per_topic["ia-p"][cutoff][topic.topic_id] = (
                intent_aware_precision(
                    ranking,
                    topic.topic_id,
                    testbed.qrels,
                    cutoff=cutoff,
                    probabilities=probabilities,
                )
            )
    return report


def compare_reports(
    a: EvaluationReport,
    b: EvaluationReport,
    metric: str = "alpha-ndcg",
    cutoff: int = 20,
) -> WilcoxonResult:
    """Wilcoxon signed-rank test between two runs on one metric@cutoff.

    This is the paper's significance methodology ("Wilcoxon signed-rank
    test at 0.05 level of significance").
    """
    if a.topics != b.topics:
        raise ValueError("reports must cover the same topics in the same order")
    return wilcoxon_signed_rank(a.vector(metric, cutoff), b.vector(metric, cutoff))

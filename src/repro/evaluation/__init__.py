"""Evaluation substrate: diversity metrics, significance, TREC runner.

Implements the paper's Section 5 methodology: α-NDCG and IA-P at the
official cutoffs, the wider intent-aware metric family, the Wilcoxon
signed-rank test, and a runner that turns per-topic rankings into
Table 3-style rows.
"""

from repro.evaluation.metrics import (
    METRICS,
    alpha_ndcg,
    average_precision,
    err_ia,
    ia_map,
    ia_mrr,
    ia_ndcg,
    intent_aware_precision,
    ndcg,
    precision_at,
    reciprocal_rank,
    subtopic_recall,
)
from repro.evaluation.runner import (
    PAPER_CUTOFFS,
    EvaluationReport,
    compare_reports,
    evaluate_run,
)
from repro.evaluation.significance import (
    WilcoxonResult,
    paired_differences,
    wilcoxon_signed_rank,
)

__all__ = [
    "METRICS",
    "alpha_ndcg",
    "average_precision",
    "err_ia",
    "ia_map",
    "ia_mrr",
    "ia_ndcg",
    "intent_aware_precision",
    "ndcg",
    "precision_at",
    "reciprocal_rank",
    "subtopic_recall",
    "PAPER_CUTOFFS",
    "EvaluationReport",
    "compare_reports",
    "evaluate_run",
    "WilcoxonResult",
    "paired_differences",
    "wilcoxon_signed_rank",
]

"""Diversity-aware IR evaluation metrics.

The paper evaluates with the two official TREC 2009 Web-track Diversity
metrics (Section 5):

* **α-NDCG** (Clarke et al., SIGIR'08) — cumulative gain where a
  document's gain for subtopic ``s`` is discounted by ``(1 − α)^r`` with
  ``r`` the number of earlier results already relevant to ``s``; α = 0.5
  "to give an equal weight to relevance and diversity".  The ideal gain
  vector is built greedily, the standard practice (exact ideal is
  NP-hard).
* **IA-P** (intent-aware precision, Agrawal et al., WSDM'09) —
  Σ_s P(s|q) · Precision@k restricted to subtopic ``s``.

Also provided: the classic NDCG / MAP / MRR / Precision, their
intent-aware generalisations (NDCG-IA, MAP-IA, MRR-IA — the metrics
Agrawal et al. introduce), ERR-IA (Chapelle et al., used by later TREC
diversity tracks) and subtopic recall (Zhai et al.) — everything a
downstream user expects from a diversification toolkit.

All metric functions share the signature ``(ranking, topic_id, qrels,
...)`` where *ranking* is a sequence of doc_ids (best first) and *qrels*
a :class:`~repro.corpus.trec.DiversityQrels`.  Subtopic probabilities
default to uniform, as in the official track evaluation; passing the
testbed's ground-truth popularities is supported everywhere.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.corpus.trec import DiversityQrels

__all__ = [
    "alpha_ndcg",
    "intent_aware_precision",
    "precision_at",
    "average_precision",
    "reciprocal_rank",
    "ndcg",
    "ia_ndcg",
    "ia_map",
    "ia_mrr",
    "err_ia",
    "subtopic_recall",
    "METRICS",
]


def _subtopic_probabilities(
    qrels: DiversityQrels,
    topic_id: int,
    probabilities: Mapping[int, float] | None,
) -> dict[int, float]:
    """Normalised P(s|q); uniform over judged subtopics when not given."""
    subtopics = qrels.subtopic_numbers(topic_id)
    if not subtopics:
        return {}
    if probabilities:
        weights = {s: probabilities.get(s, 0.0) for s in subtopics}
        total = sum(weights.values())
        if total > 0:
            return {s: w / total for s, w in weights.items()}
    return {s: 1.0 / len(subtopics) for s in subtopics}


# ---------------------------------------------------------------------------
# α-NDCG
# ---------------------------------------------------------------------------

def _alpha_gain_sequence(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    alpha: float,
    cutoff: int,
) -> list[float]:
    """Per-rank novelty-discounted gains of *ranking* up to *cutoff*."""
    seen: dict[int, int] = {}
    gains: list[float] = []
    for doc_id in ranking[:cutoff]:
        relevant_to = qrels.relevant_subtopics(topic_id, doc_id)
        gain = 0.0
        for subtopic in relevant_to:
            gain += (1.0 - alpha) ** seen.get(subtopic, 0)
        gains.append(gain)
        for subtopic in relevant_to:
            seen[subtopic] = seen.get(subtopic, 0) + 1
    return gains


def _dcg(gains: Sequence[float]) -> float:
    return sum(g / math.log2(i + 2) for i, g in enumerate(gains))


def _ideal_alpha_gains(
    topic_id: int, qrels: DiversityQrels, alpha: float, cutoff: int
) -> list[float]:
    """Greedy ideal gain vector over all judged relevant documents."""
    pool: dict[str, frozenset[int]] = {}
    for subtopic in qrels.subtopic_numbers(topic_id):
        for doc_id in qrels.relevant_docs(topic_id, subtopic):
            if doc_id not in pool:
                pool[doc_id] = qrels.relevant_subtopics(topic_id, doc_id)
    seen: dict[int, int] = {}
    gains: list[float] = []
    remaining = dict(pool)
    while remaining and len(gains) < cutoff:
        best_doc, best_gain = None, -1.0
        for doc_id, subtopics in remaining.items():
            gain = sum((1.0 - alpha) ** seen.get(s, 0) for s in subtopics)
            if gain > best_gain or (gain == best_gain and doc_id < best_doc):
                best_doc, best_gain = doc_id, gain
        gains.append(best_gain)
        for s in remaining.pop(best_doc):
            seen[s] = seen.get(s, 0) + 1
    return gains


def alpha_ndcg(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    alpha: float = 0.5,
    cutoff: int = 10,
) -> float:
    """α-NDCG@cutoff (Clarke et al.); 0 when the topic has no judgements.

    With ``alpha = 0`` this is classic binary NDCG computed over "relevant
    to any subtopic" — the equivalence the paper notes in Section 5.
    """
    if not 0.0 <= alpha < 1.0 + 1e-12:
        raise ValueError("alpha must lie in [0, 1]")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    ideal = _ideal_alpha_gains(topic_id, qrels, alpha, cutoff)
    idcg = _dcg(ideal)
    if idcg == 0.0:
        return 0.0
    gains = _alpha_gain_sequence(ranking, topic_id, qrels, alpha, cutoff)
    return _dcg(gains) / idcg


# ---------------------------------------------------------------------------
# Intent-aware precision and friends
# ---------------------------------------------------------------------------

def intent_aware_precision(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int = 10,
    probabilities: Mapping[int, float] | None = None,
) -> float:
    """IA-P@cutoff = Σ_s P(s|q) · (relevant-to-s in top cutoff) / cutoff."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    p = _subtopic_probabilities(qrels, topic_id, probabilities)
    if not p:
        return 0.0
    top = ranking[:cutoff]
    total = 0.0
    for subtopic, weight in p.items():
        hits = sum(1 for d in top if qrels.is_relevant(topic_id, subtopic, d))
        total += weight * hits / cutoff
    return total


def precision_at(
    ranking: Sequence[str], topic_id: int, qrels: DiversityQrels, cutoff: int = 10
) -> float:
    """Classic P@cutoff with "relevant to any subtopic" judgements."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    top = ranking[:cutoff]
    hits = sum(1 for d in top if qrels.is_relevant_any(topic_id, d))
    return hits / cutoff


def average_precision(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int | None = None,
) -> float:
    """MAP component: AP over "relevant to any subtopic" judgements."""
    relevant_total = len(
        {
            d
            for s in qrels.subtopic_numbers(topic_id)
            for d in qrels.relevant_docs(topic_id, s)
        }
    )
    if relevant_total == 0:
        return 0.0
    ranking = ranking if cutoff is None else ranking[:cutoff]
    hits = 0
    score = 0.0
    for i, doc_id in enumerate(ranking, start=1):
        if qrels.is_relevant_any(topic_id, doc_id):
            hits += 1
            score += hits / i
    return score / relevant_total


def reciprocal_rank(
    ranking: Sequence[str], topic_id: int, qrels: DiversityQrels
) -> float:
    """MRR component: 1 / rank of the first relevant result."""
    for i, doc_id in enumerate(ranking, start=1):
        if qrels.is_relevant_any(topic_id, doc_id):
            return 1.0 / i
    return 0.0


def ndcg(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int = 10,
) -> float:
    """Binary NDCG@cutoff (Järvelin & Kekäläinen) over any-subtopic
    relevance — equal to α-NDCG with α = 0."""
    return alpha_ndcg(ranking, topic_id, qrels, alpha=0.0, cutoff=cutoff)


# -- per-subtopic projections for the IA family -------------------------------

def _subtopic_ranking_metrics(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    subtopic: int,
    cutoff: int,
) -> tuple[float, float, float]:
    """(NDCG, AP, RR) of *ranking* judged against one subtopic only."""
    relevant = qrels.relevant_docs(topic_id, subtopic)
    if not relevant:
        return 0.0, 0.0, 0.0
    top = ranking[:cutoff]
    # NDCG_s
    gains = [1.0 if d in relevant else 0.0 for d in top]
    ideal = [1.0] * min(len(relevant), cutoff)
    dcg, idcg = _dcg(gains), _dcg(ideal)
    ndcg_s = dcg / idcg if idcg else 0.0
    # AP_s
    hits, ap = 0, 0.0
    for i, d in enumerate(top, start=1):
        if d in relevant:
            hits += 1
            ap += hits / i
    ap_s = ap / min(len(relevant), cutoff)
    # RR_s
    rr_s = 0.0
    for i, d in enumerate(top, start=1):
        if d in relevant:
            rr_s = 1.0 / i
            break
    return ndcg_s, ap_s, rr_s


def _ia_aggregate(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int,
    probabilities: Mapping[int, float] | None,
    component: int,
) -> float:
    p = _subtopic_probabilities(qrels, topic_id, probabilities)
    return sum(
        weight
        * _subtopic_ranking_metrics(ranking, topic_id, qrels, s, cutoff)[component]
        for s, weight in p.items()
    )


def ia_ndcg(ranking, topic_id, qrels, cutoff=10, probabilities=None) -> float:
    """NDCG-IA (Agrawal et al.): Σ_s P(s|q) · NDCG@cutoff judged on s."""
    return _ia_aggregate(ranking, topic_id, qrels, cutoff, probabilities, 0)


def ia_map(ranking, topic_id, qrels, cutoff=1000, probabilities=None) -> float:
    """MAP-IA (Agrawal et al.): Σ_s P(s|q) · AP@cutoff judged on s."""
    return _ia_aggregate(ranking, topic_id, qrels, cutoff, probabilities, 1)


def ia_mrr(ranking, topic_id, qrels, cutoff=1000, probabilities=None) -> float:
    """MRR-IA (Agrawal et al.): Σ_s P(s|q) · RR judged on s."""
    return _ia_aggregate(ranking, topic_id, qrels, cutoff, probabilities, 2)


def err_ia(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int = 20,
    probabilities: Mapping[int, float] | None = None,
    max_grade_probability: float = 0.5,
) -> float:
    """ERR-IA (Chapelle et al.): cascade-model expected reciprocal rank,
    averaged over subtopics with weights P(s|q).

    Binary judgements: a relevant document stops the cascade with
    probability *max_grade_probability*.
    """
    p = _subtopic_probabilities(qrels, topic_id, probabilities)
    total = 0.0
    for subtopic, weight in p.items():
        not_stopped = 1.0
        err = 0.0
        for i, doc_id in enumerate(ranking[:cutoff], start=1):
            if qrels.is_relevant(topic_id, subtopic, doc_id):
                err += not_stopped * max_grade_probability / i
                not_stopped *= 1.0 - max_grade_probability
        total += weight * err
    return total


def subtopic_recall(
    ranking: Sequence[str],
    topic_id: int,
    qrels: DiversityQrels,
    cutoff: int = 20,
) -> float:
    """S-recall@cutoff (Zhai et al.): fraction of subtopics covered."""
    subtopics = qrels.subtopic_numbers(topic_id)
    if not subtopics:
        return 0.0
    top = ranking[:cutoff]
    covered = sum(
        1
        for s in subtopics
        if any(qrels.is_relevant(topic_id, s, d) for d in top)
    )
    return covered / len(subtopics)


#: Name → callable registry used by the evaluation runner.  Every metric
#: here accepts (ranking, topic_id, qrels, cutoff=...) positionally.
METRICS = {
    "alpha-ndcg": alpha_ndcg,
    "ia-p": intent_aware_precision,
    "ndcg": ndcg,
    "precision": precision_at,
    "err-ia": err_ia,
    "s-recall": subtopic_recall,
}

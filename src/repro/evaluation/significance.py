"""Wilcoxon signed-rank test (Section 5's significance methodology).

"none of these differences can be classified as statistically significant
according to the Wilcoxon signed-rank test at 0.05 level of significance"
— the paper compares per-topic metric vectors of two systems.  This is a
from-scratch implementation (zero-difference removal, average ranks for
ties, normal approximation with tie correction and optional continuity
correction), cross-validated against ``scipy.stats.wilcoxon`` in the test
suite.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["WilcoxonResult", "wilcoxon_signed_rank", "paired_differences"]


@dataclass(frozen=True)
class WilcoxonResult:
    """Outcome of the test.

    ``statistic`` is W = min(W+, W−); ``n`` the number of non-zero paired
    differences actually ranked.  ``p_value`` is two-sided unless the test
    was run one-sided.
    """

    statistic: float
    z: float
    p_value: float
    n: int
    w_plus: float
    w_minus: float

    def significant(self, level: float = 0.05) -> bool:
        return self.p_value < level


def paired_differences(a: Sequence[float], b: Sequence[float]) -> list[float]:
    """Element-wise a − b with length checking."""
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    return [x - y for x, y in zip(a, b)]


def _rank_with_ties(values: Sequence[float]) -> tuple[list[float], float]:
    """Average ranks of |values| plus the tie-correction term Σ(t³−t)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    tie_term = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for idx in order[i : j + 1]:
            ranks[idx] = average_rank
        t = j - i + 1
        if t > 1:
            tie_term += t**3 - t
        i = j + 1
    return ranks, tie_term


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal via erfc."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def wilcoxon_signed_rank(
    a: Sequence[float],
    b: Sequence[float],
    alternative: str = "two-sided",
    continuity_correction: bool = True,
) -> WilcoxonResult:
    """Test whether paired samples *a* and *b* differ in location.

    Zero differences are discarded (Wilcoxon's original treatment, which
    is also scipy's ``zero_method='wilcox'``).  The normal approximation
    is used for the p-value — adequate for the paper's n = 50 topics and
    exact enough for n ≥ ~10.

    >>> r = wilcoxon_signed_rank([1, 2, 3, 4, 6], [2, 1, 2, 3, 4])
    >>> 0 <= r.p_value <= 1
    True
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError("alternative must be two-sided, greater or less")
    diffs = [d for d in paired_differences(a, b) if d != 0.0]
    n = len(diffs)
    if n == 0:
        # Identical samples: no evidence of any difference.
        return WilcoxonResult(
            statistic=0.0, z=0.0, p_value=1.0, n=0, w_plus=0.0, w_minus=0.0
        )
    magnitudes = [abs(d) for d in diffs]
    ranks, tie_term = _rank_with_ties(magnitudes)
    w_plus = sum(r for r, d in zip(ranks, diffs) if d > 0)
    w_minus = sum(r for r, d in zip(ranks, diffs) if d < 0)
    statistic = min(w_plus, w_minus)

    mean = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0 - tie_term / 48.0
    if variance <= 0:
        # All differences tie at the same magnitude and sign pattern is
        # degenerate — report no significance rather than dividing by 0.
        return WilcoxonResult(
            statistic=statistic, z=0.0, p_value=1.0, n=n,
            w_plus=w_plus, w_minus=w_minus,
        )
    sd = math.sqrt(variance)

    if alternative == "two-sided":
        deviation = abs(statistic - mean)
        if continuity_correction:
            deviation = max(0.0, deviation - 0.5)
        z = -deviation / sd
        p = min(1.0, 2.0 * _normal_sf(deviation / sd))
    else:
        # One-sided: "greater" means median(a - b) > 0, i.e. small W−.
        w = w_minus if alternative == "greater" else w_plus
        deviation = mean - w
        if continuity_correction:
            deviation -= 0.5
        z = deviation / sd
        p = _normal_sf(z)
    return WilcoxonResult(
        statistic=statistic, z=z, p_value=p, n=n, w_plus=w_plus, w_minus=w_minus
    )

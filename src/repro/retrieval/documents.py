"""Documents and in-memory document collections.

The paper's search substrate (Section 5) indexes the ClueWeb-B collection
``D`` and returns, for each query ``q``, a ranked list ``R_q`` of documents.
This module defines the two data types every other subsystem builds on:

* :class:`Document` — an identified piece of text with optional metadata,
* :class:`DocumentCollection` — an ordered, id-addressable set of documents
  with the aggregate statistics (token counts, average length) needed by
  DFR weighting models.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = ["Document", "DocumentCollection"]


@dataclass(frozen=True)
class Document:
    """A retrievable unit of text.

    Attributes
    ----------
    doc_id:
        Stable external identifier (e.g. ``"clueweb09-en0000-23-00102"`` or
        a synthetic ``"d00042"``).
    text:
        The raw body used for indexing and snippet extraction.
    title:
        Optional short title, given extra weight by the snippet extractor.
    metadata:
        Free-form provenance information.  The synthetic corpus generator
        stores the ground-truth ``topic`` and ``aspect`` here, which the
        TREC testbed builder turns into subtopic-level judgements.
    """

    doc_id: str
    text: str
    title: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.doc_id:
            raise ValueError("Document requires a non-empty doc_id")

    @property
    def full_text(self) -> str:
        """Title and body concatenated — the indexed representation."""
        if self.title:
            return f"{self.title}\n{self.text}"
        return self.text

    def __len__(self) -> int:
        return len(self.text)


class DocumentCollection:
    """An ordered, id-addressable collection of :class:`Document`.

    The collection preserves insertion order (document ordinals are used as
    internal ids by the inverted index) and rejects duplicate ``doc_id``s,
    because a duplicated id would make qrels and run files ambiguous.

    >>> coll = DocumentCollection([Document("d1", "apple fruit")])
    >>> coll.add(Document("d2", "apple computer"))
    >>> len(coll), coll["d1"].text
    (2, 'apple fruit')
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = []
        self._by_id: dict[str, int] = {}
        for document in documents:
            self.add(document)

    # -- mutation ------------------------------------------------------------

    def add(self, document: Document) -> int:
        """Append *document* and return its ordinal position."""
        if document.doc_id in self._by_id:
            raise ValueError(f"duplicate doc_id: {document.doc_id!r}")
        ordinal = len(self._documents)
        self._documents.append(document)
        self._by_id[document.doc_id] = ordinal
        return ordinal

    def extend(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add(document)

    # -- access ---------------------------------------------------------------

    def __getitem__(self, doc_id: str) -> Document:
        return self._documents[self._by_id[doc_id]]

    def get(self, doc_id: str, default: Document | None = None) -> Document | None:
        ordinal = self._by_id.get(doc_id)
        if ordinal is None:
            return default
        return self._documents[ordinal]

    def ordinal(self, doc_id: str) -> int:
        """Internal ordinal of *doc_id* (used by the inverted index)."""
        return self._by_id[doc_id]

    def by_ordinal(self, ordinal: int) -> Document:
        return self._documents[ordinal]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._by_id

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def doc_ids(self) -> list[str]:
        return [document.doc_id for document in self._documents]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentCollection(n={len(self)})"

"""Search-engine facade: ranked retrieval plus document surrogates.

This is the substrate the paper obtains from (a modified) Terrier in
Section 5: given a query it returns the ranked list ``R_q`` scored with a
weighting model (DPH by default), and can produce query-biased snippets of
the retrieved documents, which the diversification framework uses as
document surrogates for the utility computation.

The ranked-list data model (:class:`SearchResult` / :class:`ResultList`)
is shared with the diversification core: ``rank`` is 1-based, as in the
paper's ``rank(d', R_q')`` of Equation (1).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.cache import LRUCache
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.index import InvertedIndex
from repro.retrieval.models import DPH, WeightingModel
from repro.retrieval.similarity import TermVector
from repro.retrieval.snippets import Snippet, SnippetExtractor

__all__ = ["SearchResult", "ResultList", "SearchEngine"]


@dataclass(frozen=True)
class SearchResult:
    """One ranked retrieval result (rank is 1-based)."""

    doc_id: str
    score: float
    rank: int


class ResultList:
    """An ordered result list ``R_q`` for a query.

    >>> rl = ResultList("apple", [("d1", 2.0), ("d2", 1.5)])
    >>> rl[0].doc_id, rl[0].rank
    ('d1', 1)
    >>> rl.rank_of("d2")
    2
    """

    def __init__(self, query: str, scored: Iterable[tuple[str, float]]) -> None:
        self.query = query
        self.results: list[SearchResult] = [
            SearchResult(doc_id=doc_id, score=score, rank=i + 1)
            for i, (doc_id, score) in enumerate(scored)
        ]
        self._rank_by_id = {r.doc_id: r.rank for r in self.results}
        if len(self._rank_by_id) != len(self.results):
            raise ValueError("result list contains duplicate doc_ids")

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> SearchResult:
        return self.results[i]

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._rank_by_id

    @property
    def doc_ids(self) -> list[str]:
        return [r.doc_id for r in self.results]

    @property
    def scores(self) -> list[float]:
        return [r.score for r in self.results]

    def rank_of(self, doc_id: str) -> int:
        """1-based rank of *doc_id*; raises ``KeyError`` if absent."""
        return self._rank_by_id[doc_id]

    def score_of(self, doc_id: str, default: float = 0.0) -> float:
        rank = self._rank_by_id.get(doc_id)
        if rank is None:
            return default
        return self.results[rank - 1].score

    def truncate(self, k: int) -> "ResultList":
        """A new list holding only the top *k* results."""
        return ResultList(
            self.query, [(r.doc_id, r.score) for r in self.results[:k]]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultList(query={self.query!r}, n={len(self)})"


class SearchEngine:
    """Index a collection once, then serve ranked queries and snippets.

    Parameters
    ----------
    collection:
        The documents to index.
    model:
        Weighting model; DPH (the paper's choice) by default.
    analyzer:
        Shared analysis pipeline (stemming + stopwords by default).
    vector_cache_size:
        When positive, snippet surrogate vectors are memoized per
        ``(query, doc_id)`` in a bounded LRU, so repeated vectorisation
        of the same results — the common case once the serving layer
        batches queries sharing specializations — is served from memory.
        0 (the default) disables the cache and preserves the seed's
        compute-every-time behaviour.

    >>> coll = DocumentCollection([
    ...     Document("d1", "apple iphone store prices"),
    ...     Document("d2", "apple fruit orchard harvest"),
    ... ])
    >>> engine = SearchEngine(coll)
    >>> engine.search("apple orchard").doc_ids[0]
    'd2'
    """

    def __init__(
        self,
        collection: DocumentCollection,
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        snippet_extractor: SnippetExtractor | None = None,
        vector_cache_size: int = 0,
    ) -> None:
        self.collection = collection
        self.analyzer = analyzer or Analyzer()
        self.model = model or DPH()
        self.index = InvertedIndex.from_collection(collection, self.analyzer)
        self.snippets = snippet_extractor or SnippetExtractor(analyzer=self.analyzer)
        self._vector_cache: LRUCache[tuple[str, str], TermVector] | None = (
            LRUCache(vector_cache_size) if vector_cache_size > 0 else None
        )

    # -- retrieval -------------------------------------------------------------

    def search(self, query: str, k: int = 1000) -> ResultList:
        """Rank the top-*k* documents for *query* with the weighting model.

        Scoring is term-at-a-time with an accumulator map, then a heap
        selects the top-k — the standard document-at-a-time-free layout
        for in-memory indexes.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        terms = self.analyzer.analyze(query)
        if not terms:
            return ResultList(query, [])
        weights: dict[str, int] = {}
        for term in terms:
            weights[term] = weights.get(term, 0) + 1

        accumulators: dict[int, float] = {}
        index = self.index
        n_docs = index.num_documents
        avg_dl = index.average_document_length
        for term, qtf in weights.items():
            postings = index.postings(term)
            if postings is None:
                continue
            df = postings.document_frequency
            cf = postings.collection_frequency
            for ordinal, tf in zip(postings.ordinals, postings.tfs):
                contribution = self.model.score(
                    tf,
                    index.document_length(ordinal),
                    df,
                    cf,
                    n_docs,
                    avg_dl,
                    key_frequency=float(qtf),
                )
                if ordinal in accumulators:
                    accumulators[ordinal] += contribution
                else:
                    accumulators[ordinal] = contribution

        # Deterministic top-k: score desc, ordinal asc for ties.
        top = heapq.nsmallest(
            k, accumulators.items(), key=lambda item: (-item[1], item[0])
        )
        return ResultList(
            query, [(index.doc_id(ordinal), score) for ordinal, score in top]
        )

    def search_batch(
        self, queries: Iterable[str], k: int = 1000
    ) -> dict[str, ResultList]:
        """Ranked retrieval for many queries, deduplicated.

        A serving batch routinely repeats queries (popular intents) and
        shares specializations across queries; scoring each distinct
        query once is the first amortisation the serving layer relies
        on.  Returns ``{query: ResultList}`` over the distinct queries.
        """
        out: dict[str, ResultList] = {}
        for query in queries:
            if query not in out:
                out[query] = self.search(query, k)
        return out

    # -- surrogates -------------------------------------------------------------

    def snippet(self, query: str, doc_id: str) -> Snippet:
        """Query-biased surrogate for one retrieved document."""
        document = self.collection[doc_id]
        return self.snippets.extract(query, doc_id, document.text, document.title)

    def _snippet_vector(self, query: str, doc_id: str) -> TermVector:
        return TermVector.from_terms(
            self.analyzer.analyze(self.snippet(query, doc_id).text)
        )

    def snippet_vectors(
        self, query: str, results: ResultList
    ) -> dict[str, TermVector]:
        """Term vectors of the surrogates of every result in *results*.

        These vectors feed the cosine of Equation (2); the paper computes
        the utility on snippets rather than whole documents (Section 5).
        With ``vector_cache_size > 0`` each ``(query, doc_id)`` vector is
        computed at most once across calls.
        """
        cache = self._vector_cache
        if cache is None:
            return {
                r.doc_id: self._snippet_vector(query, r.doc_id) for r in results
            }
        out: dict[str, TermVector] = {}
        for r in results:
            key = (query, r.doc_id)
            vector = cache.get(key)
            if vector is None:
                vector = self._snippet_vector(query, r.doc_id)
                cache.put(key, vector)
            out[r.doc_id] = vector
        return out

    def snippet_vectors_batch(
        self, batch: Mapping[str, ResultList]
    ) -> dict[str, dict[str, TermVector]]:
        """Surrogate vectors for many ``{query: ResultList}`` pairs.

        The batched counterpart of :meth:`snippet_vectors` — the serving
        layer vectorises every specialization list of a query batch in
        one call so the per-``(query, doc_id)`` cache (when enabled) is
        shared across the whole batch.
        """
        return {
            query: self.snippet_vectors(query, results)
            for query, results in batch.items()
        }

    # -- accounting -------------------------------------------------------------

    def memory_estimate(self) -> dict[str, int]:
        """Estimated resident bytes of the engine's index, by component.

        Delegates to
        :meth:`~repro.retrieval.index.InvertedIndex.memory_estimate`;
        :class:`~repro.retrieval.sharding.PartitionedSearchEngine`
        overrides this to sum its partitions, so the offline pipeline's
        memory accounting reads the same for both layouts.
        """
        return self.index.memory_estimate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchEngine(docs={self.index.num_documents}, "
            f"model={self.model.name})"
        )

"""Retrieval substrate: the paper's Terrier-equivalent search engine.

Provides text analysis (tokenizer, stopwords, Porter stemmer), an inverted
index, DFR/BM25 weighting models, query-biased snippet extraction, cosine
similarity, and the :class:`SearchEngine` facade producing the ranked
result lists ``R_q`` that the diversification algorithms re-rank.

:mod:`repro.retrieval.sharding` partitions that substrate for scale-out:
:func:`stable_shard` (the hash router shared with the sharded serving
layer), :func:`partition_collection`, and
:class:`PartitionedSearchEngine`, whose document-sharded scatter/gather
search is ranking-identical to a single engine.
"""

from repro.retrieval.analysis import ENGLISH_STOPWORDS, Analyzer, PorterStemmer, tokenize
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import ResultList, SearchEngine, SearchResult
from repro.retrieval.index import InvertedIndex, Posting, PostingList
from repro.retrieval.models import BM25, DPH, TFIDF, WeightingModel, get_model
from repro.retrieval.persistence import (
    dump_collection,
    dump_query_log,
    load_collection,
    load_query_log,
)
from repro.retrieval.sharding import (
    BuildReport,
    PartitionedSearchEngine,
    partition_collection,
    stable_shard,
)
from repro.retrieval.similarity import TermVector, cosine, delta
from repro.retrieval.snippets import Snippet, SnippetExtractor

__all__ = [
    "ENGLISH_STOPWORDS",
    "Analyzer",
    "PorterStemmer",
    "tokenize",
    "Document",
    "DocumentCollection",
    "ResultList",
    "SearchEngine",
    "SearchResult",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "BM25",
    "DPH",
    "TFIDF",
    "WeightingModel",
    "get_model",
    "dump_collection",
    "dump_query_log",
    "load_collection",
    "load_query_log",
    "BuildReport",
    "PartitionedSearchEngine",
    "partition_collection",
    "stable_shard",
    "TermVector",
    "cosine",
    "delta",
    "Snippet",
    "SnippetExtractor",
]

"""Retrieval substrate: the paper's Terrier-equivalent search engine.

Provides text analysis (tokenizer, stopwords, Porter stemmer), an inverted
index, DFR/BM25 weighting models, query-biased snippet extraction, cosine
similarity, and the :class:`SearchEngine` facade producing the ranked
result lists ``R_q`` that the diversification algorithms re-rank.

:mod:`repro.retrieval.sharding` partitions that substrate for scale-out:
:func:`stable_shard` (the hash router shared with the sharded serving
layer), :func:`partition_collection`, and
:class:`PartitionedSearchEngine`, whose document-sharded scatter/gather
search is ranking-identical to a single engine.

:mod:`repro.retrieval.store` makes the substrate durable:
:func:`write_store` persists a built engine (postings, documents,
collection-global statistics, warm artifacts) into one SQLite file, and
:class:`StoreBackedSearchEngine` *attaches* it read-only — paging
postings through a bounded LRU :class:`PostingPageCache` — with
rankings and scores byte-identical to the in-memory build.
:class:`MemoryBudget` turns the estimate into an enforced resident
limit with LRU whole-partition eviction.
"""

from repro.retrieval.analysis import ENGLISH_STOPWORDS, Analyzer, PorterStemmer, tokenize
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import ResultList, SearchEngine, SearchResult
from repro.retrieval.index import InvertedIndex, Posting, PostingList
from repro.retrieval.models import BM25, DPH, TFIDF, WeightingModel, get_model
from repro.retrieval.persistence import (
    dump_collection,
    dump_query_log,
    load_collection,
    load_query_log,
)
from repro.retrieval.sharding import (
    BuildReport,
    MemoryBudget,
    PartitionedSearchEngine,
    partition_collection,
    stable_shard,
)
from repro.retrieval.similarity import TermVector, cosine, delta
from repro.retrieval.snippets import Snippet, SnippetExtractor
from repro.retrieval.store import (
    IndexStore,
    PageCacheStats,
    StoreBackedSearchEngine,
    StoreError,
    write_store,
)

__all__ = [
    "ENGLISH_STOPWORDS",
    "Analyzer",
    "PorterStemmer",
    "tokenize",
    "Document",
    "DocumentCollection",
    "ResultList",
    "SearchEngine",
    "SearchResult",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "BM25",
    "DPH",
    "TFIDF",
    "WeightingModel",
    "get_model",
    "dump_collection",
    "dump_query_log",
    "load_collection",
    "load_query_log",
    "BuildReport",
    "MemoryBudget",
    "PartitionedSearchEngine",
    "partition_collection",
    "stable_shard",
    "TermVector",
    "cosine",
    "delta",
    "Snippet",
    "SnippetExtractor",
    "IndexStore",
    "PageCacheStats",
    "StoreBackedSearchEngine",
    "StoreError",
    "write_store",
]

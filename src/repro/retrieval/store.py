"""Disk-backed index & warm store: cold start as an attach, not a rebuild.

Every index partition and warm artifact used to live fully in RAM, so
serving capacity was capped by resident memory and every cold start was
a full rebuild.  This module moves the durable copy into a single SQLite
file — postings, document metadata, collection-global statistics and the
serving layer's warm artifacts — written by the offline pipeline
(:func:`write_store`), advanced one epoch at a time by live ingest
(:func:`append_epoch`), and attached **read-only** by any number of
serving processes (:class:`IndexStore`).  The database follows the
paged-store recipe common to the storage designs surveyed in PAPERS.md:
WAL journal, ``synchronous=NORMAL``, a ``busy_timeout`` so concurrent
readers never fail spuriously.

On top of the store sit three pieces:

* :class:`StoreBackedInvertedIndex` — the
  :class:`~repro.retrieval.index.InvertedIndex` surface over one stored
  partition, paging posting lists in on demand through a shared,
  byte-bounded :class:`PostingPageCache`.
* :class:`StoreBackedCollection` — the
  :class:`~repro.retrieval.documents.DocumentCollection` surface with
  fully lazy document rows behind a small LRU.
* :class:`StoreBackedSearchEngine` — a
  :class:`~repro.retrieval.sharding.PartitionedSearchEngine` whose
  partitions are store-backed.  It inherits the identity-critical
  ``search()`` **unchanged**, and the store round-trips every statistic
  as exact integers (tf, document lengths, df, cf, N, total tokens), so
  rankings *and scores* are byte-identical to the in-memory build.  The
  engine pickles as just its store path plus configuration: process
  workers and respawned replicas rehydrate in O(attach), not O(rebuild).

Combined with :class:`~repro.retrieval.sharding.MemoryBudget`, the
store-backed engine turns ``memory_estimate()`` into an *enforced*
limit: whole partitions are evicted least-recently-touched first and
page back in transparently on the next query.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
import threading
from array import array
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.cache import LRUCache
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.index import _INT_BYTES, InvertedIndex, PostingList
from repro.retrieval.models import DPH, WeightingModel
from repro.retrieval.sharding import (
    EngineSnapshot,
    MemoryBudget,
    PartitionedSearchEngine,
    stable_shard,
)
from repro.retrieval.snippets import SnippetExtractor

__all__ = [
    "SCHEMA_VERSION",
    "StoreError",
    "StaleEpochError",
    "write_store",
    "append_epoch",
    "IndexStore",
    "PageCacheStats",
    "PostingPageCache",
    "StoreBackedInvertedIndex",
    "StoreBackedCollection",
    "StoreBackedSearchEngine",
    "MemoryBudget",
    "read_warm_payloads",
]

#: Bump on any on-disk layout change; readers fail fast on a mismatch.
#: v2: live-ingest support — ``store_epoch`` in ``meta`` plus a
#: per-partition ``epoch`` column recording the last epoch that touched
#: each partition (what lets :meth:`StoreBackedSearchEngine.refresh`
#: re-page only the partitions an append actually changed).
SCHEMA_VERSION = 2

#: Default byte capacity of the shared postings page cache (per engine).
DEFAULT_PAGE_CACHE_BYTES = 64 * 1024 * 1024

#: Default entry capacity of the lazy document row cache.
DEFAULT_DOCUMENT_CACHE_SIZE = 8192

_BUSY_TIMEOUT_MS = 5000


class StoreError(ValueError):
    """A store file is missing, malformed, or from another schema."""


class StaleEpochError(StoreError):
    """A store is behind the epoch the attacher requires.

    Raised when attaching with ``expected_epoch`` and the store's
    published ``store_epoch`` is older — e.g. a respawned replica whose
    attach recipe remembers the epoch it was serving, pointed at a store
    file that was rolled back or never received the appends.  Carries
    both epochs so operators see exactly how far behind the file is.
    """

    def __init__(self, path, found: int, expected: int) -> None:
        self.found = int(found)
        self.expected = int(expected)
        super().__init__(
            f"{path}: store is at stale epoch {self.found}, expected at "
            f"least epoch {self.expected}; re-apply the missing appends "
            "or rebuild the store from the current collection"
        )


def _pack_ints(values) -> bytes:
    """Integers as a little-endian ``int32`` blob (portable across hosts)."""
    arr = array("i", values)
    if sys.byteorder != "little":
        arr.byteswap()
    return arr.tobytes()


def _unpack_ints(blob: bytes) -> list[int]:
    arr = array("i")
    arr.frombytes(blob)
    if sys.byteorder != "little":
        arr.byteswap()
    return arr.tolist()


def _page_bytes(postings: PostingList) -> int:
    """Resident-byte price of one paged-in posting list — the same
    boxed-int pricing as ``InvertedIndex.memory_estimate`` so in-memory
    and store-backed footprints are directly comparable."""
    n = len(postings.ordinals)
    return (
        sys.getsizeof(postings.ordinals)
        + sys.getsizeof(postings.tfs)
        + 2 * n * _INT_BYTES
        + 64
    )


_SCHEMA_STATEMENTS = (
    """CREATE TABLE meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE partitions (
        partition       INTEGER PRIMARY KEY,
        num_documents   INTEGER NOT NULL,
        num_terms       INTEGER NOT NULL,
        num_postings    INTEGER NOT NULL,
        total_tokens    INTEGER NOT NULL,
        lengths         BLOB NOT NULL,
        global_ordinals BLOB NOT NULL,
        epoch           INTEGER NOT NULL DEFAULT 0
    )""",
    """CREATE TABLE documents (
        ordinal  INTEGER PRIMARY KEY,
        doc_id   TEXT NOT NULL UNIQUE,
        title    TEXT NOT NULL,
        text     TEXT NOT NULL,
        metadata TEXT NOT NULL
    )""",
    """CREATE TABLE postings (
        partition INTEGER NOT NULL,
        term      TEXT NOT NULL,
        df        INTEGER NOT NULL,
        cf        INTEGER NOT NULL,
        ordinals  BLOB NOT NULL,
        tfs       BLOB NOT NULL,
        PRIMARY KEY (partition, term)
    ) WITHOUT ROWID""",
    """CREATE TABLE warm_artifacts (
        shard      INTEGER NOT NULL,
        spec_query TEXT NOT NULL,
        payload    TEXT NOT NULL,
        PRIMARY KEY (shard, spec_query)
    ) WITHOUT ROWID""",
)


def write_store(
    path: str | Path,
    engine: PartitionedSearchEngine,
    warm_payloads: Mapping[int, Mapping[str, str]] | None = None,
) -> Path:
    """Write *engine* (a built :class:`PartitionedSearchEngine`) as a
    durable store at *path*, atomically.

    The database is assembled in a sibling tmp file under the recipe
    pragmas (WAL, ``synchronous=NORMAL``, ``busy_timeout``), the
    connection is closed — which checkpoints and removes the WAL
    sidecars — and only then renamed over *path*: a killed writer never
    leaves a truncated store where readers attach.

    *warm_payloads* maps ``shard → {spec_query: payload}`` where each
    payload is an :func:`~repro.retrieval.persistence.encode_warm_artifact`
    line — the exact same bytes as the per-shard ``warm-shard<i>.jsonl``
    files, so hydration from the store is bit-identical to hydration
    from JSONL.  Returns the final path.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    if tmp.exists():
        tmp.unlink()
    connection = sqlite3.connect(tmp)
    try:
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        for statement in _SCHEMA_STATEMENTS:
            connection.execute(statement)
        collection = engine.collection
        store_epoch = getattr(engine, "epoch", 0)
        meta = {
            "schema_version": SCHEMA_VERSION,
            "num_partitions": engine.num_partitions,
            "seed": engine.seed,
            "num_documents": len(collection),
            "total_tokens": sum(p.total_tokens for p in engine.partitions),
            "model": engine.model.name,
            "store_epoch": store_epoch,
        }
        connection.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            [(key, str(value)) for key, value in meta.items()],
        )
        connection.executemany(
            "INSERT INTO documents (ordinal, doc_id, title, text, metadata)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                (
                    ordinal,
                    doc.doc_id,
                    doc.title,
                    doc.text,
                    json.dumps(doc.metadata, ensure_ascii=False),
                )
                for ordinal, doc in enumerate(collection)
            ),
        )
        for shard, index in enumerate(engine.partitions):
            lengths = [
                index.document_length(o) for o in range(index.num_documents)
            ]
            connection.execute(
                "INSERT INTO partitions (partition, num_documents, num_terms,"
                " num_postings, total_tokens, lengths, global_ordinals, epoch)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    shard,
                    index.num_documents,
                    index.num_terms,
                    index.num_postings,
                    index.total_tokens,
                    _pack_ints(lengths),
                    _pack_ints(engine._global_ordinals[shard]),
                    store_epoch,
                ),
            )
            connection.executemany(
                "INSERT INTO postings (partition, term, df, cf, ordinals, tfs)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    (
                        shard,
                        term,
                        postings.document_frequency,
                        postings.collection_frequency,
                        _pack_ints(postings.ordinals),
                        _pack_ints(postings.tfs),
                    )
                    for term, postings in (
                        (term, index.postings(term))
                        for term in index.vocabulary()
                    )
                ),
            )
        if warm_payloads:
            connection.executemany(
                "INSERT INTO warm_artifacts (shard, spec_query, payload)"
                " VALUES (?, ?, ?)",
                (
                    (shard, spec_query, payload)
                    for shard, per_shard in warm_payloads.items()
                    for spec_query, payload in per_shard.items()
                ),
            )
        connection.commit()
        # Closing checkpoints the WAL and removes the -wal/-shm sidecars,
        # so the rename below publishes one complete, self-contained file.
        connection.close()
        connection = None
        os.replace(tmp, path)
    except BaseException:
        if connection is not None:
            connection.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def append_epoch(
    path: str | Path,
    add_documents: Sequence[Document] = (),
    remove_doc_ids: Sequence[str] = (),
    *,
    analyzer: Analyzer | None = None,
) -> int:
    """Apply one ingest batch to an existing store; returns the new epoch.

    The incremental counterpart of :func:`write_store`: added documents
    take tail ordinals in batch order, removals compact the ordinal
    space exactly like a from-scratch build over the survivors, and only
    the partitions that ``stable_shard`` routes a changed document to
    have their statistics and postings rows rewritten (tagged with the
    new epoch, which is what lets a refreshing reader keep the pages of
    untouched partitions).  ``meta.store_epoch`` advances by one inside
    the same transaction, so a reader attaching mid-append sees either
    the old epoch complete or the new epoch complete — never a half-
    applied batch.

    Stored warm artifacts are pruned by the same soundness rule the
    serving layer applies: a batch that changes the collection's
    document count or token total stales *every* cached score (``N`` and
    ``avg_dl`` feed each one), so all rows drop; a stats-preserving swap
    drops only rows whose specialization terms or result documents
    intersect the change.

    *analyzer* must be the pipeline the serving engines use (defaults to
    the stock :class:`Analyzer`) — postings for rebuilt partitions are
    re-analysed here.
    """
    path = Path(path)
    adds = list(add_documents)
    removes = list(remove_doc_ids)
    if not adds and not removes:
        raise StoreError("an epoch must change the collection")
    analyzer = analyzer or Analyzer()
    connection = sqlite3.connect(path)
    try:
        connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        meta = dict(connection.execute("SELECT key, value FROM meta"))
        version = int(meta.get("schema_version", -1))
        if version != SCHEMA_VERSION:
            raise StoreError(
                f"{path}: store schema version {version} does not match "
                f"the supported version {SCHEMA_VERSION}; rebuild the "
                "store with the current offline pipeline"
            )
        num_partitions = int(meta["num_partitions"])
        seed = int(meta["seed"])
        epoch = int(meta.get("store_epoch", "0"))
        new_epoch = epoch + 1
        old_rows = connection.execute(
            "SELECT ordinal, doc_id, title, text, metadata FROM documents"
            " ORDER BY ordinal"
        ).fetchall()
        known = {row[1] for row in old_rows}
        removed: set[str] = set()
        for doc_id in removes:
            if doc_id in removed:
                raise StoreError(f"duplicate removal in batch: {doc_id!r}")
            if doc_id not in known:
                raise StoreError(f"cannot remove unknown doc_id: {doc_id!r}")
            removed.add(doc_id)
        added: set[str] = set()
        for doc in adds:
            if doc.doc_id in added:
                raise StoreError(f"duplicate doc_id in batch: {doc.doc_id!r}")
            if doc.doc_id in known and doc.doc_id not in removed:
                raise StoreError(f"doc_id already stored: {doc.doc_id!r}")
            added.add(doc.doc_id)

        old_documents = {
            row[1]: Document(
                doc_id=row[1],
                text=row[3],
                title=row[2],
                metadata=json.loads(row[4]),
            )
            for row in old_rows
            if row[1] in removed
        }
        survivors = [row for row in old_rows if row[1] not in removed]
        new_docs: list[tuple[str, str, str, str]] = [
            (row[1], row[2], row[3], row[4]) for row in survivors
        ] + [
            (
                doc.doc_id,
                doc.title,
                doc.text,
                json.dumps(doc.metadata, ensure_ascii=False),
            )
            for doc in adds
        ]
        new_ordinal_by_id = {
            fields[0]: ordinal for ordinal, fields in enumerate(new_docs)
        }
        changed_ids = removed | added
        affected = {
            stable_shard(doc_id, num_partitions, seed)
            for doc_id in changed_ids
        }

        connection.execute("BEGIN IMMEDIATE")
        if removes:
            connection.execute("DELETE FROM documents")
            connection.executemany(
                "INSERT INTO documents (ordinal, doc_id, title, text,"
                " metadata) VALUES (?, ?, ?, ?, ?)",
                (
                    (ordinal, *fields)
                    for ordinal, fields in enumerate(new_docs)
                ),
            )
        else:
            base = len(survivors)
            connection.executemany(
                "INSERT INTO documents (ordinal, doc_id, title, text,"
                " metadata) VALUES (?, ?, ?, ?, ?)",
                (
                    (base + offset, *fields)
                    for offset, fields in enumerate(new_docs[base:])
                ),
            )
        for shard in range(num_partitions):
            if shard in affected:
                part_docs = DocumentCollection(
                    Document(
                        doc_id=doc_id,
                        text=text,
                        title=title,
                        metadata=json.loads(metadata),
                    )
                    for doc_id, title, text, metadata in new_docs
                    if stable_shard(doc_id, num_partitions, seed) == shard
                )
                index = InvertedIndex.from_collection(part_docs, analyzer)
                lengths = [
                    index.document_length(o)
                    for o in range(index.num_documents)
                ]
                ordinals = [
                    new_ordinal_by_id[index.doc_id(o)]
                    for o in range(index.num_documents)
                ]
                connection.execute(
                    "DELETE FROM partitions WHERE partition = ?", (shard,)
                )
                connection.execute(
                    "DELETE FROM postings WHERE partition = ?", (shard,)
                )
                connection.execute(
                    "INSERT INTO partitions (partition, num_documents,"
                    " num_terms, num_postings, total_tokens, lengths,"
                    " global_ordinals, epoch)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        shard,
                        index.num_documents,
                        index.num_terms,
                        index.num_postings,
                        index.total_tokens,
                        _pack_ints(lengths),
                        _pack_ints(ordinals),
                        new_epoch,
                    ),
                )
                connection.executemany(
                    "INSERT INTO postings (partition, term, df, cf,"
                    " ordinals, tfs) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        (
                            shard,
                            term,
                            postings.document_frequency,
                            postings.collection_frequency,
                            _pack_ints(postings.ordinals),
                            _pack_ints(postings.tfs),
                        )
                        for term, postings in (
                            (term, index.postings(term))
                            for term in index.vocabulary()
                        )
                    ),
                )
            elif removes:
                # Untouched postings, but removals shifted the global
                # ordinal space — remap this partition's blob through the
                # old ordinal → doc_id → new ordinal chain.  Lengths,
                # postings pages and the epoch tag stay valid.
                row = connection.execute(
                    "SELECT global_ordinals FROM partitions"
                    " WHERE partition = ?",
                    (shard,),
                ).fetchone()
                old_by_ordinal = {r[0]: r[1] for r in old_rows}
                remapped = [
                    new_ordinal_by_id[old_by_ordinal[g]]
                    for g in _unpack_ints(row[0])
                ]
                connection.execute(
                    "UPDATE partitions SET global_ordinals = ?"
                    " WHERE partition = ?",
                    (_pack_ints(remapped), shard),
                )

        old_tokens = int(meta["total_tokens"])
        total_tokens = connection.execute(
            "SELECT SUM(total_tokens) FROM partitions"
        ).fetchone()[0]
        stats_changed = (
            len(new_docs) != len(old_rows) or total_tokens != old_tokens
        )
        if stats_changed:
            connection.execute("DELETE FROM warm_artifacts")
        else:
            changed_terms = set()
            for doc in adds:
                changed_terms.update(analyzer.analyze(doc.full_text))
            for doc in old_documents.values():
                changed_terms.update(analyzer.analyze(doc.full_text))
            doomed = []
            for shard_key, spec_query, payload in connection.execute(
                "SELECT shard, spec_query, payload FROM warm_artifacts"
            ):
                raw = json.loads(payload)
                spec_terms = set(analyzer.analyze(raw["q"]))
                result_ids = {doc_id for doc_id, _ in raw.get("results", ())}
                if spec_terms & changed_terms or result_ids & changed_ids:
                    doomed.append((shard_key, spec_query))
            connection.executemany(
                "DELETE FROM warm_artifacts"
                " WHERE shard = ? AND spec_query = ?",
                doomed,
            )

        connection.executemany(
            "UPDATE meta SET value = ? WHERE key = ?",
            (
                (str(len(new_docs)), "num_documents"),
                (str(int(total_tokens or 0)), "total_tokens"),
                (str(new_epoch), "store_epoch"),
            ),
        )
        connection.commit()
    except BaseException:
        connection.rollback()
        raise
    finally:
        connection.close()
    return new_epoch


class IndexStore:
    """Read-only attachment to a store written by :func:`write_store`.

    One SQLite connection (``mode=ro`` URI) guarded by a lock — safe to
    share across the threads of a thread-backend cluster — and re-opened
    lazily if the owning process changes, so an engine inherited across
    ``fork()`` never touches the parent's connection.  Attaching
    validates the schema version and fails fast with the file name and
    both versions in the error; passing *expected_epoch* additionally
    fails fast (:class:`StaleEpochError`) when the store's published
    epoch is older — newer is fine, a reader always serves the latest.
    """

    def __init__(
        self, path: str | Path, *, expected_epoch: int | None = None
    ) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        self._owner_pid: int | None = None
        self._meta: dict[str, str] = {}
        self._connect()
        self._validate()
        if expected_epoch is not None and self.store_epoch < expected_epoch:
            found = self.store_epoch
            self.close()
            raise StaleEpochError(self.path, found, expected_epoch)

    # -- connection management --------------------------------------------

    def _connect(self) -> None:
        if not self.path.is_file():
            raise StoreError(f"{self.path}: store file does not exist")
        uri = f"file:{self.path}?mode=ro"
        try:
            connection = sqlite3.connect(
                uri, uri=True, check_same_thread=False
            )
            connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        except sqlite3.Error as exc:
            raise StoreError(
                f"{self.path}: cannot attach store ({exc})"
            ) from exc
        self._connection = connection
        self._owner_pid = os.getpid()

    def _conn(self) -> sqlite3.Connection:
        # Re-attach after fork: sqlite connections must not be shared
        # across processes, so each process opens its own on first use.
        if self._connection is None or self._owner_pid != os.getpid():
            self._connect()
        return self._connection

    def _validate(self) -> None:
        try:
            rows = self._fetchall("SELECT key, value FROM meta")
        except sqlite3.Error as exc:
            self.close()
            raise StoreError(
                f"{self.path}: not a repro index store ({exc})"
            ) from exc
        self._meta = dict(rows)
        raw = self._meta.get("schema_version")
        if raw is None:
            self.close()
            raise StoreError(
                f"{self.path}: store has no schema_version "
                f"(expected {SCHEMA_VERSION})"
            )
        version = int(raw)
        if version != SCHEMA_VERSION:
            self.close()
            raise StoreError(
                f"{self.path}: store schema version {version} does not "
                f"match the supported version {SCHEMA_VERSION}; rebuild "
                "the store with the current offline pipeline"
            )

    def close(self) -> None:
        with self._lock:
            if self._connection is not None and self._owner_pid == os.getpid():
                self._connection.close()
            self._connection = None
            self._owner_pid = None

    def _fetchone(self, sql: str, params=()) -> tuple | None:
        with self._lock:
            return self._conn().execute(sql, params).fetchone()

    def _fetchall(self, sql: str, params=()) -> list[tuple]:
        with self._lock:
            return self._conn().execute(sql, params).fetchall()

    # -- collection-global metadata ----------------------------------------

    @property
    def num_partitions(self) -> int:
        return int(self._meta["num_partitions"])

    @property
    def seed(self) -> int:
        return int(self._meta["seed"])

    @property
    def num_documents(self) -> int:
        return int(self._meta["num_documents"])

    @property
    def total_tokens(self) -> int:
        return int(self._meta["total_tokens"])

    @property
    def store_epoch(self) -> int:
        """The last epoch published into this store (0 for a fresh build)."""
        return int(self._meta.get("store_epoch", "0"))

    def reload(self) -> None:
        """Re-read the ``meta`` table — how a live engine observes an
        epoch another process appended after this attachment opened."""
        rows = self._fetchall("SELECT key, value FROM meta")
        with self._lock:
            self._meta = dict(rows)

    def partition_stats(self, partition: int) -> dict[str, int]:
        row = self._fetchone(
            "SELECT num_documents, num_terms, num_postings, total_tokens"
            " FROM partitions WHERE partition = ?",
            (partition,),
        )
        if row is None:
            raise StoreError(f"{self.path}: no partition {partition}")
        return {
            "num_documents": row[0],
            "num_terms": row[1],
            "num_postings": row[2],
            "total_tokens": row[3],
        }

    def partition_epoch(self, partition: int) -> int:
        """The epoch that last rewrote *partition*'s rows."""
        row = self._fetchone(
            "SELECT epoch FROM partitions WHERE partition = ?", (partition,)
        )
        if row is None:
            raise StoreError(f"{self.path}: no partition {partition}")
        return int(row[0])

    def lengths(self, partition: int) -> list[int]:
        row = self._fetchone(
            "SELECT lengths FROM partitions WHERE partition = ?", (partition,)
        )
        if row is None:
            raise StoreError(f"{self.path}: no partition {partition}")
        return _unpack_ints(row[0])

    def global_ordinals(self, partition: int) -> list[int]:
        row = self._fetchone(
            "SELECT global_ordinals FROM partitions WHERE partition = ?",
            (partition,),
        )
        if row is None:
            raise StoreError(f"{self.path}: no partition {partition}")
        return _unpack_ints(row[0])

    # -- postings -----------------------------------------------------------

    def postings(self, partition: int, term: str) -> PostingList | None:
        row = self._fetchone(
            "SELECT cf, ordinals, tfs FROM postings"
            " WHERE partition = ? AND term = ?",
            (partition, term),
        )
        if row is None:
            return None
        postings = PostingList()
        postings.ordinals = _unpack_ints(row[1])
        postings.tfs = _unpack_ints(row[2])
        postings.collection_frequency = row[0]
        return postings

    def term_stats(self, partition: int, term: str) -> tuple[int, int] | None:
        """``(df, cf)`` without paging the posting blobs in."""
        row = self._fetchone(
            "SELECT df, cf FROM postings WHERE partition = ? AND term = ?",
            (partition, term),
        )
        return (row[0], row[1]) if row is not None else None

    def vocabulary(self, partition: int) -> list[str]:
        return [
            row[0]
            for row in self._fetchall(
                "SELECT term FROM postings WHERE partition = ? ORDER BY term",
                (partition,),
            )
        ]

    # -- documents ----------------------------------------------------------

    def document_row(self, ordinal: int) -> tuple | None:
        return self._fetchone(
            "SELECT doc_id, title, text, metadata FROM documents"
            " WHERE ordinal = ?",
            (ordinal,),
        )

    def ordinal_of(self, doc_id: str) -> int | None:
        row = self._fetchone(
            "SELECT ordinal FROM documents WHERE doc_id = ?", (doc_id,)
        )
        return row[0] if row is not None else None

    def doc_ids(self) -> list[str]:
        return [
            row[0]
            for row in self._fetchall(
                "SELECT doc_id FROM documents ORDER BY ordinal"
            )
        ]

    # -- warm artifacts ------------------------------------------------------

    def warm_shards(self) -> list[int]:
        return [
            row[0]
            for row in self._fetchall(
                "SELECT DISTINCT shard FROM warm_artifacts ORDER BY shard"
            )
        ]

    def warm_payloads(self, shard: int) -> dict[str, str]:
        return dict(
            self._fetchall(
                "SELECT spec_query, payload FROM warm_artifacts"
                " WHERE shard = ? ORDER BY spec_query",
                (shard,),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexStore({str(self.path)!r})"


@dataclass(frozen=True)
class PageCacheStats:
    """Counters of the postings page cache, ``CacheStats``-style."""

    capacity_bytes: int
    resident_bytes: int
    pages: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "PageCacheStats") -> "PageCacheStats":
        """Component-wise sum — for rolling shard stats into a cluster."""
        return PageCacheStats(
            capacity_bytes=self.capacity_bytes + other.capacity_bytes,
            resident_bytes=self.resident_bytes + other.resident_bytes,
            pages=self.pages + other.pages,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class PostingPageCache:
    """A byte-bounded, thread-safe LRU over paged-in posting lists.

    Keys are ``(partition, term)``; one cache is shared by all the
    partitions of a store-backed engine so the bound covers the engine's
    whole postings footprint.  A single page larger than the capacity is
    admitted alone (evicting everything else) — refusing it would make
    its term unservable from cache and thrash the store instead.
    """

    def __init__(self, capacity_bytes: int = DEFAULT_PAGE_CACHE_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        self._pages: dict[tuple[int, str], tuple[PostingList, int]] = {}
        self._resident = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: tuple[int, str]) -> PostingList | None:
        with self._lock:
            entry = self._pages.get(key)
            if entry is None:
                self._misses += 1
                return None
            # Re-insert to refresh LRU order (dicts iterate oldest-first).
            del self._pages[key]
            self._pages[key] = entry
            self._hits += 1
            return entry[0]

    def put(self, key: tuple[int, str], postings: PostingList, nbytes: int) -> None:
        with self._lock:
            old = self._pages.pop(key, None)
            if old is not None:
                self._resident -= old[1]
            self._pages[key] = (postings, nbytes)
            self._resident += nbytes
            while self._resident > self.capacity_bytes and len(self._pages) > 1:
                oldest = next(iter(self._pages))
                if oldest == key:
                    break
                _, freed = self._pages.pop(oldest)
                self._resident -= freed
                self._evictions += 1

    def evict_partition(self, partition: int) -> int:
        """Drop every page of *partition*; returns the bytes freed."""
        with self._lock:
            doomed = [key for key in self._pages if key[0] == partition]
            freed = 0
            for key in doomed:
                _, nbytes = self._pages.pop(key)
                freed += nbytes
            self._resident -= freed
            self._evictions += len(doomed)
            return freed

    def partition_bytes(self, partition: int) -> int:
        with self._lock:
            return sum(
                nbytes
                for key, (_, nbytes) in self._pages.items()
                if key[0] == partition
            )

    def clear(self) -> None:
        with self._lock:
            self._pages.clear()
            self._resident = 0

    def stats(self) -> PageCacheStats:
        with self._lock:
            return PageCacheStats(
                capacity_bytes=self.capacity_bytes,
                resident_bytes=self._resident,
                pages=len(self._pages),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


class StoreBackedInvertedIndex:
    """One stored partition behind the ``InvertedIndex`` read surface.

    Postings page in on demand through the shared
    :class:`PostingPageCache`; document lengths and identifiers load
    lazily and can be dropped again by :meth:`evict` (the
    :class:`~repro.retrieval.sharding.MemoryBudget` hook) — everything
    pages back in transparently, so eviction never changes a result.
    """

    def __init__(
        self, store: IndexStore, partition: int, page_cache: PostingPageCache
    ) -> None:
        self._store = store
        self.partition = partition
        self._page_cache = page_cache
        stats = store.partition_stats(partition)
        self._num_documents = stats["num_documents"]
        self._num_terms = stats["num_terms"]
        self._num_postings = stats["num_postings"]
        self._total_tokens = stats["total_tokens"]
        self._lengths: list[int] | None = None

    # -- statistics (exact ints, straight from the partitions table) -------

    @property
    def num_documents(self) -> int:
        return self._num_documents

    @property
    def num_terms(self) -> int:
        return self._num_terms

    @property
    def num_postings(self) -> int:
        return self._num_postings

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def average_document_length(self) -> float:
        if not self._num_documents:
            return 0.0
        return self._total_tokens / self._num_documents

    # -- documents ----------------------------------------------------------

    def _doc_lengths(self) -> list[int]:
        lengths = self._lengths
        if lengths is None:
            # Benign race under threads: both loaders read identical data.
            lengths = self._store.lengths(self.partition)
            self._lengths = lengths
        return lengths

    def document_length(self, ordinal: int) -> int:
        return self._doc_lengths()[ordinal]

    def doc_id(self, ordinal: int) -> str:
        global_ordinal = self._store.global_ordinals(self.partition)[ordinal]
        row = self._store.document_row(global_ordinal)
        if row is None:
            raise IndexError(f"no document at partition ordinal {ordinal}")
        return row[0]

    # -- postings -----------------------------------------------------------

    def postings(self, term: str) -> PostingList | None:
        key = (self.partition, term)
        page = self._page_cache.get(key)
        if page is not None:
            return page
        postings = self._store.postings(self.partition, term)
        if postings is None:
            return None
        self._page_cache.put(key, postings, _page_bytes(postings))
        return postings

    def document_frequency(self, term: str) -> int:
        stats = self._store.term_stats(self.partition, term)
        return stats[0] if stats else 0

    def collection_frequency(self, term: str) -> int:
        stats = self._store.term_stats(self.partition, term)
        return stats[1] if stats else 0

    def __contains__(self, term: str) -> bool:
        return self._store.term_stats(self.partition, term) is not None

    def vocabulary(self) -> list[str]:
        return self._store.vocabulary(self.partition)

    # -- residency accounting and eviction ----------------------------------

    def resident_bytes(self) -> int:
        """Estimated bytes this partition holds in RAM right now."""
        total = self._page_cache.partition_bytes(self.partition)
        if self._lengths is not None:
            total += (
                sys.getsizeof(self._lengths) + len(self._lengths) * _INT_BYTES
            )
        return total

    def evict(self) -> int:
        """Drop this partition's resident state; returns bytes freed.

        Everything pages back in from the store on the next touch, so
        eviction trades next-query latency for memory — never results.
        """
        freed = self._page_cache.evict_partition(self.partition)
        if self._lengths is not None:
            freed += (
                sys.getsizeof(self._lengths) + len(self._lengths) * _INT_BYTES
            )
            self._lengths = None
        return freed

    def memory_estimate(self) -> dict[str, int]:
        """Resident estimate in the ``InvertedIndex.memory_estimate``
        shape.  Vocabulary stays on disk (never paged in wholesale), so
        its resident price is zero."""
        postings_bytes = self._page_cache.partition_bytes(self.partition)
        documents_bytes = 0
        if self._lengths is not None:
            documents_bytes += (
                sys.getsizeof(self._lengths) + len(self._lengths) * _INT_BYTES
            )
        return {
            "postings_bytes": postings_bytes,
            "vocabulary_bytes": 0,
            "documents_bytes": documents_bytes,
            "total_bytes": postings_bytes + documents_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreBackedInvertedIndex(partition={self.partition}, "
            f"docs={self._num_documents}, terms={self._num_terms})"
        )


class StoreBackedCollection:
    """The ``DocumentCollection`` read surface over stored documents.

    Nothing loads at attach time: document rows fetch lazily (behind a
    small LRU) when snippets or result mapping need them — the bulk of
    why attach is O(1) in collection size.
    """

    def __init__(
        self,
        store: IndexStore,
        cache_size: int = DEFAULT_DOCUMENT_CACHE_SIZE,
    ) -> None:
        self._store = store
        self._num_documents = store.num_documents
        self._documents = LRUCache(cache_size)  # global ordinal -> Document
        self._ordinals = LRUCache(cache_size)  # doc_id -> global ordinal

    def by_ordinal(self, ordinal: int) -> Document:
        document = self._documents.get(ordinal)
        if document is not None:
            return document
        row = self._store.document_row(ordinal)
        if row is None:
            raise IndexError(f"ordinal out of range: {ordinal}")
        document = Document(
            doc_id=row[0],
            text=row[2],
            title=row[1],
            metadata=json.loads(row[3]),
        )
        self._documents.put(ordinal, document)
        return document

    def ordinal(self, doc_id: str) -> int:
        ordinal = self._ordinals.get(doc_id)
        if ordinal is not None:
            return ordinal
        ordinal = self._store.ordinal_of(doc_id)
        if ordinal is None:
            raise KeyError(doc_id)
        self._ordinals.put(doc_id, ordinal)
        return ordinal

    def __getitem__(self, doc_id: str) -> Document:
        return self.by_ordinal(self.ordinal(doc_id))

    def get(self, doc_id: str, default: Document | None = None):
        try:
            return self[doc_id]
        except KeyError:
            return default

    def __contains__(self, doc_id: str) -> bool:
        try:
            self.ordinal(doc_id)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        return self._num_documents

    def __iter__(self) -> Iterator[Document]:
        for ordinal in range(self._num_documents):
            yield self.by_ordinal(ordinal)

    @property
    def doc_ids(self) -> list[str]:
        """Every doc_id in ordinal order — a full store scan; meant for
        validation and tests, not the serving path."""
        return self._store.doc_ids()


class StoreBackedSearchEngine(PartitionedSearchEngine):
    """A partitioned engine attached to an :class:`IndexStore`.

    Construction is O(attach): open the store read-only, read the
    per-partition statistics rows and the (small) local→global ordinal
    maps — no documents, no postings.  The identity-critical
    :meth:`~repro.retrieval.sharding.PartitionedSearchEngine.search` is
    inherited unchanged; because every statistic round-trips as exact
    integers and ``avg_dl`` is the same ``total_tokens / num_documents``
    division, scores are byte-identical to the in-memory build.

    Pickles as its store path plus configuration and re-attaches on
    unpickle, so spawn-method process workers and respawned replicas
    hydrate in O(attach) instead of shipping (or rebuilding) the index.
    The recipe remembers the epoch the donor was serving, so a respawn
    pointed at a rolled-back store fails fast (:class:`StaleEpochError`)
    instead of silently serving old data — a *newer* store is fine, the
    respawn simply rehydrates to the latest published epoch.

    Live ingest reaches this engine through :meth:`refresh`, not
    ``apply_updates``: a writer appends an epoch to the store file
    (:func:`append_epoch`) and every attached engine re-snapshots from
    it, re-paging only the partitions the append actually rewrote.
    """

    def __init__(
        self,
        store_path: str | Path,
        *,
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        snippet_extractor=None,
        vector_cache_size: int = 0,
        page_cache_bytes: int = DEFAULT_PAGE_CACHE_BYTES,
        document_cache_size: int = DEFAULT_DOCUMENT_CACHE_SIZE,
        memory_budget: MemoryBudget | int | None = None,
        expected_epoch: int | None = None,
    ) -> None:
        # Deliberately not calling super().__init__ (which would build
        # in-memory partitions); this constructor attaches instead.
        self.store_path = str(store_path)
        self._vector_cache_size = vector_cache_size
        self._page_cache_bytes = page_cache_bytes
        self._document_cache_size = document_cache_size
        store = IndexStore(self.store_path, expected_epoch=expected_epoch)
        self.store = store
        self.num_partitions = store.num_partitions
        self.seed = store.seed
        self.analyzer = analyzer or Analyzer()
        self.model = model or DPH()
        self.page_cache = PostingPageCache(page_cache_bytes)
        self.snippets = snippet_extractor or SnippetExtractor(
            analyzer=self.analyzer
        )
        self._vector_cache = (
            LRUCache(vector_cache_size) if vector_cache_size > 0 else None
        )
        self.memory_budget = None
        self._partition_clock = 0
        self._partition_touched = [0] * self.num_partitions
        self._pin = threading.local()
        self._epoch_lock = threading.RLock()
        self._snapshot = self._attach_snapshot(previous=None)
        if memory_budget is not None:
            self.set_memory_budget(memory_budget)

    def _attach_snapshot(
        self, previous: EngineSnapshot | None
    ) -> EngineSnapshot:
        """Assemble a snapshot of the store's current epoch.

        With *previous*, partitions whose stored ``epoch`` tag has not
        advanced past the previous snapshot keep their wrapper (resident
        lengths and postings pages stay valid — an append never edits an
        untouched partition's rows); rewritten partitions get a fresh
        wrapper and their pages evicted.  The document collection view is
        always rebuilt: removals shift global ordinals, and the row
        caches are keyed by them.
        """
        store = self.store
        partitions = []
        for p in range(self.num_partitions):
            reusable = (
                previous is not None
                and store.partition_epoch(p) <= previous.epoch
            )
            if reusable:
                partitions.append(previous.partitions[p])
            else:
                if previous is not None:
                    self.page_cache.evict_partition(p)
                partitions.append(
                    StoreBackedInvertedIndex(store, p, self.page_cache)
                )
        num_documents = store.num_documents
        total_tokens = store.total_tokens
        return EngineSnapshot(
            epoch=store.store_epoch,
            collection=StoreBackedCollection(
                store, self._document_cache_size
            ),
            partition_collections=(),
            partitions=tuple(partitions),
            global_ordinals=tuple(
                tuple(store.global_ordinals(p))
                for p in range(self.num_partitions)
            ),
            num_documents=num_documents,
            total_tokens=total_tokens,
            average_document_length=(
                total_tokens / num_documents if num_documents else 0.0
            ),
        )

    def refresh(self) -> int:
        """Re-attach to the latest epoch published into the store.

        Returns the (possibly unchanged) published epoch.  Raises
        :class:`StaleEpochError` if the store file moved *backwards* —
        a swapped-in older file — since serving an epoch and then
        un-serving it would silently break the identity guarantee.
        """
        with self._epoch_lock:
            self.store.reload()
            current = self._snapshot
            latest = self.store.store_epoch
            if latest < current.epoch:
                raise StaleEpochError(
                    self.store.path, latest, current.epoch
                )
            if latest > current.epoch:
                self._snapshot = self._attach_snapshot(previous=current)
            return latest

    # -- pickling: ship the attach recipe, not the data ---------------------

    def __getstate__(self) -> dict:
        return {
            "store_path": self.store_path,
            "model": self.model,
            "analyzer": self.analyzer,
            "snippet_extractor": self.snippets,
            "vector_cache_size": self._vector_cache_size,
            "page_cache_bytes": self._page_cache_bytes,
            "document_cache_size": self._document_cache_size,
            "memory_budget": (
                self.memory_budget.limit_bytes if self.memory_budget else None
            ),
            "expected_epoch": self.epoch,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["store_path"],
            model=state["model"],
            analyzer=state["analyzer"],
            snippet_extractor=state["snippet_extractor"],
            vector_cache_size=state["vector_cache_size"],
            page_cache_bytes=state["page_cache_bytes"],
            document_cache_size=state["document_cache_size"],
            memory_budget=state["memory_budget"],
            expected_epoch=state.get("expected_epoch"),
        )

    # -- reporting ----------------------------------------------------------

    def page_cache_info(self) -> PageCacheStats:
        """Live counters of the shared postings page cache."""
        return self.page_cache.stats()

    def memory_estimate(self) -> dict[str, int]:
        """Estimated *resident* bytes — what is paged in right now, plus
        the always-resident ordinal maps — in the same shape as the
        in-memory engine, so rebuild-vs-attach footprints compare
        directly."""
        totals = {
            "postings_bytes": 0,
            "vocabulary_bytes": 0,
            "documents_bytes": 0,
            "total_bytes": 0,
        }
        for partition in self.partitions:
            for key, value in partition.memory_estimate().items():
                totals[key] += value
        ordinal_bytes = sum(
            sys.getsizeof(mapping) + len(mapping) * _INT_BYTES
            for mapping in self._global_ordinals
        )
        totals["documents_bytes"] += ordinal_bytes
        totals["total_bytes"] += ordinal_bytes
        return totals

    def close(self) -> None:
        self.page_cache.clear()
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreBackedSearchEngine(store={self.store_path!r}, "
            f"partitions={self.num_partitions}, docs={self._num_documents})"
        )


def read_warm_payloads(
    path: str | Path, shard: int
) -> dict[str, str]:
    """The stored warm payload lines for *shard* — ``{spec_query:
    payload}`` where each payload decodes with
    :func:`~repro.retrieval.persistence.decode_warm_artifact`.  Opens
    and closes its own attachment, so callers need no live store."""
    store = IndexStore(path)
    try:
        return store.warm_payloads(shard)
    finally:
        store.close()

"""Document weighting models for the retrieval substrate.

The paper (Section 5) retrieves the initial result lists ``R_q`` with the
parameter-free **DPH** Divergence-From-Randomness model (Amati et al.,
TREC 2007 blog track), as implemented in Terrier.  This module implements
DPH exactly as published, together with BM25 and a Robertson TF-IDF used in
tests and ablations.

Every model exposes the same per-term interface::

    score(tf, doc_length, document_frequency, collection_frequency,
          num_documents, average_document_length, key_frequency=1.0)

so the matching/scoring loop in :mod:`repro.retrieval.engine` is model
agnostic, mirroring Terrier's ``WeightingModel`` contract.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = ["WeightingModel", "DPH", "BM25", "TFIDF", "get_model"]

_LOG2 = math.log(2.0)


def _log2(x: float) -> float:
    return math.log(x) / _LOG2


class WeightingModel(ABC):
    """Scores one (term, document) match given collection statistics."""

    name: str = "abstract"

    @abstractmethod
    def score(
        self,
        tf: float,
        doc_length: float,
        document_frequency: int,
        collection_frequency: int,
        num_documents: int,
        average_document_length: float,
        key_frequency: float = 1.0,
    ) -> float:
        """Return the contribution of a term occurring ``tf`` times."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class DPH(WeightingModel):
    """The DPH hypergeometric DFR model (parameter free).

    Following the Terrier reference implementation::

        f     = tf / dl
        norm  = (1 - f)^2 / (tf + 1)
        score = kf * norm * ( tf * log2( (tf * avdl / dl) * (N / CF) )
                              + 0.5 * log2( 2 * pi * tf * (1 - f) ) )

    where ``N`` is the number of documents and ``CF`` the term's collection
    frequency.  ``f`` is clamped slightly below 1 so that documents made of
    a single repeated term do not produce ``log(0)``.
    """

    name = "DPH"

    def score(
        self,
        tf: float,
        doc_length: float,
        document_frequency: int,
        collection_frequency: int,
        num_documents: int,
        average_document_length: float,
        key_frequency: float = 1.0,
    ) -> float:
        if tf <= 0 or doc_length <= 0:
            return 0.0
        f = tf / doc_length
        if f >= 1.0:
            f = 1.0 - 1e-9
        norm = (1.0 - f) * (1.0 - f) / (tf + 1.0)
        population = max(collection_frequency, 1)
        expected = (tf * average_document_length / doc_length) * (
            num_documents / population
        )
        if expected <= 0:
            return 0.0
        gain = tf * _log2(expected) + 0.5 * _log2(2.0 * math.pi * tf * (1.0 - f))
        return key_frequency * norm * gain


class BM25(WeightingModel):
    """Okapi BM25 with the usual ``k1``/``b``/``k3`` parameterisation."""

    name = "BM25"

    def __init__(self, k1: float = 1.2, b: float = 0.75, k3: float = 8.0) -> None:
        if k1 < 0 or not 0 <= b <= 1:
            raise ValueError("BM25 requires k1 >= 0 and 0 <= b <= 1")
        self.k1 = k1
        self.b = b
        self.k3 = k3

    def score(
        self,
        tf: float,
        doc_length: float,
        document_frequency: int,
        collection_frequency: int,
        num_documents: int,
        average_document_length: float,
        key_frequency: float = 1.0,
    ) -> float:
        if tf <= 0:
            return 0.0
        avdl = average_document_length or 1.0
        denom = tf + self.k1 * (1.0 - self.b + self.b * doc_length / avdl)
        term_weight = tf * (self.k1 + 1.0) / denom
        idf = math.log(
            (num_documents - document_frequency + 0.5)
            / (document_frequency + 0.5)
            + 1.0
        )
        qtf = key_frequency
        query_weight = (self.k3 + 1.0) * qtf / (self.k3 + qtf)
        return term_weight * idf * query_weight


class TFIDF(WeightingModel):
    """Robertson TF with a smoothed IDF (Terrier's ``TF_IDF`` model)."""

    name = "TF_IDF"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b

    def score(
        self,
        tf: float,
        doc_length: float,
        document_frequency: int,
        collection_frequency: int,
        num_documents: int,
        average_document_length: float,
        key_frequency: float = 1.0,
    ) -> float:
        if tf <= 0:
            return 0.0
        avdl = average_document_length or 1.0
        robertson_tf = (
            self.k1 * tf / (tf + self.k1 * (1.0 - self.b + self.b * doc_length / avdl))
        )
        idf = math.log(num_documents / (document_frequency or 1) + 1.0)
        return key_frequency * robertson_tf * idf


_MODELS = {
    "dph": DPH,
    "bm25": BM25,
    "tfidf": TFIDF,
    "tf_idf": TFIDF,
}


def get_model(name: str, **kwargs) -> WeightingModel:
    """Instantiate a weighting model by (case-insensitive) name.

    >>> get_model("DPH").name
    'DPH'
    """
    try:
        factory = _MODELS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown weighting model {name!r}; choose from {sorted(_MODELS)}"
        ) from None
    return factory(**kwargs)

"""Persistence: save/load collections and query logs as JSON lines.

The synthetic corpus and logs are cheap to regenerate, but experiments
that must be byte-stable across machines (or that plug in real data
prepared elsewhere) want them on disk.  JSON-lines keeps files
greppable, diffable and append-friendly — one document or record per
line, UTF-8.

The TREC artefacts (topics, qrels, runs) already have their official
text formats in :mod:`repro.corpus.trec`; this module covers the two
remaining data types.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.querylog.records import QueryLog, QueryRecord
from repro.retrieval.documents import Document, DocumentCollection

__all__ = [
    "dump_collection",
    "load_collection",
    "dump_query_log",
    "load_query_log",
]


def _write_lines(path: str | Path, lines: Iterable[str]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")


def _read_lines(path: str | Path) -> Iterator[str]:
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line


def dump_collection(collection: DocumentCollection, path: str | Path) -> None:
    """Write *collection* as JSON lines (one document per line)."""
    _write_lines(
        path,
        (
            json.dumps(
                {
                    "doc_id": doc.doc_id,
                    "title": doc.title,
                    "text": doc.text,
                    "metadata": doc.metadata,
                },
                ensure_ascii=False,
            )
            for doc in collection
        ),
    )


def load_collection(path: str | Path) -> DocumentCollection:
    """Read a collection written by :func:`dump_collection`."""
    collection = DocumentCollection()
    for line_no, line in enumerate(_read_lines(path), start=1):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
        collection.add(
            Document(
                doc_id=raw["doc_id"],
                text=raw.get("text", ""),
                title=raw.get("title", ""),
                metadata=raw.get("metadata", {}),
            )
        )
    return collection


def dump_query_log(log: QueryLog, path: str | Path) -> None:
    """Write *log* as JSON lines (one ⟨q, u, t, V, C⟩ record per line)."""
    _write_lines(
        path,
        (
            json.dumps(
                {
                    "t": record.timestamp,
                    "u": record.user_id,
                    "q": record.query,
                    "V": list(record.results),
                    "C": list(record.clicks),
                },
                ensure_ascii=False,
            )
            for record in log
        ),
    )


def load_query_log(path: str | Path, name: str = "") -> QueryLog:
    """Read a log written by :func:`dump_query_log`."""
    records = []
    for line_no, line in enumerate(_read_lines(path), start=1):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
        records.append(
            QueryRecord(
                timestamp=float(raw["t"]),
                user_id=raw["u"],
                query=raw["q"],
                results=tuple(raw.get("V", ())),
                clicks=tuple(raw.get("C", ())),
            )
        )
    return QueryLog(records, name=name)

"""Persistence: collections, query logs and warm artifacts as JSON lines.

The synthetic corpus and logs are cheap to regenerate, but experiments
that must be byte-stable across machines (or that plug in real data
prepared elsewhere) want them on disk.  JSON-lines keeps files
greppable, diffable and append-friendly — one document or record per
line, UTF-8.

The TREC artefacts (topics, qrels, runs) already have their official
text formats in :mod:`repro.corpus.trec`.  Besides the two raw data
types, this module persists the *warm artifacts* of the serving layer's
offline phase — the per-specialization result lists R_q' and their
snippet surrogate vectors (Section 4.1).  Saving them lets a restarted
service, or a worker process spawned by
:class:`~repro.serving.backends.ProcessBackend`, hydrate from disk and
serve **identical** rankings without re-deriving the offline phase:
floats survive the JSON round-trip exactly (shortest-repr), and vectors
are restored without renormalisation
(:meth:`~repro.retrieval.similarity.TermVector.from_normalized`).
"""

from __future__ import annotations

import json
import os
import sys
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path

from repro.querylog.records import QueryLog, QueryRecord
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import ResultList
from repro.retrieval.similarity import TermVector

__all__ = [
    "dump_collection",
    "load_collection",
    "dump_query_log",
    "load_query_log",
    "dump_warm_artifacts",
    "load_warm_artifacts",
    "encode_warm_artifact",
    "decode_warm_artifact",
    "estimate_warm_memory",
]


def _write_lines(path: str | Path, lines: Iterable[str]) -> None:
    """Write *lines* atomically: a sibling tmp file is renamed over
    *path* only after every line has been flushed, so a writer killed
    mid-dump never leaves a truncated file where readers look — they
    see either the previous complete file or the new complete one."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_lines(path: str | Path) -> Iterator[str]:
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line


def dump_collection(collection: DocumentCollection, path: str | Path) -> None:
    """Write *collection* as JSON lines (one document per line)."""
    _write_lines(
        path,
        (
            json.dumps(
                {
                    "doc_id": doc.doc_id,
                    "title": doc.title,
                    "text": doc.text,
                    "metadata": doc.metadata,
                },
                ensure_ascii=False,
            )
            for doc in collection
        ),
    )


def load_collection(path: str | Path) -> DocumentCollection:
    """Read a collection written by :func:`dump_collection`."""
    collection = DocumentCollection()
    for line_no, line in enumerate(_read_lines(path), start=1):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
        collection.add(
            Document(
                doc_id=raw["doc_id"],
                text=raw.get("text", ""),
                title=raw.get("title", ""),
                metadata=raw.get("metadata", {}),
            )
        )
    return collection


def dump_query_log(log: QueryLog, path: str | Path) -> None:
    """Write *log* as JSON lines (one ⟨q, u, t, V, C⟩ record per line)."""
    _write_lines(
        path,
        (
            json.dumps(
                {
                    "t": record.timestamp,
                    "u": record.user_id,
                    "q": record.query,
                    "V": list(record.results),
                    "C": list(record.clicks),
                },
                ensure_ascii=False,
            )
            for record in log
        ),
    )


def encode_warm_artifact(
    spec_query: str,
    results: ResultList,
    vectors: Mapping[str, TermVector],
) -> str:
    """One warm artifact as its canonical JSON line (no newline).

    Single source of truth for the on-disk shape shared by the JSONL
    files (:func:`dump_warm_artifacts`) and the SQLite warm table
    (:mod:`repro.retrieval.store`): floats survive via shortest-repr
    JSON, so a decode is bit-identical to what was encoded.
    """
    return json.dumps(
        {
            "q": spec_query,
            "results": [[r.doc_id, r.score] for r in results],
            "vectors": {
                doc_id: vector.weights for doc_id, vector in vectors.items()
            },
        },
        ensure_ascii=False,
    )


def decode_warm_artifact(
    line: str, context: str = "warm artifact"
) -> tuple[str, tuple[ResultList, dict[str, TermVector]]]:
    """Decode one :func:`encode_warm_artifact` line.

    Returns ``(spec_query, (ResultList, {doc_id: TermVector}))``; raises
    :class:`ValueError` prefixed with *context* (e.g. ``"path:line"``)
    on malformed input.
    """
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{context}: invalid JSON") from exc
    try:
        spec_query = raw["q"]
        results = ResultList(
            spec_query,
            [(doc_id, float(score)) for doc_id, score in raw.get("results", ())],
        )
        vectors = {
            doc_id: TermVector.from_normalized(weights)
            for doc_id, weights in raw.get("vectors", {}).items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ValueError(f"{context}: malformed warm artifact ({exc})") from exc
    return spec_query, (results, vectors)


def dump_warm_artifacts(
    artifacts: Mapping[str, tuple[ResultList, Mapping[str, TermVector]]],
    path: str | Path,
) -> int:
    """Write warm artifacts (one specialization per line) to *path*.

    *artifacts* is what
    :meth:`~repro.core.framework.DiversificationFramework.export_warm_state`
    returns: ``{spec_query: (ResultList, {doc_id: TermVector})}``.
    Returns the number of specializations written.
    """
    artifacts = dict(artifacts)
    _write_lines(
        path,
        (
            encode_warm_artifact(spec_query, results, vectors)
            for spec_query, (results, vectors) in artifacts.items()
        ),
    )
    return len(artifacts)


def load_warm_artifacts(
    path: str | Path,
) -> dict[str, tuple[ResultList, dict[str, TermVector]]]:
    """Read warm artifacts written by :func:`dump_warm_artifacts`.

    The result plugs straight into
    :meth:`~repro.core.framework.DiversificationFramework.install_warm_state`;
    scores and vector weights are bit-identical to what was saved, so a
    hydrated service ranks exactly like the one that warmed.
    """
    artifacts: dict[str, tuple[ResultList, dict[str, TermVector]]] = {}
    for line_no, line in enumerate(_read_lines(path), start=1):
        spec_query, payload = decode_warm_artifact(line, f"{path}:{line_no}")
        artifacts[spec_query] = payload
    return artifacts


#: Estimated bytes of one boxed CPython float (64-bit build).
_FLOAT_BYTES = 24


def estimate_warm_memory(
    artifacts: Mapping[str, tuple[ResultList, Mapping[str, TermVector]]],
) -> dict[str, int]:
    """Estimated resident bytes of warm artifacts, plus their counts.

    *artifacts* is an
    :meth:`~repro.core.framework.DiversificationFramework.export_warm_state`
    snapshot: ``{spec_query: (ResultList, {doc_id: TermVector})}``.  Sums
    ``sys.getsizeof`` of the real strings/dicts plus flat per-element
    prices for boxed floats — the same estimation discipline as
    :meth:`~repro.retrieval.index.InvertedIndex.memory_estimate`, so the
    offline pipeline's per-partition index footprints and per-shard warm
    footprints are directly comparable.  Returns ``{"specializations",
    "results", "vectors", "result_bytes", "vector_bytes", "total_bytes"}``.
    """
    specializations = 0
    results_count = 0
    vectors_count = 0
    result_bytes = 0
    vector_bytes = 0
    for spec_query, (results, vectors) in dict(artifacts).items():
        specializations += 1
        results_count += len(results)
        result_bytes += sys.getsizeof(spec_query)
        for result in results:
            # SearchResult object + its doc_id string + score float.
            result_bytes += 64 + sys.getsizeof(result.doc_id) + _FLOAT_BYTES
        for doc_id, vector in vectors.items():
            vectors_count += 1
            vector_bytes += sys.getsizeof(doc_id) + sys.getsizeof(
                vector.weights
            )
            for term in vector.weights:
                vector_bytes += sys.getsizeof(term) + _FLOAT_BYTES
    return {
        "specializations": specializations,
        "results": results_count,
        "vectors": vectors_count,
        "result_bytes": result_bytes,
        "vector_bytes": vector_bytes,
        "total_bytes": result_bytes + vector_bytes,
    }


def load_query_log(path: str | Path, name: str = "") -> QueryLog:
    """Read a log written by :func:`dump_query_log`."""
    records = []
    for line_no, line in enumerate(_read_lines(path), start=1):
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
        records.append(
            QueryRecord(
                timestamp=float(raw["t"]),
                user_id=raw["u"],
                query=raw["q"],
                results=tuple(raw.get("V", ())),
                clicks=tuple(raw.get("C", ())),
            )
        )
    return QueryLog(records, name=name)

"""Text analysis pipeline: tokenization, stopword removal and stemming.

The paper (Section 5) indexes ClueWeb-B with the Terrier platform using
"Porter's stemmer and standard English stopword removal".  This module
provides the equivalent pipeline for our in-package search engine:

* :func:`tokenize` — lower-cased alphanumeric tokenization,
* :data:`ENGLISH_STOPWORDS` — a standard English stopword list,
* :class:`PorterStemmer` — a complete implementation of M.F. Porter's 1980
  suffix-stripping algorithm ("An algorithm for suffix stripping",
  *Program* 14(3) 130-137),
* :class:`Analyzer` — the composed pipeline used by the index, the engine
  and the query-log recommender.

Everything is implemented from scratch (no external IR toolkit).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

__all__ = [
    "ENGLISH_STOPWORDS",
    "PorterStemmer",
    "Analyzer",
    "tokenize",
]


_TOKEN_RE = re.compile(r"[a-z0-9]+")

# The classic SMART-derived English stopword list trimmed to the terms that
# actually occur in web-scale text with high frequency.  Terrier's standard
# list is a superset; for retrieval behaviour only the high-frequency terms
# matter.
ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    couldn did didn do does doesn doing don down during each few for from
    further had hadn has hasn have haven having he her here hers herself him
    himself his how i if in into is isn it its itself just ll me mightn more
    most mustn my myself needn no nor not now o of off on once only or other
    our ours ourselves out over own re s same shan she should shouldn so some
    such t than that the their theirs them themselves then there these they
    this those through to too under until up ve very was wasn we were weren
    what when where which while who whom why will with won would wouldn y you
    your yours yourself yourselves
    """.split()
)


def tokenize(text: str) -> list[str]:
    """Split *text* into lower-cased alphanumeric tokens.

    Punctuation and whitespace separate tokens; digits are kept because web
    queries frequently contain them (model numbers, years, ...).

    >>> tokenize("Barack Obama's family-tree, 2009!")
    ['barack', 'obama', 's', 'family', 'tree', '2009']
    """
    return _TOKEN_RE.findall(text.lower())


class PorterStemmer:
    """M.F. Porter's 1980 suffix-stripping algorithm.

    The implementation follows the original paper's five steps (with steps
    1 and 5 split into their published sub-steps).  Words of length <= 2 are
    returned unchanged, as in the reference implementation.

    >>> stem = PorterStemmer()
    >>> stem("caresses"), stem("ponies"), stem("relational")
    ('caress', 'poni', 'relat')
    """

    _VOWELS = frozenset("aeiou")

    def __call__(self, word: str) -> str:
        return self.stem(word)

    # -- public API ---------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of *word* (assumed lower-case)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- conditions ---------------------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in self._VOWELS:
            return False
        if ch == "y":
            # 'y' is a consonant when it starts the word or follows a vowel.
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """The Porter measure m: number of VC sequences in the stem."""
        m = 0
        prev_vowel = False
        for i in range(len(stem)):
            vowel = not self._is_consonant(stem, i)
            if not vowel and prev_vowel:
                m += 1
            prev_vowel = vowel
        return m

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        """*o: stem ends consonant-vowel-consonant, last not w, x or y."""
        if len(word) < 3:
            return False
        return (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- steps --------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if self._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP3_SUFFIXES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if suffix == "ion" and (not stem or stem[-1] not in "st"):
                    continue
                if self._measure(stem) > 1:
                    return stem
                return word
        # 'ion' needs the preceding s/t check, handled separately so the
        # generic loop above stays a simple suffix table.
        if word.endswith("ion"):
            stem = word[:-3]
            if stem and stem[-1] in "st" and self._measure(stem) > 1:
                return stem
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = self._measure(stem)
            if m > 1:
                return stem
            if m == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word


class Analyzer:
    """The composed text-analysis pipeline used across the library.

    Parameters
    ----------
    stopwords:
        Terms removed after tokenization.  Pass an empty set to disable
        stopword removal (useful for query-log text, where stopwords can
        carry intent).
    stemmer:
        A callable mapping a token to its stem, or ``None`` to disable
        stemming.

    >>> analyzer = Analyzer()
    >>> analyzer.analyze("The leopards are running")
    ['leopard', 'run']
    """

    def __init__(
        self,
        stopwords: Iterable[str] | None = None,
        stemmer: PorterStemmer | None = None,
        *,
        use_stemming: bool = True,
    ) -> None:
        if stopwords is None:
            stopwords = ENGLISH_STOPWORDS
        self.stopwords = frozenset(stopwords)
        if stemmer is None and use_stemming:
            stemmer = PorterStemmer()
        self.stemmer = stemmer if use_stemming else None

    def analyze(self, text: str) -> list[str]:
        """Tokenize, stop and stem *text*, preserving token order."""
        return list(self.iter_terms(text))

    def iter_terms(self, text: str) -> Iterator[str]:
        """Lazily yield analysed terms of *text*."""
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            if self.stemmer is not None:
                token = self.stemmer.stem(token)
            yield token

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Analyzer(stopwords={len(self.stopwords)}, "
            f"stemming={self.stemmer is not None})"
        )

"""Inverted index over a :class:`~repro.retrieval.documents.DocumentCollection`.

This is the indexing half of the Terrier substitute used by the paper's
evaluation (Section 5).  It supports:

* term-at-a-time scoring with any :class:`~repro.retrieval.models.WeightingModel`,
* collection statistics needed by DFR models (collection frequency,
  document frequency, average document length),
* incremental construction (used by the Search-Shortcuts recommender,
  which indexes query-log "virtual documents").

The index stores postings as parallel lists per term, which keeps the pure
Python implementation compact and fast enough for collections of a few
hundred thousand documents.
"""

from __future__ import annotations

import sys
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection

__all__ = ["Posting", "PostingList", "InvertedIndex"]

#: Estimated bytes of one boxed CPython ``int`` (64-bit build).  Small
#: interned ints are cheaper in reality; the estimate deliberately prices
#: every element so partition footprints stay comparable.
_INT_BYTES = 28


@dataclass(frozen=True)
class Posting:
    """A single (document, term-frequency) pair."""

    ordinal: int
    tf: int


class PostingList:
    """Postings of one term, stored as parallel arrays sorted by ordinal."""

    __slots__ = ("ordinals", "tfs", "collection_frequency")

    def __init__(self) -> None:
        self.ordinals: list[int] = []
        self.tfs: list[int] = []
        self.collection_frequency = 0

    def append(self, ordinal: int, tf: int) -> None:
        if self.ordinals and ordinal <= self.ordinals[-1]:
            raise ValueError("postings must be appended in ordinal order")
        self.ordinals.append(ordinal)
        self.tfs.append(tf)
        self.collection_frequency += tf

    @property
    def document_frequency(self) -> int:
        return len(self.ordinals)

    def __iter__(self):
        return (Posting(o, t) for o, t in zip(self.ordinals, self.tfs))

    def __len__(self) -> int:
        return len(self.ordinals)


class InvertedIndex:
    """A term → postings map with collection statistics.

    Parameters
    ----------
    analyzer:
        Pipeline used for both documents and queries, so that query terms
        and index terms live in the same stemmed space.

    >>> index = InvertedIndex()
    >>> index.index_document(Document("d1", "apple iphone store"))
    >>> index.index_document(Document("d2", "apple fruit orchard"))
    >>> index.document_frequency("appl")
    2
    """

    def __init__(self, analyzer: Analyzer | None = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._postings: dict[str, PostingList] = {}
        self._doc_lengths: list[int] = []
        self._doc_ids: list[str] = []
        self._ordinal_by_id: dict[str, int] = {}
        self._total_tokens = 0

    # -- construction ---------------------------------------------------------

    def index_document(self, document: Document) -> int:
        """Analyse and add *document*; returns its ordinal."""
        if document.doc_id in self._ordinal_by_id:
            raise ValueError(f"doc_id already indexed: {document.doc_id!r}")
        terms = self.analyzer.analyze(document.full_text)
        ordinal = len(self._doc_ids)
        self._doc_ids.append(document.doc_id)
        self._ordinal_by_id[document.doc_id] = ordinal
        self._doc_lengths.append(len(terms))
        self._total_tokens += len(terms)
        for term, tf in Counter(terms).items():
            postings = self._postings.get(term)
            if postings is None:
                postings = self._postings[term] = PostingList()
            postings.append(ordinal, tf)
        return ordinal

    def index_collection(self, collection: DocumentCollection) -> None:
        for document in collection:
            self.index_document(document)

    def remove_document(self, doc_id: str) -> int:
        """Remove *doc_id* and refresh every derived statistic.

        Ordinals are dense (they double as positions in the length and
        id tables), so removal *shifts every later document down by
        one* — exactly the ordinal assignment a from-scratch index over
        the surviving documents would produce, which is what keeps the
        epoch-swap's incremental partitions byte-identical to a rebuild.
        Posting lists are rewritten in one pass per term; terms whose
        last posting was the removed document leave the vocabulary.
        Returns the removed document's former ordinal.
        """
        ordinal = self._ordinal_by_id.get(doc_id)
        if ordinal is None:
            raise ValueError(f"doc_id not indexed: {doc_id!r}")
        del self._doc_ids[ordinal]
        self._total_tokens -= self._doc_lengths.pop(ordinal)
        del self._ordinal_by_id[doc_id]
        for later_id, later_ordinal in self._ordinal_by_id.items():
            if later_ordinal > ordinal:
                self._ordinal_by_id[later_id] = later_ordinal - 1
        emptied = []
        for term, postings in self._postings.items():
            if postings.ordinals[-1] < ordinal:
                continue
            kept = PostingList()
            for o, tf in zip(postings.ordinals, postings.tfs):
                if o == ordinal:
                    continue
                kept.append(o - 1 if o > ordinal else o, tf)
            if kept.ordinals:
                self._postings[term] = kept
            else:
                emptied.append(term)
        for term in emptied:
            del self._postings[term]
        return ordinal

    def copy(self) -> "InvertedIndex":
        """An independent deep copy (shared analyzer, copied postings).

        The epoch-swap mutates a *copy* of each affected partition while
        the published snapshot keeps serving the original, so the copy
        must share no mutable structure with its source.
        """
        clone = InvertedIndex(self.analyzer)
        clone._doc_lengths = list(self._doc_lengths)
        clone._doc_ids = list(self._doc_ids)
        clone._ordinal_by_id = dict(self._ordinal_by_id)
        clone._total_tokens = self._total_tokens
        for term, postings in self._postings.items():
            copied = PostingList()
            copied.ordinals = list(postings.ordinals)
            copied.tfs = list(postings.tfs)
            copied.collection_frequency = postings.collection_frequency
            clone._postings[term] = copied
        return clone

    @classmethod
    def from_collection(
        cls, collection: DocumentCollection, analyzer: Analyzer | None = None
    ) -> "InvertedIndex":
        index = cls(analyzer)
        index.index_collection(collection)
        return index

    # -- statistics -------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_ids)

    @property
    def num_terms(self) -> int:
        """Vocabulary size (number of distinct indexed terms)."""
        return len(self._postings)

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    @property
    def average_document_length(self) -> float:
        if not self._doc_ids:
            return 0.0
        return self._total_tokens / len(self._doc_ids)

    def document_length(self, ordinal: int) -> int:
        return self._doc_lengths[ordinal]

    def doc_id(self, ordinal: int) -> str:
        return self._doc_ids[ordinal]

    def ordinal(self, doc_id: str) -> int:
        return self._ordinal_by_id[doc_id]

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def postings(self, term: str) -> PostingList | None:
        """Posting list for an *analysed* term, or ``None`` if absent."""
        return self._postings.get(term)

    def document_frequency(self, term: str) -> int:
        postings = self._postings.get(term)
        return postings.document_frequency if postings else 0

    def collection_frequency(self, term: str) -> int:
        postings = self._postings.get(term)
        return postings.collection_frequency if postings else 0

    def vocabulary(self) -> Iterable[str]:
        return self._postings.keys()

    @property
    def num_postings(self) -> int:
        """Total posting entries across all terms (Σ_t df_t)."""
        return sum(len(p) for p in self._postings.values())

    def memory_estimate(self) -> dict[str, int]:
        """Estimated resident bytes of this index, by component.

        Sums ``sys.getsizeof`` of the actual containers (dicts, lists,
        term strings) plus a flat per-element price for the boxed ints
        inside posting lists and length tables — an *estimate* of the
        CPython heap footprint, not an exact accounting (small interned
        ints are shared, dict load factors vary), but computed the same
        way for every partition, which is what the partition-parallel
        build's per-partition memory report needs.

        Returns ``{"postings_bytes", "vocabulary_bytes",
        "documents_bytes", "total_bytes"}``.
        """
        postings_bytes = 0
        vocabulary_bytes = sys.getsizeof(self._postings)
        for term, postings in self._postings.items():
            vocabulary_bytes += sys.getsizeof(term)
            n = len(postings.ordinals)
            postings_bytes += (
                sys.getsizeof(postings.ordinals)
                + sys.getsizeof(postings.tfs)
                + 2 * n * _INT_BYTES
                + 64  # PostingList object + its collection_frequency int
            )
        documents_bytes = (
            sys.getsizeof(self._doc_ids)
            + sys.getsizeof(self._doc_lengths)
            + sys.getsizeof(self._ordinal_by_id)
            + sum(sys.getsizeof(doc_id) for doc_id in self._doc_ids)
            + 2 * len(self._doc_ids) * _INT_BYTES
        )
        return {
            "postings_bytes": postings_bytes,
            "vocabulary_bytes": vocabulary_bytes,
            "documents_bytes": documents_bytes,
            "total_bytes": postings_bytes + vocabulary_bytes + documents_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InvertedIndex(docs={self.num_documents}, "
            f"terms={self.num_terms}, tokens={self._total_tokens})"
        )

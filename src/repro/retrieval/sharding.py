"""Index partitioning: hash-routed shards of the retrieval substrate.

The paper's feasibility argument (Section 4.1) holds per machine; growing
past one worker needs the storage layer split the way the partitioned
designs surveyed in PAPERS.md split theirs — deterministic placement and
results that merge back losslessly.  This module provides both halves:

* :func:`stable_shard` — the placement function.  A seeded blake2b hash
  of the key modulo the shard count, stable across processes and Python
  versions (unlike the built-in ``hash``, which is salted per process).
  The serving layer (:mod:`repro.serving.sharded`) routes *queries* with
  the same function this module uses for *documents*, so one router
  underlies both levels of sharding.
* :func:`partition_collection` — split a
  :class:`~repro.retrieval.documents.DocumentCollection` into N
  sub-collections by doc_id hash, preserving relative document order.
* :class:`PartitionedSearchEngine` — a document-partitioned
  :class:`~repro.retrieval.engine.SearchEngine`: N independent inverted
  indexes scored with *global* collection statistics and merged with the
  global tie-break, which makes its rankings **identical** (scores
  included) to a single engine over the whole collection.  That identity
  is what lets the index be partitioned underneath the diversification
  pipeline without changing a single served ranking; the test suite
  asserts it exactly.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import Counter

from repro.core.cache import LRUCache
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import DocumentCollection
from repro.retrieval.engine import ResultList, SearchEngine
from repro.retrieval.index import InvertedIndex
from repro.retrieval.models import DPH, WeightingModel
from repro.retrieval.snippets import SnippetExtractor

__all__ = [
    "stable_shard",
    "partition_collection",
    "PartitionedSearchEngine",
]


def stable_shard(key: str, num_shards: int, seed: int = 0) -> int:
    """Deterministic shard for *key*, uniform over ``range(num_shards)``.

    Process-stable (blake2b, not the salted built-in ``hash``), so the
    same key always lands on the same shard across restarts — the
    property both the partitioned index (placement of documents) and the
    sharded serving layer (routing of queries) rely on.

    >>> stable_shard("apple", 4) == stable_shard("apple", 4)
    True
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    digest = hashlib.blake2b(
        f"{seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % num_shards


def partition_collection(
    collection: DocumentCollection, num_shards: int, seed: int = 0
) -> list[DocumentCollection]:
    """Hash-partition *collection* into *num_shards* sub-collections.

    Every document lands in exactly one partition
    (``stable_shard(doc_id, num_shards, seed)``), and partitions preserve
    the collection's relative document order — which is what lets the
    partitioned engine reconstruct the single-index tie-break exactly.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    partitions: list[list] = [[] for _ in range(num_shards)]
    for document in collection:
        partitions[stable_shard(document.doc_id, num_shards, seed)].append(
            document
        )
    return [DocumentCollection(docs) for docs in partitions]


class PartitionedSearchEngine(SearchEngine):
    """A :class:`SearchEngine` whose inverted index is split into shards.

    Documents are hash-partitioned into ``num_partitions`` independent
    :class:`~repro.retrieval.index.InvertedIndex` instances (each
    buildable on its own worker), but scoring stays *collection-global*:
    per-term document/collection frequencies are summed across
    partitions, document count and average length are global, and the
    per-partition accumulators merge under the global ``(score desc,
    collection ordinal asc)`` tie-break.  Because DFR/BM25 contributions
    depend only on per-document counts plus those global statistics, the
    merged ranking — scores included — is identical to a single engine
    over the undivided collection.

    Snippet extraction and surrogate vectorisation are inherited
    unchanged: they read the full collection, which every shard of the
    serving layer can reach.
    """

    def __init__(
        self,
        collection: DocumentCollection,
        num_partitions: int = 2,
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        snippet_extractor=None,
        vector_cache_size: int = 0,
        seed: int = 0,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.seed = seed
        # Deliberately not calling super().__init__: it would build the
        # single global index this class exists to avoid holding.
        self.collection = collection
        self.analyzer = analyzer or Analyzer()
        self.model = model or DPH()
        self.partition_collections = partition_collection(
            collection, num_partitions, seed
        )
        self.partitions = [
            InvertedIndex.from_collection(part, self.analyzer)
            for part in self.partition_collections
        ]
        #: partition-local ordinal → collection-global ordinal, per shard.
        self._global_ordinals = [
            [collection.ordinal(index.doc_id(o)) for o in range(index.num_documents)]
            for index in self.partitions
        ]
        self._num_documents = sum(p.num_documents for p in self.partitions)
        total_tokens = sum(p.total_tokens for p in self.partitions)
        self._average_document_length = (
            total_tokens / self._num_documents if self._num_documents else 0.0
        )
        self.snippets = snippet_extractor or SnippetExtractor(
            analyzer=self.analyzer
        )
        self._vector_cache = (
            LRUCache(vector_cache_size) if vector_cache_size > 0 else None
        )
        # ``self.index`` intentionally left unset: there is no single
        # index, and anything reaching for one should fail loudly.

    def search(self, query: str, k: int = 1000) -> ResultList:
        """Scatter the query over every partition, gather the global top-k.

        Identical to :meth:`SearchEngine.search` on the undivided
        collection: same per-document float contributions (global df/cf/
        N/avgdl), same accumulation order per document (query-term
        order), same ``(score desc, ordinal asc)`` selection.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        terms = self.analyzer.analyze(query)
        if not terms:
            return ResultList(query, [])
        weights = Counter(terms)

        n_docs = self._num_documents
        avg_dl = self._average_document_length
        accumulators: dict[int, float] = {}
        for term, qtf in weights.items():
            per_partition = [p.postings(term) for p in self.partitions]
            df = sum(pl.document_frequency for pl in per_partition if pl)
            cf = sum(pl.collection_frequency for pl in per_partition if pl)
            if df == 0:
                continue
            for index, postings, to_global in zip(
                self.partitions, per_partition, self._global_ordinals
            ):
                if postings is None:
                    continue
                for ordinal, tf in zip(postings.ordinals, postings.tfs):
                    contribution = self.model.score(
                        tf,
                        index.document_length(ordinal),
                        df,
                        cf,
                        n_docs,
                        avg_dl,
                        key_frequency=float(qtf),
                    )
                    global_ordinal = to_global[ordinal]
                    if global_ordinal in accumulators:
                        accumulators[global_ordinal] += contribution
                    else:
                        accumulators[global_ordinal] = contribution

        top = heapq.nsmallest(
            k, accumulators.items(), key=lambda item: (-item[1], item[0])
        )
        by_ordinal = self.collection.by_ordinal
        return ResultList(
            query, [(by_ordinal(ordinal).doc_id, score) for ordinal, score in top]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "+".join(str(p.num_documents) for p in self.partitions)
        return (
            f"PartitionedSearchEngine(docs={self._num_documents} [{sizes}], "
            f"model={self.model.name})"
        )

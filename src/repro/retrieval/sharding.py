"""Index partitioning: hash-routed shards of the retrieval substrate.

The paper's feasibility argument (Section 4.1) holds per machine; growing
past one worker needs the storage layer split the way the partitioned
designs surveyed in PAPERS.md split theirs — deterministic placement and
results that merge back losslessly.  This module provides both halves:

* :func:`stable_shard` — the placement function.  A seeded blake2b hash
  of the key modulo the shard count, stable across processes and Python
  versions (unlike the built-in ``hash``, which is salted per process).
  The serving layer (:mod:`repro.serving.sharded`) routes *queries* with
  the same function this module uses for *documents*, so one router
  underlies both levels of sharding.
* :func:`partition_collection` — split a
  :class:`~repro.retrieval.documents.DocumentCollection` into N
  sub-collections by doc_id hash, preserving relative document order.
* :class:`PartitionedSearchEngine` — a document-partitioned
  :class:`~repro.retrieval.engine.SearchEngine`: N independent inverted
  indexes scored with *global* collection statistics and merged with the
  global tie-break, which makes its rankings **identical** (scores
  included) to a single engine over the whole collection.  That identity
  is what lets the index be partitioned underneath the diversification
  pipeline without changing a single served ranking; the test suite
  asserts it exactly.
* :class:`BuildReport` — the accounting record of building one index
  partition (documents, vocabulary, postings, build wall-clock and an
  estimated resident-memory footprint), with a ``merge()`` that rolls
  per-partition reports into a collection-level summary the same way
  :class:`~repro.serving.service.WarmReport` rolls up warm passes.  The
  partition-parallel offline pipeline
  (:func:`repro.serving.offline.build_partitioned_engine`) emits one per
  partition, wherever that partition was built.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import heapq
import threading
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.core.cache import LRUCache
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.engine import ResultList, SearchEngine
from repro.retrieval.index import InvertedIndex
from repro.retrieval.models import DPH, WeightingModel
from repro.retrieval.snippets import SnippetExtractor

__all__ = [
    "stable_shard",
    "partition_collection",
    "BuildReport",
    "EpochDelta",
    "EngineSnapshot",
    "MemoryBudget",
    "PartitionedSearchEngine",
]


class MemoryBudget:
    """An enforced resident-bytes limit for a partitioned engine.

    PR 5 made memory *observable* (``memory_estimate()``); this makes it
    *enforced*: attach a budget with
    :meth:`PartitionedSearchEngine.set_memory_budget` and, after every
    search, partitions are evicted least-recently-touched first until
    the summed partition-resident estimate fits under ``limit_bytes``.
    Eviction requires partitions that can page their data back in on
    demand (the store-backed partitions of
    :mod:`repro.retrieval.store`), so enforcement trades latency on the
    next touch for bounded residency — never changing a single result.

    The instance accumulates enforcement counters; they surface through
    the engine's page-cache stats path into ``ServiceStats.summary()``.
    """

    def __init__(self, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive")
        self.limit_bytes = int(limit_bytes)
        #: Times an enforcement pass found the engine over budget.
        self.enforcements = 0
        #: Whole partitions evicted across all enforcement passes.
        self.partitions_evicted = 0
        #: Estimated bytes released across all enforcement passes.
        self.bytes_evicted = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBudget(limit_bytes={self.limit_bytes}, "
            f"evicted={self.partitions_evicted})"
        )


def stable_shard(key: str, num_shards: int, seed: int = 0) -> int:
    """Deterministic shard for *key*, uniform over ``range(num_shards)``.

    Process-stable (blake2b, not the salted built-in ``hash``), so the
    same key always lands on the same shard across restarts — the
    property both the partitioned index (placement of documents) and the
    sharded serving layer (routing of queries) rely on.

    >>> stable_shard("apple", 4) == stable_shard("apple", 4)
    True
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    digest = hashlib.blake2b(
        f"{seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % num_shards


def partition_collection(
    collection: DocumentCollection, num_shards: int, seed: int = 0
) -> list[DocumentCollection]:
    """Hash-partition *collection* into *num_shards* sub-collections.

    Every document lands in exactly one partition
    (``stable_shard(doc_id, num_shards, seed)``), and partitions preserve
    the collection's relative document order — which is what lets the
    partitioned engine reconstruct the single-index tie-break exactly.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    partitions: list[list] = [[] for _ in range(num_shards)]
    for document in collection:
        partitions[stable_shard(document.doc_id, num_shards, seed)].append(
            document
        )
    return [DocumentCollection(docs) for docs in partitions]


@dataclasses.dataclass(frozen=True)
class BuildReport:
    """What building one index partition produced and what it costs to hold.

    ``seconds`` is the build wall-clock of this partition (of the whole
    scatter/gather, on a merged report — then ``busy_seconds`` keeps the
    summed per-partition build time, which can exceed the wall-clock
    when partitions build concurrently).  The byte fields are the
    *estimated* resident footprint of the partition's index
    (:meth:`~repro.retrieval.index.InvertedIndex.memory_estimate`);
    ``vector_count``/``vector_bytes`` account the snippet-vector warm
    artifacts once the offline pipeline's warm stage has run (zero at
    build time).  A zero-document partition — the degenerate
    ``num_partitions > len(collection)`` regime — contributes a
    well-formed all-zero report carrying its name, exactly like a
    zero-query shard in a merged :class:`ServiceStats`.
    """

    documents: int
    terms: int
    postings: int
    tokens: int
    seconds: float
    postings_bytes: int = 0
    vocabulary_bytes: int = 0
    documents_bytes: int = 0
    vector_count: int = 0
    vector_bytes: int = 0
    name: str = ""
    busy_seconds: float = 0.0
    shards: tuple["BuildReport", ...] = ()

    @property
    def total_bytes(self) -> int:
        """Estimated resident bytes: index components plus warm vectors."""
        return (
            self.postings_bytes
            + self.vocabulary_bytes
            + self.documents_bytes
            + self.vector_bytes
        )

    @classmethod
    def from_index(
        cls, index: InvertedIndex, seconds: float, name: str = ""
    ) -> "BuildReport":
        """Report for one freshly built partition index."""
        memory = index.memory_estimate()
        return cls(
            documents=index.num_documents,
            terms=index.num_terms,
            postings=index.num_postings,
            tokens=index.total_tokens,
            seconds=seconds,
            postings_bytes=memory["postings_bytes"],
            vocabulary_bytes=memory["vocabulary_bytes"],
            documents_bytes=memory["documents_bytes"],
            name=name,
        )

    @classmethod
    def merge(
        cls, reports: Iterable["BuildReport"], name: str = "total"
    ) -> "BuildReport":
        """Collection-level view of per-partition builds.

        Counters and byte estimates sum (partitions hold disjoint
        documents; overlapping vocabularies are priced per partition,
        which is what each one actually holds resident).  ``seconds``
        sums to total build-busy time and ``busy_seconds`` records the
        same sum explicitly — a caller that measured the scatter/gather
        wall-clock (the parallel build pipeline does) overwrites
        ``seconds`` with it, so both times stay readable.  The inputs
        are kept in ``shards`` for per-partition reporting; an empty
        input yields a valid zeroed report.
        """
        reports = list(reports)
        busy = sum(r.busy_seconds or r.seconds for r in reports)
        return cls(
            documents=sum(r.documents for r in reports),
            terms=sum(r.terms for r in reports),
            postings=sum(r.postings for r in reports),
            tokens=sum(r.tokens for r in reports),
            seconds=sum(r.seconds for r in reports),
            postings_bytes=sum(r.postings_bytes for r in reports),
            vocabulary_bytes=sum(r.vocabulary_bytes for r in reports),
            documents_bytes=sum(r.documents_bytes for r in reports),
            vector_count=sum(r.vector_count for r in reports),
            vector_bytes=sum(r.vector_bytes for r in reports),
            name=name,
            busy_seconds=busy,
            shards=tuple(reports),
        )

    def summary(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        text = (
            f"{label}documents={self.documents} terms={self.terms} "
            f"postings={self.postings} seconds={self.seconds:.3f}"
        )
        if self.busy_seconds and abs(self.busy_seconds - self.seconds) > 1e-9:
            text += f" busy={self.busy_seconds:.3f}"
        text += f" est_memory={self.total_bytes / 1e6:.2f}MB"
        if self.vector_count:
            text += f" vectors={self.vector_count}"
        return text


@dataclasses.dataclass(frozen=True)
class EpochDelta:
    """What changed between an epoch and its predecessor.

    Carried by the :class:`EngineSnapshot` the change produced, so every
    consumer of a publish (warm caches, result caches, stores) can
    decide *surgically* what it must invalidate instead of flushing
    wholesale:

    * ``added`` / ``removed`` — the doc_ids the epoch ingested/dropped
      (a re-ingested id appears in both);
    * ``terms`` — the union of analysed terms of every changed document,
      i.e. every term whose df/cf could differ from the previous epoch;
    * ``stats_changed`` — whether the collection-global scalars (N,
      total tokens, hence avg_dl) moved.  When they did, *every* cached
      score is stale — DFR/BM25 contributions read them — and consumers
      must invalidate everything.
    """

    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    terms: frozenset[str] = frozenset()
    stats_changed: bool = True

    @property
    def changed_ids(self) -> frozenset[str]:
        return frozenset(self.added) | frozenset(self.removed)


@dataclasses.dataclass(frozen=True)
class EngineSnapshot:
    """One immutable, epoch-versioned view of the partitioned index.

    Everything a query touches — partitions, the ordinal maps, the
    collection-global statistics, the document collection itself — lives
    here, so a query that pins a snapshot at entry sees exactly one
    epoch no matter how many publishes happen while it runs.  Publishing
    the next epoch is a single reference assignment on the engine; the
    previous snapshot keeps serving every query already pinned to it.

    ``delta`` describes the change that produced this snapshot (empty
    for epoch 0 / a fresh build), which is what the serving layer's
    per-affected-specialization warm invalidation reads.
    """

    epoch: int
    collection: DocumentCollection
    partition_collections: tuple[DocumentCollection, ...]
    partitions: tuple[InvertedIndex, ...]
    global_ordinals: tuple[tuple[int, ...], ...]
    num_documents: int
    total_tokens: int
    average_document_length: float
    delta: EpochDelta = EpochDelta((), (), frozenset(), False)


class PartitionedSearchEngine(SearchEngine):
    """A :class:`SearchEngine` whose inverted index is split into shards.

    Documents are hash-partitioned into ``num_partitions`` independent
    :class:`~repro.retrieval.index.InvertedIndex` instances (each
    buildable on its own worker), but scoring stays *collection-global*:
    per-term document/collection frequencies are summed across
    partitions, document count and average length are global, and the
    per-partition accumulators merge under the global ``(score desc,
    collection ordinal asc)`` tie-break.  Because DFR/BM25 contributions
    depend only on per-document counts plus those global statistics, the
    merged ranking — scores included — is identical to a single engine
    over the undivided collection.

    Snippet extraction and surrogate vectorisation are inherited
    unchanged: they read the full collection, which every shard of the
    serving layer can reach.

    ``partition_indexes`` (keyword-only, together with
    ``partition_collections``) injects *pre-built* partition indexes —
    the partition-parallel offline pipeline
    (:func:`repro.serving.offline.build_partitioned_engine`) builds them
    on an execution backend and assembles the engine here.  The injected
    indexes are validated document-for-document against their partition
    collections, so an assembled engine is exactly the engine the serial
    constructor would have built.
    """

    def __init__(
        self,
        collection: DocumentCollection,
        num_partitions: int = 2,
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        snippet_extractor=None,
        vector_cache_size: int = 0,
        seed: int = 0,
        *,
        partition_collections: Sequence[DocumentCollection] | None = None,
        partition_indexes: Sequence[InvertedIndex] | None = None,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self.seed = seed
        # Deliberately not calling super().__init__: it would build the
        # single global index this class exists to avoid holding.
        self.analyzer = analyzer or Analyzer()
        self.model = model or DPH()
        if partition_collections is None:
            partition_collections = partition_collection(
                collection, num_partitions, seed
            )
        else:
            partition_collections = list(partition_collections)
            if len(partition_collections) != num_partitions:
                raise ValueError(
                    f"expected {num_partitions} partition collections, "
                    f"got {len(partition_collections)}"
                )
            # Global statistics are summed from the partitions, so an
            # injection that does not cover the collection exactly once
            # (stale snapshot, subset, duplicate placement) would serve
            # silently wrong scores — refuse it here instead.
            covered = [
                document.doc_id
                for part in partition_collections
                for document in part
            ]
            if len(covered) != len(collection) or set(covered) != set(
                collection.doc_ids
            ):
                raise ValueError(
                    "partition collections do not cover the collection "
                    "exactly once (missing, extra or duplicated documents)"
                )
        if partition_indexes is None:
            partition_indexes = [
                InvertedIndex.from_collection(part, self.analyzer)
                for part in partition_collections
            ]
        else:
            partition_indexes = list(partition_indexes)
            if len(partition_indexes) != num_partitions:
                raise ValueError(
                    f"expected {num_partitions} partition indexes, "
                    f"got {len(partition_indexes)}"
                )
            for shard, (part, index) in enumerate(
                zip(partition_collections, partition_indexes)
            ):
                if [
                    index.doc_id(o) for o in range(index.num_documents)
                ] != part.doc_ids:
                    raise ValueError(
                        f"partition index {shard} does not match its "
                        "partition collection (documents or their order "
                        "differ)"
                    )
        self.snippets = snippet_extractor or SnippetExtractor(
            analyzer=self.analyzer
        )
        self._vector_cache = (
            LRUCache(vector_cache_size) if vector_cache_size > 0 else None
        )
        self.memory_budget: MemoryBudget | None = None
        self._partition_clock = 0
        self._partition_touched = [0] * num_partitions
        self._pin = threading.local()
        self._epoch_lock = threading.RLock()
        self._snapshot = self._assemble_snapshot(
            0, collection, partition_collections, partition_indexes
        )
        # ``self.index`` intentionally left unset: there is no single
        # index, and anything reaching for one should fail loudly.

    @staticmethod
    def _assemble_snapshot(
        epoch: int,
        collection: DocumentCollection,
        partition_collections: Sequence[DocumentCollection],
        partition_indexes: Sequence[InvertedIndex],
        delta: EpochDelta | None = None,
    ) -> EngineSnapshot:
        """Freeze one epoch's views plus its collection-global statistics."""
        num_documents = sum(p.num_documents for p in partition_indexes)
        total_tokens = sum(p.total_tokens for p in partition_indexes)
        return EngineSnapshot(
            epoch=epoch,
            collection=collection,
            partition_collections=tuple(partition_collections),
            partitions=tuple(partition_indexes),
            global_ordinals=tuple(
                tuple(
                    collection.ordinal(index.doc_id(o))
                    for o in range(index.num_documents)
                )
                for index in partition_indexes
            ),
            num_documents=num_documents,
            total_tokens=total_tokens,
            average_document_length=(
                total_tokens / num_documents if num_documents else 0.0
            ),
            delta=delta or EpochDelta((), (), frozenset(), False),
        )

    # -- epoch-versioned snapshots ------------------------------------------------

    def snapshot(self) -> EngineSnapshot:
        """The currently published :class:`EngineSnapshot`."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        """Epoch id of the currently published snapshot."""
        return self._snapshot.epoch

    def _pinned_snapshot(self) -> EngineSnapshot:
        return getattr(self._pin, "snapshot", None) or self._snapshot

    @contextlib.contextmanager
    def pinned(self, snapshot: EngineSnapshot | None = None):
        """Pin every read on this thread to one snapshot.

        The framework wraps each query (and each warm pass) in this, so
        a query whose pipeline touches the engine several times —
        candidate retrieval, specialization fetches, snippet
        vectorisation — sees exactly one epoch even when a publish lands
        halfway through.  Re-entrant: an inner pin restores the outer
        one on exit.
        """
        # An inner unnamed pin inherits the outer one (not the published
        # snapshot!) — a publish landing between the two must stay
        # invisible for the rest of the outer pin's scope.
        pinned = snapshot or self._pinned_snapshot()
        previous = getattr(self._pin, "snapshot", None)
        self._pin.snapshot = pinned
        try:
            yield pinned
        finally:
            self._pin.snapshot = previous

    @property
    def collection(self) -> DocumentCollection:
        return self._pinned_snapshot().collection

    @property
    def partitions(self) -> tuple[InvertedIndex, ...]:
        return self._pinned_snapshot().partitions

    @property
    def partition_collections(self) -> tuple[DocumentCollection, ...]:
        return self._pinned_snapshot().partition_collections

    @property
    def _global_ordinals(self) -> tuple[tuple[int, ...], ...]:
        return self._pinned_snapshot().global_ordinals

    @property
    def _num_documents(self) -> int:
        return self._pinned_snapshot().num_documents

    @property
    def _average_document_length(self) -> float:
        return self._pinned_snapshot().average_document_length

    # -- live ingest ---------------------------------------------------------------

    def prepare_epoch(
        self,
        add_documents: Sequence[Document] = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> EngineSnapshot:
        """Build — off to the side — the snapshot the next epoch publishes.

        Pure with respect to the published snapshot: only the partitions
        actually touched by the batch are copied and mutated
        (:meth:`~repro.retrieval.index.InvertedIndex.remove_document` /
        :meth:`~repro.retrieval.index.InvertedIndex.index_document`);
        untouched partitions are shared structurally with the current
        epoch.  The resulting snapshot is *identical* — ordinals, global
        statistics, scores — to a from-scratch build over the final
        collection (survivors in their original order, added documents
        appended in batch order), which is the identity gate every
        ingest test asserts.  Runs on any thread; serving is undisturbed
        until :meth:`publish`.
        """
        with self._epoch_lock:
            return self._prepare_epoch_locked(add_documents, remove_doc_ids)

    def _prepare_epoch_locked(
        self,
        add_documents: Sequence[Document],
        remove_doc_ids: Sequence[str],
    ) -> EngineSnapshot:
        current = self._snapshot
        adds = list(add_documents)
        removes = list(remove_doc_ids)
        if not adds and not removes:
            raise ValueError("an epoch must change the collection")
        removed: set[str] = set()
        for doc_id in removes:
            if doc_id in removed:
                raise ValueError(f"duplicate removal: {doc_id!r}")
            if doc_id not in current.collection:
                raise ValueError(f"cannot remove unknown doc_id: {doc_id!r}")
            removed.add(doc_id)
        fresh: set[str] = set()
        for document in adds:
            if document.doc_id in fresh:
                raise ValueError(f"duplicate doc_id in batch: {document.doc_id!r}")
            if document.doc_id in current.collection and (
                document.doc_id not in removed
            ):
                raise ValueError(f"duplicate doc_id: {document.doc_id!r}")
            fresh.add(document.doc_id)

        changed_terms: set[str] = set()
        for doc_id in removes:
            changed_terms.update(
                self.analyzer.analyze(current.collection[doc_id].full_text)
            )
        for document in adds:
            changed_terms.update(self.analyzer.analyze(document.full_text))

        adds_by_shard: dict[int, list[Document]] = {}
        for document in adds:
            shard = stable_shard(document.doc_id, self.num_partitions, self.seed)
            adds_by_shard.setdefault(shard, []).append(document)
        removes_by_shard: dict[int, list[str]] = {}
        for doc_id in removes:
            shard = stable_shard(doc_id, self.num_partitions, self.seed)
            removes_by_shard.setdefault(shard, []).append(doc_id)

        collection = DocumentCollection(
            [d for d in current.collection if d.doc_id not in removed] + adds
        )
        partitions = list(current.partitions)
        parts = list(current.partition_collections)
        for shard in sorted(set(adds_by_shard) | set(removes_by_shard)):
            index = partitions[shard].copy()
            for doc_id in removes_by_shard.get(shard, ()):
                index.remove_document(doc_id)
            for document in adds_by_shard.get(shard, ()):
                index.index_document(document)
            partitions[shard] = index
            parts[shard] = DocumentCollection(
                [d for d in parts[shard] if d.doc_id not in removed]
                + adds_by_shard.get(shard, [])
            )
        prepared = self._assemble_snapshot(
            current.epoch + 1, collection, parts, partitions
        )
        stats_changed = (
            prepared.num_documents != current.num_documents
            or prepared.total_tokens != current.total_tokens
        )
        return dataclasses.replace(
            prepared,
            delta=EpochDelta(
                added=tuple(d.doc_id for d in adds),
                removed=tuple(removes),
                terms=frozenset(changed_terms),
                stats_changed=stats_changed,
            ),
        )

    def publish(self, prepared: EngineSnapshot) -> int:
        """Atomically publish *prepared* as the current epoch.

        One reference assignment under the epoch lock: queries pinned to
        the previous snapshot finish on it untouched, queries arriving
        after this line see the new epoch in full — there is no state in
        between.  Refuses a stale preparation (another publish won the
        race).  Snippet-vector cache entries of changed documents are
        dropped here, since their content may differ under the new
        epoch.  Returns the published epoch id.
        """
        with self._epoch_lock:
            if prepared.epoch != self._snapshot.epoch + 1:
                raise ValueError(
                    f"stale epoch preparation: prepared epoch "
                    f"{prepared.epoch} cannot follow published epoch "
                    f"{self._snapshot.epoch}"
                )
            self._snapshot = prepared
        cache = self._vector_cache
        if cache is not None and prepared.delta.changed_ids:
            changed = prepared.delta.changed_ids
            for key in cache:
                if key[1] in changed:
                    cache.delete(key)
        return prepared.epoch

    def apply_updates(
        self,
        add_documents: Sequence[Document] = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> EngineSnapshot:
        """Prepare and publish the next epoch in one call.

        The convenience path for callers without a separate background
        preparer; serialised against concurrent updates by the epoch
        lock.  Returns the published snapshot (its ``delta`` drives the
        serving layer's surgical warm invalidation).
        """
        with self._epoch_lock:
            prepared = self._prepare_epoch_locked(
                add_documents, remove_doc_ids
            )
            self.publish(prepared)
        return prepared

    def search(self, query: str, k: int = 1000) -> ResultList:
        """Scatter the query over every partition, gather the global top-k.

        Identical to :meth:`SearchEngine.search` on the undivided
        collection: same per-document float contributions (global df/cf/
        N/avgdl), same accumulation order per document (query-term
        order), same ``(score desc, ordinal asc)`` selection.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        terms = self.analyzer.analyze(query)
        if not terms:
            return ResultList(query, [])
        weights = Counter(terms)

        # One snapshot read for the whole scatter/gather: a publish that
        # lands mid-query cannot hand this call a half-new epoch.
        snapshot = self._pinned_snapshot()
        n_docs = snapshot.num_documents
        avg_dl = snapshot.average_document_length
        budget = self.memory_budget
        touched: set[int] = set()
        accumulators: dict[int, float] = {}
        for term, qtf in weights.items():
            per_partition = [p.postings(term) for p in snapshot.partitions]
            df = sum(pl.document_frequency for pl in per_partition if pl)
            cf = sum(pl.collection_frequency for pl in per_partition if pl)
            if df == 0:
                continue
            for shard, (index, postings, to_global) in enumerate(
                zip(snapshot.partitions, per_partition, snapshot.global_ordinals)
            ):
                if postings is None:
                    continue
                if budget is not None:
                    touched.add(shard)
                for ordinal, tf in zip(postings.ordinals, postings.tfs):
                    contribution = self.model.score(
                        tf,
                        index.document_length(ordinal),
                        df,
                        cf,
                        n_docs,
                        avg_dl,
                        key_frequency=float(qtf),
                    )
                    global_ordinal = to_global[ordinal]
                    if global_ordinal in accumulators:
                        accumulators[global_ordinal] += contribution
                    else:
                        accumulators[global_ordinal] = contribution

        top = heapq.nsmallest(
            k, accumulators.items(), key=lambda item: (-item[1], item[0])
        )
        by_ordinal = snapshot.collection.by_ordinal
        results = ResultList(
            query, [(by_ordinal(ordinal).doc_id, score) for ordinal, score in top]
        )
        if budget is not None:
            self._partition_clock += 1
            for shard in touched:
                self._partition_touched[shard] = self._partition_clock
            self._enforce_memory_budget()
        return results

    def set_memory_budget(
        self, budget: "MemoryBudget | int | None"
    ) -> "MemoryBudget | None":
        """Attach (or detach, with ``None``) an enforced memory budget.

        Enforcement evicts whole partitions, so every partition must be
        able to page its data back in: each needs callable ``evict()``
        and ``resident_bytes()`` (the store-backed partitions of
        :mod:`repro.retrieval.store` have both; the plain in-memory
        :class:`~repro.retrieval.index.InvertedIndex` deliberately does
        not — evicting it would lose the only copy).  Accepts a byte
        limit or a :class:`MemoryBudget`; returns the attached budget.
        """
        if budget is None:
            self.memory_budget = None
            return None
        if isinstance(budget, int):
            budget = MemoryBudget(budget)
        for shard, partition in enumerate(self.partitions):
            if not callable(getattr(partition, "evict", None)) or not callable(
                getattr(partition, "resident_bytes", None)
            ):
                raise ValueError(
                    f"partition {shard} ({type(partition).__name__}) is not "
                    "evictable: a memory budget needs store-backed "
                    "partitions that can page their postings back in "
                    "(build the engine from an IndexStore)"
                )
        self.memory_budget = budget
        return budget

    def _enforce_memory_budget(self) -> None:
        """Evict least-recently-touched partitions until under budget."""
        budget = self.memory_budget
        if budget is None:
            return
        resident = [p.resident_bytes() for p in self.partitions]
        total = sum(resident)
        if total <= budget.limit_bytes:
            return
        budget.enforcements += 1
        order = sorted(
            range(len(self.partitions)),
            key=lambda shard: self._partition_touched[shard],
        )
        for shard in order:
            if total <= budget.limit_bytes:
                break
            freed = self.partitions[shard].evict()
            if freed:
                budget.partitions_evicted += 1
                budget.bytes_evicted += freed
                total -= freed

    def memory_estimate(self) -> dict[str, int]:
        """Estimated resident bytes summed across the partition indexes.

        Component-wise sums of each partition's
        :meth:`~repro.retrieval.index.InvertedIndex.memory_estimate` —
        terms indexed in several partitions are priced once per
        partition, because each partition really holds its own posting
        lists and vocabulary entry for them.
        """
        totals = {
            "postings_bytes": 0,
            "vocabulary_bytes": 0,
            "documents_bytes": 0,
            "total_bytes": 0,
        }
        for partition in self.partitions:
            for key, value in partition.memory_estimate().items():
                totals[key] += value
        return totals

    def build_reports(self) -> list[BuildReport]:
        """Per-partition :class:`BuildReport` snapshots of the held indexes.

        Build *seconds* are zero — this probes an already-built engine;
        the parallel build pipeline times each partition where it builds
        and reports through the same type.
        """
        return [
            BuildReport.from_index(index, 0.0, name=f"partition{shard}")
            for shard, index in enumerate(self.partitions)
        ]

    def __getstate__(self) -> dict:
        # The pin is thread-local and the epoch lock process-local;
        # everything else (including the published snapshot) travels.
        state = self.__dict__.copy()
        state.pop("_pin", None)
        state.pop("_epoch_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pin = threading.local()
        self._epoch_lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "+".join(str(p.num_documents) for p in self.partitions)
        return (
            f"PartitionedSearchEngine(docs={self._num_documents} [{sizes}], "
            f"model={self.model.name})"
        )

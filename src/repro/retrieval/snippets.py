"""Query-biased snippet (document surrogate) extraction.

Section 5 of the paper: "We extended Terrier in order to obtain short
summaries of retrieved documents, which are used as document surrogates in
our diversification algorithm" and Section 4.1: "only short summaries, and
not whole documents, can be used without significative loss in the
precision of our method".

:class:`SnippetExtractor` implements the classic query-biased summarisation
scheme: split the document into sentences (or fixed-size windows when no
sentence boundaries exist), score each window by query-term coverage,
density and position, and return the best windows concatenated, truncated
to a byte budget.  The byte budget is the ``L`` of the paper's Section 4.1
memory footprint estimate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.retrieval.analysis import Analyzer

__all__ = ["Snippet", "SnippetExtractor"]

_SENTENCE_RE = re.compile(r"[^.!?\n]+[.!?\n]?")


@dataclass(frozen=True)
class Snippet:
    """A document surrogate: short text plus its source document id."""

    doc_id: str
    text: str

    def __len__(self) -> int:
        return len(self.text)


class SnippetExtractor:
    """Produce short query-biased summaries of documents.

    Parameters
    ----------
    max_chars:
        Byte/character budget ``L`` for the surrogate (paper §4.1 uses the
        average surrogate length in its footprint estimate).
    window_terms:
        When a document has no sentence punctuation (common in synthetic
        corpora and stripped web text), fall back to windows of this many
        whitespace tokens.
    analyzer:
        Used to match query terms against window terms in stemmed space.
    """

    def __init__(
        self,
        max_chars: int = 240,
        window_terms: int = 24,
        analyzer: Analyzer | None = None,
    ) -> None:
        if max_chars <= 0:
            raise ValueError("max_chars must be positive")
        if window_terms <= 0:
            raise ValueError("window_terms must be positive")
        self.max_chars = max_chars
        self.window_terms = window_terms
        self.analyzer = analyzer or Analyzer()

    # -- public API -------------------------------------------------------------

    def extract(self, query: str, doc_id: str, text: str, title: str = "") -> Snippet:
        """Return the query-biased surrogate of a document.

        The title, when present, is always included first (titles are the
        strongest surrogate signal); remaining budget is filled with the
        highest scoring text windows in document order.
        """
        query_terms = set(self.analyzer.analyze(query))
        windows = self._windows(text)
        scored = [
            (self._score(window, query_terms, position), position, window)
            for position, window in enumerate(windows)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))

        pieces: list[str] = []
        budget = self.max_chars
        if title:
            title = title.strip()[: self.max_chars]
            pieces.append(title)
            budget -= len(title)
        chosen: list[tuple[int, str]] = []
        for score, position, window in scored:
            if budget <= 0:
                break
            window = window.strip()
            if not window:
                continue
            take = window[: max(budget, 0)]
            chosen.append((position, take))
            budget -= len(take) + 1
        # Re-assemble selected windows in their original document order so
        # the surrogate reads like the document, as extractive summarisers do.
        chosen.sort(key=lambda item: item[0])
        pieces.extend(text for _, text in chosen)
        return Snippet(doc_id=doc_id, text=" ".join(pieces)[: self.max_chars])

    # -- internals ------------------------------------------------------------

    def _windows(self, text: str) -> list[str]:
        sentences = [s.strip() for s in _SENTENCE_RE.findall(text) if s.strip()]
        if len(sentences) > 1:
            return sentences
        tokens = text.split()
        if not tokens:
            return []
        return [
            " ".join(tokens[i : i + self.window_terms])
            for i in range(0, len(tokens), self.window_terms)
        ]

    def _score(self, window: str, query_terms: set[str], position: int) -> float:
        terms = self.analyzer.analyze(window)
        if not terms:
            return 0.0
        matches = sum(1 for t in terms if t in query_terms)
        coverage = len(query_terms & set(terms))
        density = matches / len(terms)
        # Earlier windows win ties: web pages front-load their topic.
        position_bonus = 1.0 / (1.0 + position)
        return 2.0 * coverage + density + 0.1 * position_bonus

"""Document similarity: sparse term vectors, cosine, and the paper's δ.

Equation (2) of the paper defines the document distance used by the
utility measure::

    δ(d1, d2) = 1 − cosine(d1, d2)

with δ non-negative and symmetric (Section 3.1).  The paper computes the
similarity over *snippets* ("we applied the utility function in (1) to the
snippets returned by the Terrier search engine instead of applying it to
the whole documents", Section 5) — so vectors here are cheap to build from
short texts.

:class:`TermVector` is an L2-normalised sparse bag-of-terms vector; cosine
between two normalised vectors reduces to a sparse dot product.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping

from repro.retrieval.analysis import Analyzer

__all__ = ["TermVector", "cosine", "delta"]


class TermVector:
    """An L2-normalised sparse term-weight vector.

    The constructor accepts raw (term → weight) mappings; weights are
    normalised so that ``||v|| == 1`` unless the vector is empty.

    >>> v = TermVector({"apple": 2.0, "fruit": 1.0})
    >>> round(v.norm, 6)
    1.0
    """

    __slots__ = ("weights", "norm")

    def __init__(self, weights: Mapping[str, float]) -> None:
        norm = math.sqrt(sum(w * w for w in weights.values()))
        if norm > 0:
            self.weights = {t: w / norm for t, w in weights.items() if w != 0}
            self.norm = 1.0
        else:
            self.weights = {}
            self.norm = 0.0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_terms(cls, terms: Iterable[str]) -> "TermVector":
        """Build a term-frequency vector from pre-analysed terms."""
        return cls(Counter(terms))

    @classmethod
    def from_text(cls, text: str, analyzer: Analyzer | None = None) -> "TermVector":
        """Analyse *text* and build its term-frequency vector."""
        analyzer = analyzer or Analyzer()
        return cls.from_terms(analyzer.analyze(text))

    @classmethod
    def from_normalized(cls, weights: Mapping[str, float]) -> "TermVector":
        """Rebuild a vector whose weights are already unit-normalised.

        Re-running the constructor on a saved vector would divide by a
        norm that is only *approximately* 1.0, perturbing the weights in
        the last bits — enough to flip floating-point ties downstream.
        Persistence (``repro.retrieval.persistence``) therefore restores
        vectors through here, byte-identical to what was saved.
        """
        vector = cls.__new__(cls)
        vector.weights = {t: w for t, w in weights.items() if w != 0}
        vector.norm = 1.0 if vector.weights else 0.0
        return vector

    @classmethod
    def from_text_idf(
        cls,
        text: str,
        idf: Mapping[str, float],
        analyzer: Analyzer | None = None,
        default_idf: float = 0.0,
    ) -> "TermVector":
        """Build a TF·IDF weighted vector using the supplied IDF table."""
        analyzer = analyzer or Analyzer()
        counts = Counter(analyzer.analyze(text))
        return cls(
            {t: tf * idf.get(t, default_idf) for t, tf in counts.items()}
        )

    # -- operations -------------------------------------------------------------

    def dot(self, other: "TermVector") -> float:
        """Sparse dot product; iterates over the smaller vector."""
        a, b = self.weights, other.weights
        if len(b) < len(a):
            a, b = b, a
        return sum(w * b[t] for t, w in a.items() if t in b)

    def __len__(self) -> int:
        return len(self.weights)

    def __bool__(self) -> bool:
        return bool(self.weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TermVector(terms={len(self.weights)})"


def cosine(v1: TermVector, v2: TermVector) -> float:
    """Cosine similarity in ``[0, 1]`` (vectors are non-negative).

    Empty vectors have similarity 0 with everything, including themselves —
    an empty snippet carries no evidence of similarity.
    """
    if not v1 or not v2:
        return 0.0
    # Vectors are already unit length; clamp for floating point safety.
    return min(1.0, max(0.0, v1.dot(v2)))


def delta(v1: TermVector, v2: TermVector) -> float:
    """The paper's document distance δ = 1 − cosine (Equation 2)."""
    return 1.0 - cosine(v1, v2)

"""Query-log data model.

Section 3.1 of the paper: "We assume that a query log Q is composed by a
set of records ⟨qi, ui, ti, Vi, Ci⟩ storing, for each submitted query qi:
(i) the anonymized user ui; (ii) the timestamp ti at which ui issued qi;
(iii) the set Vi of URLs of documents returned as top-k results of the
query, and, (iv), the set Ci of URLs corresponding to results clicked by
ui."

:class:`QueryRecord` is exactly that record; :class:`QueryLog` is an
ordered multiset of records with the access paths the rest of the library
needs: per-user chronological streams, the query-popularity function
``f(q)`` of Algorithm 1, and the chronological train/test split used by
the Figure 1 / Appendix C experiments (70% / 30%).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = ["QueryRecord", "QueryLog"]


@dataclass(frozen=True, order=True)
class QueryRecord:
    """One interaction: user ``user_id`` issued ``query`` at ``timestamp``.

    ``results`` (the paper's ``Vi``) and ``clicks`` (``Ci``) hold document
    identifiers; ``clicks`` should be a subset of ``results`` in real logs,
    but this is not enforced because public logs (e.g. AOL) violate it.

    Ordering is by ``(timestamp, user_id, query)`` so sorting a list of
    records yields a stable chronological stream.
    """

    timestamp: float
    user_id: str
    query: str
    results: tuple[str, ...] = field(default=(), compare=False)
    clicks: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if not self.query:
            raise ValueError("QueryRecord requires a non-empty query")
        if not self.user_id:
            raise ValueError("QueryRecord requires a non-empty user_id")

    @property
    def clicked(self) -> bool:
        """True when the user clicked at least one result."""
        return bool(self.clicks)


class QueryLog:
    """A chronologically sorted query log with per-user access.

    >>> log = QueryLog([
    ...     QueryRecord(10.0, "u1", "apple"),
    ...     QueryRecord(20.0, "u1", "apple iphone", clicks=("d1",)),
    ... ])
    >>> log.frequency("apple"), log.num_users
    (1, 1)
    """

    def __init__(self, records: Iterable[QueryRecord] = (), name: str = "") -> None:
        self.name = name
        self._records: list[QueryRecord] = sorted(records)
        self._frequencies: Counter[str] = Counter(r.query for r in self._records)
        self._by_user: dict[str, list[QueryRecord]] = {}
        for record in self._records:
            self._by_user.setdefault(record.user_id, []).append(record)

    # -- container protocol -----------------------------------------------------

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, i: int) -> QueryRecord:
        return self._records[i]

    # -- statistics ----------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return len(self._by_user)

    @property
    def distinct_queries(self) -> int:
        return len(self._frequencies)

    def frequency(self, query: str) -> int:
        """The popularity function ``f(q)`` of Algorithm 1."""
        return self._frequencies.get(query, 0)

    def frequencies(self) -> Counter[str]:
        """A copy of the full query-frequency table."""
        return Counter(self._frequencies)

    @property
    def time_span(self) -> tuple[float, float]:
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].timestamp, self._records[-1].timestamp)

    # -- access paths ---------------------------------------------------------------

    @property
    def users(self) -> list[str]:
        return sorted(self._by_user)

    def user_stream(self, user_id: str) -> list[QueryRecord]:
        """Chronological records of one user (empty if unknown)."""
        return list(self._by_user.get(user_id, ()))

    def contains_query(self, query: str) -> bool:
        return query in self._frequencies

    # -- manipulation ---------------------------------------------------------------

    def split(self, train_fraction: float = 0.7) -> tuple["QueryLog", "QueryLog"]:
        """Chronological train/test split (Appendix C uses 70/30).

        The split is by position in the time-sorted stream, matching the
        paper's "first ~70% of the queries used for training".
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must lie strictly between 0 and 1")
        cut = int(len(self._records) * train_fraction)
        return (
            QueryLog(self._records[:cut], name=f"{self.name}-train"),
            QueryLog(self._records[cut:], name=f"{self.name}-test"),
        )

    def merged_with(self, other: "QueryLog") -> "QueryLog":
        return QueryLog(
            list(self._records) + list(other._records),
            name=self.name or other.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryLog(name={self.name!r}, records={len(self)}, "
            f"users={self.num_users}, distinct={self.distinct_queries})"
        )

"""Query-Flow Graph: Markov model of the query log and logical sessions.

Section 3 of the paper adopts "a state-of-the-art technique based on
Query-Flow Graph [Boldi et al.].  It consists of building a Markov Chain
model of the query log and subsequently finding paths in the graph which
are more likely to be followed by random surfers.  As a result, by
processing a query log Q we obtain the set of logical user sessions".

This module implements that substrate:

* :class:`QueryFlowGraph` — nodes are distinct queries; a directed edge
  (q, q') aggregates every occurrence of q' immediately following q inside
  a (time-gap) session, carrying transition counts, mean time gap and
  term-overlap features;
* a *chaining probability* per edge — the probability that q and q' belong
  to the same search mission.  Boldi et al. learn this with a classifier
  over textual/temporal/session features; we use a fixed, documented
  feature combination with the same inputs (see :meth:`chain_probability`),
  which is deterministic and dependency-free;
* :func:`QueryFlowGraph.logical_sessions` — re-segment time-gap sessions
  by cutting edges whose chaining probability falls below a threshold,
  yielding the logical sessions consumed by the recommender and miner;
* :meth:`QueryFlowGraph.random_walk` — the random-surfer process over the
  Markov chain (used to inspect likely reformulation paths).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.querylog.sessions import Session
from repro.retrieval.analysis import tokenize

__all__ = ["EdgeFeatures", "QueryFlowGraph", "is_specialization"]


def is_specialization(query: str, candidate: str) -> bool:
    """True when *candidate* states the need of *query* more precisely.

    Following Boldi et al.'s reformulation taxonomy, a specialization
    either extends the term set of the original query (``leopard`` →
    ``leopard tank``) or textually extends the query string.

    >>> is_specialization("leopard", "leopard tank")
    True
    >>> is_specialization("leopard tank", "leopard")
    False
    """
    if query == candidate:
        return False
    q_terms = set(tokenize(query))
    c_terms = set(tokenize(candidate))
    if not q_terms or not c_terms:
        return False
    if q_terms < c_terms:
        return True
    return candidate.startswith(query + " ")


@dataclass
class EdgeFeatures:
    """Aggregated features of one (q, q') transition."""

    count: int = 0
    total_gap: float = 0.0
    jaccard: float = 0.0
    specialization: bool = False

    @property
    def mean_gap(self) -> float:
        return self.total_gap / self.count if self.count else 0.0


class QueryFlowGraph:
    """The Markov-chain model of a query log.

    Build it from time-gap sessions with :meth:`build`; then use
    :meth:`logical_sessions` to obtain the paper's logical user sessions.

    Parameters for :meth:`chain_probability` weighting are exposed on the
    instance so experiments can ablate them.
    """

    #: Feature weights for the chaining probability: term similarity,
    #: co-occurrence evidence, temporal proximity.  They sum to 1 so the
    #: score is a convex combination in [0, 1].
    W_SIMILARITY = 0.5
    W_EVIDENCE = 0.3
    W_TIME = 0.2
    #: Time scale (seconds) of the temporal-proximity decay.
    TIME_SCALE = 300.0

    def __init__(self) -> None:
        self._edges: dict[str, dict[str, EdgeFeatures]] = {}
        self._out_counts: dict[str, int] = {}
        self._node_counts: dict[str, int] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, sessions: Iterable[Session]) -> "QueryFlowGraph":
        """Aggregate every consecutive in-session pair into the graph."""
        graph = cls()
        for session in sessions:
            for record in session:
                graph._node_counts[record.query] = (
                    graph._node_counts.get(record.query, 0) + 1
                )
            for first, second in session.pairs():
                graph._add_transition(
                    first.query, second.query, second.timestamp - first.timestamp
                )
        return graph

    def _add_transition(self, query: str, next_query: str, gap: float) -> None:
        if query == next_query:
            return
        per_source = self._edges.setdefault(query, {})
        features = per_source.get(next_query)
        if features is None:
            q_terms = set(tokenize(query))
            c_terms = set(tokenize(next_query))
            union = q_terms | c_terms
            jaccard = len(q_terms & c_terms) / len(union) if union else 0.0
            features = per_source[next_query] = EdgeFeatures(
                jaccard=jaccard,
                specialization=is_specialization(query, next_query),
            )
        features.count += 1
        features.total_gap += max(gap, 0.0)
        self._out_counts[query] = self._out_counts.get(query, 0) + 1

    # -- graph accessors -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        nodes = set(self._node_counts)
        for per_source in self._edges.values():
            nodes.update(per_source)
        return len(nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(per_source) for per_source in self._edges.values())

    def successors(self, query: str) -> list[str]:
        return sorted(self._edges.get(query, ()))

    def edge(self, query: str, next_query: str) -> EdgeFeatures | None:
        return self._edges.get(query, {}).get(next_query)

    def query_count(self, query: str) -> int:
        """How many times *query* occurred in the sessions used to build."""
        return self._node_counts.get(query, 0)

    def transition_probability(self, query: str, next_query: str) -> float:
        """Markov transition probability P(q'|q) by maximum likelihood."""
        features = self.edge(query, next_query)
        if features is None:
            return 0.0
        return features.count / self._out_counts[query]

    def specialization_successors(self, query: str) -> list[str]:
        """Successors classified as specializations, by descending count."""
        per_source = self._edges.get(query, {})
        candidates = [
            (features.count, q2)
            for q2, features in per_source.items()
            if features.specialization
        ]
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return [q2 for _, q2 in candidates]

    # -- chaining -------------------------------------------------------------------

    def chain_probability(self, query: str, next_query: str) -> float:
        """Probability that (q, q') belong to the same search mission.

        A convex combination of (i) the term-set Jaccard similarity,
        (ii) saturating co-occurrence evidence ``count / (count + 2)`` and
        (iii) temporal proximity ``exp(-mean_gap / TIME_SCALE)``, with a
        floor of 0.9 for specialization edges (a refinement that literally
        extends the query is near-certainly the same mission).  Unknown
        pairs get probability 0.
        """
        features = self.edge(query, next_query)
        if features is None:
            return 0.0
        evidence = features.count / (features.count + 2.0)
        time_factor = math.exp(-features.mean_gap / self.TIME_SCALE)
        score = (
            self.W_SIMILARITY * features.jaccard
            + self.W_EVIDENCE * evidence
            + self.W_TIME * time_factor
        )
        if features.specialization:
            score = max(score, 0.9)
        return min(1.0, max(0.0, score))

    def logical_sessions(
        self, sessions: Iterable[Session], threshold: float = 0.5
    ) -> list[Session]:
        """Cut each raw session where the chaining probability drops.

        This produces the paper's "logical user sessions": maximal query
        chains a random surfer would plausibly follow as one mission.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        logical: list[Session] = []
        for session in sessions:
            current = [session.records[0]]
            for first, second in session.pairs():
                if self.chain_probability(first.query, second.query) >= threshold:
                    current.append(second)
                else:
                    logical.append(Session(tuple(current)))
                    current = [second]
            logical.append(Session(tuple(current)))
        return logical

    # -- random surfer ---------------------------------------------------------------

    def random_walk(
        self,
        start: str,
        rng: random.Random,
        max_steps: int = 10,
        min_probability: float = 0.0,
    ) -> list[str]:
        """Follow the Markov chain from *start*; returns the visited path.

        The walk stops at absorbing nodes (no successors), after
        *max_steps* transitions, or when every outgoing transition has
        probability below *min_probability*.
        """
        path = [start]
        current = start
        for _ in range(max_steps):
            per_source = self._edges.get(current)
            if not per_source:
                break
            choices: Sequence[tuple[str, float]] = [
                (q2, self.transition_probability(current, q2))
                for q2 in per_source
            ]
            choices = [(q2, p) for q2, p in choices if p >= min_probability]
            if not choices:
                break
            total = sum(p for _, p in choices)
            draw = rng.random() * total
            acc = 0.0
            for q2, p in choices:
                acc += p
                if draw <= acc:
                    current = q2
                    break
            path.append(current)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryFlowGraph(nodes={self.num_nodes}, edges={self.num_edges})"

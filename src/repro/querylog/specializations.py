"""Specialization mining: the full pipeline from raw log to ``S_q``.

This module glues the query-log substrate together into the object the
diversification framework consumes:

    raw log → time-gap sessions → Query-Flow-Graph logical sessions →
    Search-Shortcuts recommender → Algorithm 1 → SpecializationSet

:class:`SpecializationMiner` owns every stage.  Besides the recommender
candidates, mining enforces the *specialization* relation itself (the
candidate must state the query's need more precisely — Section 3's
definition via Boldi et al.'s taxonomy), which the generic Algorithm 1
delegates to its recommender.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet, ambiguous_query_detect
from repro.querylog.flowgraph import QueryFlowGraph, is_specialization
from repro.querylog.records import QueryLog
from repro.querylog.recommend import SearchShortcutsRecommender
from repro.querylog.sessions import DEFAULT_SESSION_TIMEOUT, Session, split_by_time_gap

__all__ = ["MinerConfig", "SpecializationMiner"]


@dataclass(frozen=True)
class MinerConfig:
    """Parameters of the mining pipeline.

    ``s`` is Algorithm 1's popularity-ratio parameter; ``chain_threshold``
    is the Query-Flow-Graph chaining-probability cut; ``candidates`` is how
    many recommendations to request per query.

    The default ``s = 10`` admits specializations down to a tenth of the
    root query's popularity: with Zipf-distributed aspect popularity the
    head aspect can absorb most refinements, and a stricter ratio (e.g.
    s = 2) would often leave a single surviving candidate, which
    Algorithm 1 treats as "not ambiguous".
    """

    s: float = 10.0
    chain_threshold: float = 0.5
    session_timeout: float = DEFAULT_SESSION_TIMEOUT
    candidates: int = 20
    max_specializations: int | None = None
    require_specialization_relation: bool = True

    def __post_init__(self) -> None:
        if self.s <= 0:
            raise ValueError("s must be positive")
        if not 0.0 <= self.chain_threshold <= 1.0:
            raise ValueError("chain_threshold must lie in [0, 1]")
        if self.candidates < 2:
            raise ValueError("candidates must be at least 2")


@dataclass
class SpecializationMiner:
    """End-to-end specialization mining over one query log.

    >>> # doctest-level smoke test lives in tests/test_specializations.py
    """

    log: QueryLog
    config: MinerConfig = field(default_factory=MinerConfig)
    _flow_graph: QueryFlowGraph | None = field(default=None, repr=False)
    _recommender: SearchShortcutsRecommender | None = field(default=None, repr=False)
    _logical_sessions: list[Session] | None = field(default=None, repr=False)

    # -- pipeline stages --------------------------------------------------------

    def build(self) -> "SpecializationMiner":
        """Run sessionization, QFG segmentation and recommender training."""
        raw_sessions = split_by_time_gap(self.log, self.config.session_timeout)
        self._flow_graph = QueryFlowGraph.build(raw_sessions)
        self._logical_sessions = self._flow_graph.logical_sessions(
            raw_sessions, self.config.chain_threshold
        )
        self._recommender = SearchShortcutsRecommender.train(self._logical_sessions)
        return self

    @property
    def flow_graph(self) -> QueryFlowGraph:
        if self._flow_graph is None:
            self.build()
        assert self._flow_graph is not None
        return self._flow_graph

    @property
    def recommender(self) -> SearchShortcutsRecommender:
        if self._recommender is None:
            self.build()
        assert self._recommender is not None
        return self._recommender

    @property
    def logical_sessions(self) -> list[Session]:
        if self._logical_sessions is None:
            self.build()
        assert self._logical_sessions is not None
        return self._logical_sessions

    # -- mining -------------------------------------------------------------------

    def _candidates(self, query: str) -> list[str]:
        """Recommender candidates, optionally restricted to true
        specializations of the query."""
        suggestions = self.recommender.recommend(query, n=self.config.candidates)
        if not self.config.require_specialization_relation:
            return suggestions
        return [q for q in suggestions if is_specialization(query, q)]

    def mine(self, query: str) -> SpecializationSet:
        """Algorithm 1 + Definition 1 for one query.

        Returns an empty set when the query is not ambiguous (fewer than
        two sufficiently popular specializations).
        """
        result = ambiguous_query_detect(
            query,
            recommend=self._candidates,
            frequency=self.log.frequency,
            s=self.config.s,
        )
        if result and self.config.max_specializations is not None:
            result = result.top(self.config.max_specializations)
        return result

    def is_ambiguous(self, query: str) -> bool:
        return bool(self.mine(query))

    def mine_all(self, min_frequency: int = 1) -> dict[str, SpecializationSet]:
        """Mine every distinct log query with frequency >= *min_frequency*.

        This materialises the paper's ambiguous-query side structure
        (Section 4.1 discusses its memory footprint).
        """
        out: dict[str, SpecializationSet] = {}
        for query, f in self.log.frequencies().items():
            if f < min_frequency:
                continue
            mined = self.mine(query)
            if mined:
                out[query] = mined
        return out

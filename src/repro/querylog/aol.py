"""Reader/writer for the public AOL query-log TSV format.

The paper trains on the AOL log (Appendix B).  The 2006 public release is
a set of tab-separated files with header::

    AnonID\tQuery\tQueryTime\tItemRank\tClickURL

One row per (query submission | click): a submission without clicks has
empty ``ItemRank``/``ClickURL``; a submission with several clicks repeats
the query row once per click.  This module converts between that format
and :class:`~repro.querylog.records.QueryLog`, so the library's pipeline
(sessionization → QFG → Search Shortcuts → Algorithm 1) runs unchanged on
the real data when the user has it.

The synthetic generator (:mod:`repro.querylog.synthesis`) remains the
bundled substitute; see DESIGN.md §3.
"""

from __future__ import annotations

import datetime as _dt
from collections.abc import Iterable, Iterator

from repro.querylog.records import QueryLog, QueryRecord

__all__ = ["parse_aol", "format_aol", "AOL_TIME_FORMAT"]

AOL_TIME_FORMAT = "%Y-%m-%d %H:%M:%S"
_HEADER = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL"


def _parse_time(text: str) -> float:
    parsed = _dt.datetime.strptime(text, AOL_TIME_FORMAT)
    return parsed.replace(tzinfo=_dt.timezone.utc).timestamp()


def _format_time(timestamp: float) -> str:
    parsed = _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)
    return parsed.strftime(AOL_TIME_FORMAT)


def parse_aol(lines: Iterable[str], name: str = "AOL") -> QueryLog:
    """Parse AOL TSV lines into a :class:`QueryLog`.

    Click rows belonging to the same (user, query, time) submission are
    merged into one record with all clicked URLs; the clicked URLs double
    as the record's result set (the file does not carry the full SERP).

    >>> log = parse_aol([
    ...     "AnonID\\tQuery\\tQueryTime\\tItemRank\\tClickURL",
    ...     "142\\tleopard\\t2006-03-01 10:00:00\\t\\t",
    ...     "142\\tleopard tank\\t2006-03-01 10:01:00\\t1\\thttp://a",
    ...     "142\\tleopard tank\\t2006-03-01 10:01:00\\t3\\thttp://b",
    ... ])
    >>> len(log), log.frequency("leopard tank")
    (2, 1)
    """
    merged: dict[tuple[str, str, float], list[tuple[int, str]]] = {}
    order: list[tuple[str, str, float]] = []
    for line_no, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line or line == _HEADER:
            continue
        parts = line.split("\t")
        if len(parts) == 3:
            parts += ["", ""]
        if len(parts) != 5:
            raise ValueError(
                f"AOL line {line_no}: expected 5 tab-separated fields, got "
                f"{len(parts)}"
            )
        anon_id, query, time_text, item_rank, click_url = parts
        query = query.strip()
        if not anon_id.strip() or not query:
            continue  # the public files contain a few malformed rows
        key = (anon_id.strip(), query, _parse_time(time_text))
        if key not in merged:
            merged[key] = []
            order.append(key)
        if click_url.strip():
            rank = int(item_rank) if item_rank.strip() else 0
            merged[key].append((rank, click_url.strip()))

    records = []
    for user_id, query, timestamp in order:
        clicks = tuple(
            url for _rank, url in sorted(merged[(user_id, query, timestamp)])
        )
        records.append(
            QueryRecord(
                timestamp=timestamp,
                user_id=user_id,
                query=query,
                results=clicks,  # the file only preserves clicked results
                clicks=clicks,
            )
        )
    return QueryLog(records, name=name)


def format_aol(log: QueryLog) -> Iterator[str]:
    """Serialise *log* in the AOL TSV format (header first).

    Records without clicks emit a single row with empty click columns;
    records with clicks emit one row per click, ranks taken from the
    position in the record's result list when available.
    """
    yield _HEADER
    for record in log:
        time_text = _format_time(record.timestamp)
        if not record.clicks:
            yield f"{record.user_id}\t{record.query}\t{time_text}\t\t"
            continue
        for url in record.clicks:
            try:
                rank = record.results.index(url) + 1
            except ValueError:
                rank = 1
            yield (
                f"{record.user_id}\t{record.query}\t{time_text}\t{rank}\t{url}"
            )

"""Search-Shortcuts query recommender (Broccolo et al., 2010).

Section 3.1 of the paper: "we experimented the use of a very efficient
query recommendation algorithm [7] for computing the possible
specializations of queries.  The algorithm used learns the suggestion
model from the query log, and returns as related specializations, only
queries that are present in Q".

The Search-Shortcuts technique treats query recommendation as retrieval
over the query log itself:

1. take the **satisfactory logical sessions** (sessions whose final query
   received a click — the reformulation chain "worked");
2. for every distinct final query, build a **virtual document** whose text
   is the concatenation of all queries of all satisfactory sessions ending
   with it (so a final query is described by the reformulation vocabulary
   that leads to it);
3. index the virtual documents in an inverted index;
4. at recommendation time, run the submitted query against that index and
   return the final queries of the best-matching virtual documents.

Our implementation reuses the library's own inverted index and TF-IDF
weighting model — the recommender is literally a small search engine over
the log, which is the point of the Search-Shortcuts design.
"""

from __future__ import annotations

import heapq
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.querylog.sessions import Session
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document
from repro.retrieval.index import InvertedIndex
from repro.retrieval.models import TFIDF, WeightingModel

__all__ = ["SearchShortcutsRecommender"]


class SearchShortcutsRecommender:
    """Recommend follow-up queries by retrieval over satisfactory sessions.

    Parameters
    ----------
    model:
        Weighting model used to match queries against virtual documents
        (TF-IDF by default, as in the Search-Shortcuts paper).
    analyzer:
        Query analysis pipeline.  Stopwords are *kept* by default: queries
        are short and their function words carry intent.
    min_sessions:
        Final queries backed by fewer satisfactory sessions than this are
        not indexed (noise suppression).

    >>> from repro.querylog.records import QueryRecord
    >>> sessions = [Session((QueryRecord(0.0, "u1", "apple"),
    ...                      QueryRecord(5.0, "u1", "apple iphone",
    ...                                  clicks=("d1",))))]
    >>> rec = SearchShortcutsRecommender.train(sessions)
    >>> rec.recommend("apple")
    ['apple iphone']
    """

    def __init__(
        self,
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        min_sessions: int = 1,
    ) -> None:
        if min_sessions < 1:
            raise ValueError("min_sessions must be at least 1")
        self.model = model or TFIDF()
        self.analyzer = analyzer or Analyzer(stopwords=())
        self.min_sessions = min_sessions
        self._index: InvertedIndex | None = None
        self._final_queries: list[str] = []
        self._support: Counter[str] = Counter()

    # -- training ---------------------------------------------------------------

    @classmethod
    def train(
        cls,
        sessions: Iterable[Session],
        model: WeightingModel | None = None,
        analyzer: Analyzer | None = None,
        min_sessions: int = 1,
    ) -> "SearchShortcutsRecommender":
        """Build the model from (logical) sessions."""
        recommender = cls(model=model, analyzer=analyzer, min_sessions=min_sessions)
        recommender.fit(sessions)
        return recommender

    def fit(self, sessions: Iterable[Session]) -> "SearchShortcutsRecommender":
        """(Re)build the virtual-document index from *sessions*."""
        texts: dict[str, list[str]] = {}
        support: Counter[str] = Counter()
        for session in sessions:
            if not session.is_satisfactory:
                continue
            final = session.final_query
            support[final] += 1
            texts.setdefault(final, []).extend(session.queries)

        self._support = support
        self._final_queries = []
        self._index = InvertedIndex(self.analyzer)
        for ordinal, (final, queries) in enumerate(sorted(texts.items())):
            if support[final] < self.min_sessions:
                continue
            del ordinal  # ordinals are assigned by the index itself
            self._final_queries.append(final)
            self._index.index_document(
                Document(doc_id=final, text=" ".join(queries))
            )
        return self

    @property
    def is_trained(self) -> bool:
        return self._index is not None and self._index.num_documents > 0

    @property
    def num_shortcuts(self) -> int:
        """Number of indexed virtual documents (distinct final queries)."""
        return self._index.num_documents if self._index else 0

    def support(self, final_query: str) -> int:
        """Number of satisfactory sessions ending with *final_query*."""
        return self._support.get(final_query, 0)

    # -- recommendation -------------------------------------------------------------

    def recommend(self, query: str, n: int = 10) -> list[str]:
        """Top-*n* suggested queries for *query*, best first.

        The submitted query itself is never suggested.  Returns queries
        that occurred in the training log by construction (they are final
        queries of logged sessions) — the property Algorithm 1 relies on
        to look up their frequencies.
        """
        return [query for query, _ in self.recommend_scored(query, n)]

    def recommend_scored(self, query: str, n: int = 10) -> list[tuple[str, float]]:
        """Like :meth:`recommend` but with matching scores."""
        if n <= 0:
            raise ValueError("n must be positive")
        index = self._index
        if index is None or index.num_documents == 0:
            return []
        terms = self.analyzer.analyze(query)
        if not terms:
            return []
        accumulators: dict[int, float] = {}
        n_docs = index.num_documents
        avg_dl = index.average_document_length
        for term, qtf in Counter(terms).items():
            postings = index.postings(term)
            if postings is None:
                continue
            df = postings.document_frequency
            cf = postings.collection_frequency
            for ordinal, tf in zip(postings.ordinals, postings.tfs):
                score = self.model.score(
                    tf,
                    index.document_length(ordinal),
                    df,
                    cf,
                    n_docs,
                    avg_dl,
                    key_frequency=float(qtf),
                )
                accumulators[ordinal] = accumulators.get(ordinal, 0.0) + score
        ranked = heapq.nsmallest(
            n + 1, accumulators.items(), key=lambda item: (-item[1], item[0])
        )
        out: list[tuple[str, float]] = []
        for ordinal, score in ranked:
            suggestion = index.doc_id(ordinal)
            if suggestion == query:
                continue
            out.append((suggestion, score))
            if len(out) == n:
                break
        return out

    def __call__(self, query: str) -> Sequence[str]:
        """Make the recommender usable directly as Algorithm 1's ``A``."""
        return self.recommend(query)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchShortcutsRecommender(shortcuts={self.num_shortcuts})"

"""Synthetic query-log generation (AOL-like and MSN-like profiles).

The paper trains its specialization miner on the AOL (~20M queries, ~650k
users, March–May 2006) and MSN (~15M queries, one month of 2006) logs
(Appendix B).  Neither log is redistributable, so this module generates
logs with the same statistical shape at laptop scale (see DESIGN.md §3):

* **session mixture** — ambiguous sessions that start with a root query
  and refine it into aspect-specific specializations, sessions issuing a
  specialization directly, abandoned ambiguous sessions, and noise
  sessions about nothing in particular;
* **Zipfian popularity** — of topics across sessions, of aspects within a
  topic (replaying the corpus ground truth so that mined ``P(q'|q)``
  should converge to the generator's popularities), and of user activity;
* **position-biased clicks** — clicks concentrate on top results, and a
  clicked final query makes the session "satisfactory", feeding the
  Search-Shortcuts recommender.

Profiles :data:`AOL_PROFILE` and :data:`MSN_PROFILE` mirror the two logs'
relative size, duration and user-base shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.corpus.generator import AmbiguousTopic, SyntheticCorpus
from repro.corpus.vocabulary import Vocabulary, ZipfSampler
from repro.querylog.records import QueryLog, QueryRecord

__all__ = ["LogProfile", "AOL_PROFILE", "MSN_PROFILE", "generate_query_log"]


@dataclass(frozen=True)
class LogProfile:
    """Shape parameters of a synthetic log.

    The absolute counts are laptop-scale; :func:`scaled` multiplies them
    while preserving the profile's shape.
    """

    name: str
    num_sessions: int = 6000
    num_users: int = 1200
    duration_days: float = 30.0
    #: Fraction of sessions that are about one of the corpus' ambiguous
    #: topics (the rest are background noise missions).
    topical_fraction: float = 0.7
    #: Among topical sessions: probability the user first issues the
    #: ambiguous root query (otherwise they go straight to a
    #: specialization).
    root_first_probability: float = 0.55
    #: Given a root query was issued: probability the user refines it
    #: (otherwise the ambiguous session is abandoned).
    refinement_probability: float = 0.75
    #: Probability that a result at rank r is clicked decays as
    #: click_base / r (position bias).
    click_base: float = 0.65
    #: Probability that a noise session refines its query (adds a term).
    #: Real users refine all kinds of queries, not only the corpus'
    #: ambiguous topics; these rare refinements are what keeps the
    #: Appendix C recall measure below 100% — the miner can only learn
    #: the popular ones.
    noise_refinement_probability: float = 0.35
    #: Zipf skew of the noise-query vocabulary: a head of popular noise
    #: queries recurs often enough to be mined, the tail does not.
    noise_zipf_s: float = 1.1
    #: Topic popularity skew across sessions.
    topic_zipf_s: float = 0.9
    #: User activity skew.
    user_zipf_s: float = 1.1
    results_per_query: int = 10
    seed: int = 1234

    def scaled(self, factor: float) -> "LogProfile":
        """A copy with session and user counts multiplied by *factor*."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            num_sessions=max(1, int(self.num_sessions * factor)),
            num_users=max(1, int(self.num_users * factor)),
        )


#: AOL: three months, larger and noisier user base.
AOL_PROFILE = LogProfile(
    name="AOL",
    num_sessions=8000,
    num_users=1600,
    duration_days=92.0,
    topical_fraction=0.65,
    user_zipf_s=1.2,
    seed=20060301,
)

#: MSN: one month, smaller, slightly more focused sessions.
MSN_PROFILE = LogProfile(
    name="MSN",
    num_sessions=6000,
    num_users=1000,
    duration_days=31.0,
    topical_fraction=0.7,
    user_zipf_s=1.0,
    seed=20060501,
)


def _background_terms(corpus: SyntheticCorpus, limit: int = 500) -> list[str]:
    """Corpus vocabulary minus reserved topic/aspect terms (noise queries)."""
    reserved = {t for topic in corpus.topics for t in topic.terms} | {
        t
        for topic in corpus.topics
        for aspect in topic.aspects
        for t in aspect.terms
    }
    vocab = Vocabulary(corpus.config.vocabulary_size, seed=corpus.config.seed)
    return [w for w in vocab.words if w not in reserved][:limit]


class _LogBuilder:
    """Stateful helper that emits the records of one synthetic log."""

    def __init__(self, corpus: SyntheticCorpus, profile: LogProfile, seed: int | None):
        self.corpus = corpus
        self.profile = profile
        self.rng = random.Random(profile.seed if seed is None else seed)
        self.topic_sampler = ZipfSampler(len(corpus.topics), s=profile.topic_zipf_s)
        self.user_sampler = ZipfSampler(profile.num_users, s=profile.user_zipf_s)
        self.records: list[QueryRecord] = []
        self._background = _background_terms(corpus)
        self._noise_sampler = ZipfSampler(
            len(self._background), s=profile.noise_zipf_s
        )

    # -- sampling helpers ---------------------------------------------------------

    def _aspect_index(self, topic: AmbiguousTopic) -> int:
        """Sample an aspect according to its ground-truth popularity."""
        draw = self.rng.random()
        acc = 0.0
        for i, aspect in enumerate(topic.aspects):
            acc += aspect.popularity
            if draw <= acc:
                return i
        return len(topic.aspects) - 1

    def _results_for_aspect(self, topic: AmbiguousTopic, aspect_index: int) -> tuple[str, ...]:
        docs = self.corpus.documents_of_aspect(topic.topic_id, aspect_index)
        if not docs:
            return ()
        k = min(self.profile.results_per_query, len(docs))
        return tuple(self.rng.sample(docs, k))

    def _results_for_root(self, topic: AmbiguousTopic) -> tuple[str, ...]:
        """Root queries surface a popularity-weighted mix of aspect docs."""
        pool: list[str] = []
        for i, aspect in enumerate(topic.aspects):
            docs = self.corpus.documents_of_aspect(topic.topic_id, i)
            want = max(1, round(aspect.popularity * self.profile.results_per_query))
            if docs:
                pool.extend(self.rng.sample(docs, min(want, len(docs))))
        self.rng.shuffle(pool)
        return tuple(pool[: self.profile.results_per_query])

    def _clicks(self, results: tuple[str, ...], engaged: bool) -> tuple[str, ...]:
        if not engaged or not results:
            return ()
        clicks = [
            doc
            for rank, doc in enumerate(results, start=1)
            if self.rng.random() < self.profile.click_base / rank
        ]
        return tuple(clicks)

    def _noise_term(self) -> str:
        return self._background[self._noise_sampler.sample(self.rng)]

    def _noise_query(self) -> str:
        n_terms = 1 if self.rng.random() < 0.7 else 2
        terms: list[str] = []
        while len(terms) < n_terms:
            term = self._noise_term()
            if term not in terms:
                terms.append(term)
        return " ".join(terms)

    # -- session emission -----------------------------------------------------------

    def emit_sessions(self) -> None:
        duration = self.profile.duration_days * 86_400.0
        for _ in range(self.profile.num_sessions):
            user = f"u{self.user_sampler.sample(self.rng):06d}"
            start = self.rng.uniform(0.0, duration)
            if self.rng.random() < self.profile.topical_fraction:
                self._emit_topical_session(user, start)
            else:
                self._emit_noise_session(user, start)

    def _emit_topical_session(self, user: str, start: float) -> None:
        topic = self.corpus.topics[self.topic_sampler.sample(self.rng)]
        t = start
        if self.rng.random() < self.profile.root_first_probability:
            results = self._results_for_root(topic)
            refines = self.rng.random() < self.profile.refinement_probability
            # Abandoned ambiguous sessions still click sometimes.
            clicks = self._clicks(results, engaged=not refines and self.rng.random() < 0.5)
            self.records.append(
                QueryRecord(t, user, topic.query, results=results, clicks=clicks)
            )
            if not refines:
                return
            n_refinements = 1 if self.rng.random() < 0.8 else 2
            for _ in range(n_refinements):
                t += self.rng.uniform(5.0, 120.0)
                aspect_index = self._aspect_index(topic)
                aspect = topic.aspects[aspect_index]
                results = self._results_for_aspect(topic, aspect_index)
                clicks = self._clicks(results, engaged=True)
                self.records.append(
                    QueryRecord(t, user, aspect.query, results=results, clicks=clicks)
                )
        else:
            aspect_index = self._aspect_index(topic)
            aspect = topic.aspects[aspect_index]
            results = self._results_for_aspect(topic, aspect_index)
            clicks = self._clicks(results, engaged=True)
            self.records.append(
                QueryRecord(t, user, aspect.query, results=results, clicks=clicks)
            )

    def _noise_results(self) -> tuple[str, ...]:
        return tuple(
            f"noise-{self.rng.randrange(10_000):05d}"
            for _ in range(self.profile.results_per_query)
        )

    def _emit_noise_session(self, user: str, start: float) -> None:
        t = start
        query = self._noise_query()
        refines = self.rng.random() < self.profile.noise_refinement_probability
        clicks = self._clicks(self._noise_results(), engaged=not refines)
        results = self._noise_results()
        self.records.append(
            QueryRecord(t, user, query, results=results, clicks=clicks)
        )
        if refines:
            # A genuine specialization of a non-topical query: append a
            # (Zipf-sampled) extra term, click the refined results.
            extra = self._noise_term()
            if extra not in query.split():
                t += self.rng.uniform(5.0, 120.0)
                refined = f"{query} {extra}"
                results = self._noise_results()
                self.records.append(
                    QueryRecord(
                        t,
                        user,
                        refined,
                        results=results,
                        clicks=self._clicks(results, engaged=True),
                    )
                )
        elif self.rng.random() < 0.4:
            # Unrelated follow-up query in the same sitting.
            t += self.rng.uniform(5.0, 120.0)
            query = self._noise_query()
            results = self._noise_results()
            self.records.append(
                QueryRecord(
                    t,
                    user,
                    query,
                    results=results,
                    clicks=self._clicks(results, engaged=self.rng.random() < 0.6),
                )
            )


def generate_query_log(
    corpus: SyntheticCorpus,
    profile: LogProfile = AOL_PROFILE,
    seed: int | None = None,
) -> QueryLog:
    """Generate a synthetic query log replaying *corpus* ground truth.

    Deterministic given (*corpus*, *profile*, *seed*); *seed* overrides the
    profile's seed so several independent logs can share a profile.

    >>> from repro.corpus.generator import CorpusConfig, generate_corpus
    >>> corpus = generate_corpus(CorpusConfig(num_topics=3, background_docs=10))
    >>> log = generate_query_log(corpus, MSN_PROFILE.scaled(0.01))
    >>> len(log) > 0
    True
    """
    builder = _LogBuilder(corpus, profile, seed)
    builder.emit_sessions()
    return QueryLog(builder.records, name=profile.name)

"""Query-log substrate: records, sessions, QFG, recommender, mining.

Implements Section 3's pipeline: the ⟨q, u, t, V, C⟩ log model, time-gap
and Query-Flow-Graph sessionization (Boldi et al.), the Search-Shortcuts
query recommender (Broccolo et al.), synthetic AOL/MSN-like log
generation (see DESIGN.md §3 for the substitution), and the specialization
miner that feeds Algorithm 1.
"""

from repro.querylog.aol import format_aol, parse_aol
from repro.querylog.clickmodels import (
    CascadeModel,
    ClickModel,
    PositionBiasedModel,
    click_boosted_probabilities,
)
from repro.querylog.flowgraph import EdgeFeatures, QueryFlowGraph, is_specialization
from repro.querylog.recommend import SearchShortcutsRecommender
from repro.querylog.records import QueryLog, QueryRecord
from repro.querylog.sessions import (
    DEFAULT_SESSION_TIMEOUT,
    Session,
    split_by_time_gap,
)
from repro.querylog.specializations import MinerConfig, SpecializationMiner
from repro.querylog.synthesis import (
    AOL_PROFILE,
    MSN_PROFILE,
    LogProfile,
    generate_query_log,
)

__all__ = [
    "format_aol",
    "parse_aol",
    "CascadeModel",
    "ClickModel",
    "PositionBiasedModel",
    "click_boosted_probabilities",
    "EdgeFeatures",
    "QueryFlowGraph",
    "is_specialization",
    "SearchShortcutsRecommender",
    "QueryLog",
    "QueryRecord",
    "DEFAULT_SESSION_TIMEOUT",
    "Session",
    "split_by_time_gap",
    "MinerConfig",
    "SpecializationMiner",
    "AOL_PROFILE",
    "MSN_PROFILE",
    "LogProfile",
    "generate_query_log",
]

"""Sessionization: from raw per-user query streams to sessions.

The paper splits "the chronologically ordered sequence of queries
submitted by a given user into sessions" and then refines the split with
the Query-Flow-Graph technique (Section 3, citing Boldi et al.).  This
module provides the first stage — classic time-gap segmentation — and the
:class:`Session` type shared with :mod:`repro.querylog.flowgraph`, which
implements the second stage.

A session is *satisfactory* when its final query received clicks; the
Search-Shortcuts recommender trains on satisfactory sessions only (a
clicked final query is evidence the reformulation chain succeeded).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.querylog.records import QueryLog, QueryRecord

__all__ = ["Session", "split_by_time_gap", "DEFAULT_SESSION_TIMEOUT"]

#: The conventional 30-minute inactivity timeout used by most query-log
#: studies (and by the Boldi et al. QFG paper as the raw segmentation).
DEFAULT_SESSION_TIMEOUT = 30.0 * 60.0


@dataclass(frozen=True)
class Session:
    """A chronological run of queries by one user.

    >>> s = Session((QueryRecord(0.0, "u", "apple"),
    ...              QueryRecord(9.0, "u", "apple iphone", clicks=("d1",))))
    >>> s.queries, s.is_satisfactory
    (('apple', 'apple iphone'), True)
    """

    records: tuple[QueryRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a session holds at least one record")
        user_ids = {r.user_id for r in self.records}
        if len(user_ids) != 1:
            raise ValueError("a session belongs to exactly one user")
        timestamps = [r.timestamp for r in self.records]
        if timestamps != sorted(timestamps):
            raise ValueError("session records must be chronological")

    @property
    def user_id(self) -> str:
        return self.records[0].user_id

    @property
    def queries(self) -> tuple[str, ...]:
        return tuple(r.query for r in self.records)

    @property
    def start(self) -> float:
        return self.records[0].timestamp

    @property
    def end(self) -> float:
        return self.records[-1].timestamp

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def final_query(self) -> str:
        return self.records[-1].query

    @property
    def is_satisfactory(self) -> bool:
        """True when the final query received at least one click."""
        return self.records[-1].clicked

    def pairs(self) -> Iterator[tuple[QueryRecord, QueryRecord]]:
        """Consecutive (q, q') reformulation pairs within the session."""
        for a, b in zip(self.records, self.records[1:]):
            yield a, b

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records)


def split_by_time_gap(
    log: QueryLog | Iterable[QueryRecord],
    timeout: float = DEFAULT_SESSION_TIMEOUT,
) -> list[Session]:
    """Split every user's stream on inactivity gaps longer than *timeout*.

    Records are grouped per user first, then cut whenever two consecutive
    queries are more than *timeout* seconds apart.  Consecutive duplicate
    submissions of the same query (page requeries) are collapsed into the
    first occurrence, keeping the later record's clicks if the earlier one
    had none.

    >>> log = QueryLog([QueryRecord(0.0, "u", "a"),
    ...                 QueryRecord(10_000.0, "u", "b")])
    >>> [s.queries for s in split_by_time_gap(log)]
    [('a',), ('b',)]
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    if isinstance(log, QueryLog):
        streams: Iterable[Sequence[QueryRecord]] = (
            log.user_stream(u) for u in log.users
        )
    else:
        by_user: dict[str, list[QueryRecord]] = {}
        for record in sorted(log):
            by_user.setdefault(record.user_id, []).append(record)
        streams = (by_user[u] for u in sorted(by_user))

    sessions: list[Session] = []
    for stream in streams:
        current: list[QueryRecord] = []
        for record in stream:
            if current and record.timestamp - current[-1].timestamp > timeout:
                sessions.append(Session(tuple(current)))
                current = []
            if current and record.query == current[-1].query:
                if record.clicked and not current[-1].clicked:
                    current[-1] = record
                continue
            current.append(record)
        if current:
            sessions.append(Session(tuple(current)))
    return sessions

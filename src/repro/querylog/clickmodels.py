"""Click models — the paper's future-work item (ii).

Section 6: "Future work will regard: ... ii) the use of click-through
data to improve our effectiveness results".  Two standard user click
models are implemented (they also back the synthetic log generator's
click simulation):

* :class:`PositionBiasedModel` — examination decays with rank;
  P(click at r) = attractiveness · examination(r) with examination(r) =
  base / r (the model the generator uses);
* :class:`CascadeModel` — the user scans top-down and stops at the first
  satisfying result (Craswell et al.).

On top of them, :func:`click_boosted_probabilities` implements the
effectiveness improvement the paper sketches: re-estimate P(q'|q) from
*satisfied* sessions only — a specialization whose sessions end in clicks
is a better interpretation than one users bounce off, so its probability
is boosted relative to raw submission frequency (Definition 1 uses raw
frequency only).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.core.ambiguity import SpecializationSet
from repro.querylog.sessions import Session

__all__ = [
    "ClickModel",
    "PositionBiasedModel",
    "CascadeModel",
    "click_boosted_probabilities",
]


class ClickModel(ABC):
    """Simulate which of a ranked result list's items get clicked."""

    @abstractmethod
    def click_probability(self, rank: int, attractiveness: float) -> float:
        """Probability that the result at 1-based *rank* is clicked,
        conditional on the user reaching it (model specific)."""

    def simulate(
        self,
        results: Sequence[str],
        rng: random.Random,
        attractiveness: float = 0.65,
    ) -> tuple[str, ...]:
        """Sample a click set for *results* (best first)."""
        clicks = []
        for rank, doc_id in enumerate(results, start=1):
            if rng.random() < self.click_probability(rank, attractiveness):
                clicks.append(doc_id)
                if self.stops_after_click():
                    break
        return tuple(clicks)

    def stops_after_click(self) -> bool:
        return False


class PositionBiasedModel(ClickModel):
    """Examination decays as 1/rank: P(click@r) = a / r.

    This is the model :mod:`repro.querylog.synthesis` applies; exposing
    it as a class makes the generator's behaviour testable and swappable.
    """

    def click_probability(self, rank: int, attractiveness: float) -> float:
        if rank < 1:
            raise ValueError("ranks are 1-based")
        return min(1.0, attractiveness / rank)


class CascadeModel(ClickModel):
    """Craswell et al.'s cascade: scan top-down, stop at first click."""

    def __init__(self, continuation: float = 0.85) -> None:
        if not 0.0 <= continuation <= 1.0:
            raise ValueError("continuation must lie in [0, 1]")
        self.continuation = continuation

    def click_probability(self, rank: int, attractiveness: float) -> float:
        if rank < 1:
            raise ValueError("ranks are 1-based")
        # Reaching rank r requires r−1 non-clicks *and* continuations.
        return attractiveness * self.continuation ** (rank - 1)

    def stops_after_click(self) -> bool:
        return True


def click_boosted_probabilities(
    specializations: SpecializationSet,
    sessions: Iterable[Session],
    boost: float = 1.0,
) -> SpecializationSet:
    """Reweight P(q'|q) by click-through satisfaction.

    For each mined specialization q', count the sessions whose final
    query is q': ``satisfied`` (final query clicked) vs ``abandoned``.
    The specialization's probability mass is multiplied by::

        1 + boost · satisfaction_rate(q')

    and renormalised.  Specializations never observed as session finals
    keep their prior mass (rate 0).  ``boost = 0`` returns the input
    distribution unchanged.

    This is a deliberately simple instantiation of the paper's future
    work: it only consumes data already in the log model (the C_i click
    sets) and keeps Definition 1's contract (a proper distribution over
    the same specializations).
    """
    if boost < 0:
        raise ValueError("boost must be non-negative")
    if not specializations or boost == 0.0:
        return specializations
    wanted = set(specializations.queries)
    satisfied: dict[str, int] = {q: 0 for q in wanted}
    total: dict[str, int] = {q: 0 for q in wanted}
    for session in sessions:
        final = session.final_query
        if final in wanted:
            total[final] += 1
            if session.is_satisfactory:
                satisfied[final] += 1
    reweighted = {}
    for spec, p in specializations:
        rate = satisfied[spec] / total[spec] if total[spec] else 0.0
        reweighted[spec] = p * (1.0 + boost * rate)
    return SpecializationSet.from_frequencies(
        specializations.query, reweighted
    )

"""HTTP serving surface: a stdlib REST front-end over the async service.

Every layer below this one — batched kernels, sharded/replicated
backends, asyncio micro-batching — still terminates in a Python call.
This module gives the reproduction a *network* path, in the style of the
Paper-Scanner API reference (SNIPPETS.md): a documented base URL,
offset+cursor pagination, and explicit JSON error codes.  It is built
entirely from the standard library (``http.server`` + ``json``): no
framework dependency, which keeps the repo's no-new-deps constraint and
makes the server a faithful measurement harness — what
``repro.experiments.throughput --mode http`` times through a real socket
is this code and the serving stack, nothing else.

Architecture: a :class:`~http.server.ThreadingHTTPServer` accepts
connections (one handler thread per in-flight request) and bridges into
a dedicated asyncio event loop running an
:class:`~repro.serving.async_service.AsyncDiversificationService`, so
concurrent HTTP clients coalesce into the same admission windows a
native asyncio deployment would form.  The wrapped backend is anything
the async service accepts — a single
:class:`~repro.serving.service.DiversificationService` or a
:class:`~repro.serving.sharded.ShardedDiversificationService` on any
execution backend, including the replicated one.

Endpoints (base URL ``http://<host>:<port>``):

``POST /diversify``
    Body ``{"query": "..."}`` or ``{"queries": ["...", ...]}``, optional
    ``"timeout_ms"``.  Responses are field-identical to a direct
    ``diversify_batch`` on the same backend (asserted end-to-end by the
    ``--mode http`` harness).  Errors: ``400`` malformed body, ``422``
    validation, ``429`` over the in-flight bound, ``503`` draining /
    stopped / timed out.
``GET /results``
    Offset+cursor pagination over a bounded ring of recently served
    results (``limit``/``offset``, or keyset ``cursor`` from the
    previous page's ``next_cursor``).
``POST /documents``
    Live ingest: body is one document object (``{"doc_id", "text",
    "title"?, "metadata"?}``) or a batch ``{"documents": [...],
    "remove": [...]}``.  The whole body is applied as ONE epoch — the
    response names the epoch that includes the change, and every query
    served afterwards sees either the previous epoch or this one, never
    a half-applied batch.  Errors: ``404`` removing an unknown doc_id,
    ``409`` duplicate doc_id or an engine without live-ingest support.
``DELETE /documents/{id}``
    Remove one document (an epoch of its own); responds with the epoch
    that excludes it.
``GET /health``
    Liveness plus the currently published ``epoch`` and per-shard
    replica health when the cluster runs a
    :class:`~repro.serving.replication.ReplicatedBackend`.
``GET /stats``
    Merged :class:`~repro.serving.service.ServiceStats` /
    :class:`~repro.core.cache.CacheStats` / fusion + replication
    counters as JSON.
``POST /drain``
    Graceful rolling-restart shutdown: stop admitting, flush the
    in-flight admission windows, report drained counts.  Idempotent;
    read endpoints keep answering afterwards.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.framework import DiversifiedResult
from repro.retrieval.documents import Document


class _Listener(ThreadingHTTPServer):
    """ThreadingHTTPServer with a backlog sized for bursty open-loop
    load — the stdlib default of 5 pending connections refuses clients
    under any realistic arrival burst."""

    request_queue_size = 128
    daemon_threads = True
from repro.serving.async_service import AsyncDiversificationService, ServiceClosed
from repro.serving.service import ServiceStats

__all__ = [
    "ApiError",
    "DiversificationHTTPServer",
    "result_payload",
    "stats_payload",
    "MAX_PAGE_LIMIT",
    "DEFAULT_PAGE_LIMIT",
]

#: Pagination bounds of ``GET /results`` (Paper-Scanner style: a default
#: page, a hard cap a client cannot exceed).
DEFAULT_PAGE_LIMIT = 50
MAX_PAGE_LIMIT = 200


class ApiError(Exception):
    """One HTTP error response: status code, machine code, message.

    Raised anywhere inside request handling and rendered as the JSON
    body ``{"error": {"code": ..., "message": ...}}`` with the HTTP
    status attached — every failure a client can provoke has an explicit,
    documented shape instead of a traceback page.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def result_payload(result: DiversifiedResult) -> dict:
    """The wire projection of one :class:`DiversifiedResult`.

    Everything the serving contract promises is included — ranking,
    diversification flag, algorithm, specializations with their
    probabilities, and the baseline ranking *with scores* — so the
    ``--mode http`` identity check can compare HTTP responses
    field-for-field against direct ``diversify_batch`` results.  Floats
    survive the JSON round-trip exactly (``json`` serialises via
    ``repr`` and parses back to the same double).
    """
    return {
        "query": result.query,
        "ranking": list(result.ranking),
        "diversified": bool(result.diversified),
        "algorithm": result.algorithm,
        "k": len(result.ranking),
        "specializations": [
            [spec, float(probability)]
            for spec, probability in result.specializations
        ],
        "baseline": {
            "doc_ids": [r.doc_id for r in result.baseline],
            "scores": [float(r.score) for r in result.baseline],
        },
    }


def stats_payload(stats: ServiceStats) -> dict:
    """One :class:`ServiceStats` (leaf or merged) as a JSON-able dict.

    Nested breakdowns (``shards`` with their ``replicas``) serialise
    recursively — they are bounded snapshots, not live objects.
    """
    payload = {
        "name": stats.name,
        "served": stats.served,
        "ranked": stats.ranked,
        "diversified": stats.diversified,
        "batches": stats.batches,
        "seconds": stats.seconds,
        "busy_seconds": stats.busy_seconds,
        "throughput_qps": stats.throughput_qps,
        "latency": {
            "mean_ms": stats.mean_latency_ms,
            "p50_ms": stats.percentile_ms(0.50),
            "p95_ms": stats.percentile_ms(0.95),
            "p99_ms": stats.percentile_ms(0.99),
        },
        "formation": {
            "mean_batch_size": stats.mean_batch_size,
            "batch_sizes": {
                str(size): count for size, count in sorted(stats.batch_sizes.items())
            },
            "wait_mean_ms": stats.mean_wait_ms,
            "wait_p95_ms": stats.wait_percentile_ms(0.95),
            "queue_depth_peak": stats.queue_depth_peak,
        },
        "fusion": {
            "fused_queries": stats.fused_queries,
            "fallback_queries": stats.fallback_queries,
            "fusion_groups": stats.fusion_groups,
            "pad_fill_ratio": stats.pad_fill_ratio,
        },
        "replication": {
            "hedges_fired": stats.hedges_fired,
            "hedges_won": stats.hedges_won,
            "respawns": stats.respawns,
            "failovers": stats.failovers,
        },
        "page_cache": {
            "hits": stats.page_hits,
            "misses": stats.page_misses,
            "evictions": stats.page_evictions,
            "resident_bytes": stats.page_resident_bytes,
        },
        "ingest": {
            "documents_ingested": stats.documents_ingested,
            "documents_removed": stats.documents_removed,
            "epochs_published": stats.epochs_published,
            "warm_invalidations": stats.warm_invalidations,
        },
    }
    if stats.shards:
        payload["shards"] = [stats_payload(s) for s in stats.shards]
    if stats.replicas:
        payload["replicas"] = [stats_payload(s) for s in stats.replicas]
    return payload


def _cache_payload(info) -> dict:
    return {
        "maxsize": info.maxsize,
        "size": info.size,
        "hits": info.hits,
        "misses": info.misses,
        "evictions": info.evictions,
        "hit_rate": info.hit_rate,
    }


class DiversificationHTTPServer:
    """Serve a diversification backend over HTTP.

    Parameters
    ----------
    service:
        The backend: a :class:`DiversificationService` or a
        :class:`ShardedDiversificationService` (any execution backend).
        The server wraps it in an
        :class:`AsyncDiversificationService`, so concurrent HTTP clients
        coalesce into admission windows exactly like native submitters.
    host / port:
        Bind address.  ``port=0`` (the default) picks an ephemeral port;
        read it back from :attr:`address` / :attr:`base_url`.
    max_batch_size / max_wait_s / max_pending:
        The admission window, passed through to the async front-end.
    max_inflight:
        Bound on requests (queries, not connections) admitted into the
        serving path at once; excess answers ``429`` immediately instead
        of queueing without bound — open-loop load sheds here.
    ring_size:
        Capacity of the recent-results ring behind ``GET /results``.
    default_timeout_s:
        Per-request serving timeout when the body names none.

    >>> server = DiversificationHTTPServer(service)      # doctest: +SKIP
    >>> server.start()                                   # doctest: +SKIP
    >>> print(server.base_url)                           # doctest: +SKIP
    >>> server.close()                                   # doctest: +SKIP
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_pending: int = 1024,
        max_inflight: int = 256,
        ring_size: int = 512,
        default_timeout_s: float = 30.0,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be positive")
        self.service = service
        self._host = host
        self._port = port
        self._front_kwargs = dict(
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            max_pending=max_pending,
            name="http",
        )
        self.max_inflight = max_inflight
        self.default_timeout_s = default_timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._server_thread: threading.Thread | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self.front: AsyncDiversificationService | None = None
        self._ring: deque[dict] = deque(maxlen=ring_size)
        self._ring_lock = threading.Lock()
        self._seq = 0
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._drain_lock = threading.Lock()
        #: Serialises concurrent POST /documents handler threads so each
        #: body becomes exactly one epoch, in arrival order.
        self._ingest_lock = threading.Lock()
        self._drain_report: dict | None = None
        self._draining = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "DiversificationHTTPServer":
        """Start the event loop, the async front-end, and the listener."""
        if self._httpd is not None or self._closed:
            raise RuntimeError("server cannot be (re)started")
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-http-loop", daemon=True
        )
        self._loop_thread.start()
        self.front = AsyncDiversificationService(
            self.service, **self._front_kwargs
        )

        async def _start_front():
            self.front.start()

        asyncio.run_coroutine_threadsafe(_start_front(), self._loop).result(10)
        handler = _make_handler(self)
        self._httpd = _Listener((self._host, self._port), handler)
        self._server_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http-server",
            daemon=True,
        )
        self._server_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved when ephemeral."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "DiversificationHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop the listener and the front-end (drains first); idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._loop is not None:
            if self._drain_report is None and self.front is not None:
                asyncio.run_coroutine_threadsafe(
                    self.front.stop(drain=True), self._loop
                ).result(30)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=10)
            self._loop.close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10)

    # -- serving bridge ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def serve(self, queries: list[str], timeout_s: float) -> list[DiversifiedResult]:
        """Bridge one HTTP request into the async admission layer.

        Runs ``submit_many`` on the server's event loop and waits up to
        *timeout_s*.  Maps the serving-layer failure modes onto the
        documented error codes: draining/stopped → 503, timeout → 503
        (the coroutine is cancelled, so its queue slots free), anything
        else propagates as a 500.
        """
        if self._draining:
            raise ApiError(503, "draining", "service is draining; retry elsewhere")
        future = asyncio.run_coroutine_threadsafe(
            self.front.submit_many(queries), self._loop
        )
        try:
            results = future.result(timeout_s)
        except FutureTimeoutError:
            future.cancel()
            raise ApiError(
                503,
                "timeout",
                f"request did not complete within {timeout_s:g}s",
            ) from None
        except ServiceClosed as exc:
            raise ApiError(503, "draining", str(exc)) from None
        self._record(queries, results)
        return results

    def _record(self, queries: list[str], results: list[DiversifiedResult]) -> None:
        """Append served results to the recent-results ring, in request
        order, each stamped with a monotonically increasing ``seq`` (the
        keyset behind cursor pagination)."""
        with self._ring_lock:
            for query, result in zip(queries, results):
                self._seq += 1
                self._ring.append(
                    {
                        "seq": self._seq,
                        "query": query,
                        "ranking": list(result.ranking),
                        "diversified": bool(result.diversified),
                        "algorithm": result.algorithm,
                    }
                )

    def acquire_slots(self, count: int) -> bool:
        """Reserve *count* in-flight query slots; False = shed (429)."""
        with self._inflight_lock:
            if self._inflight + count > self.max_inflight:
                return False
            self._inflight += count
            return True

    def release_slots(self, count: int) -> None:
        with self._inflight_lock:
            self._inflight -= count

    # -- endpoint bodies ---------------------------------------------------------

    def handle_diversify(self, body: dict) -> dict:
        queries, single = _validate_diversify(body, self.max_inflight)
        timeout_s = _validate_timeout(body, self.default_timeout_s)
        if not self.acquire_slots(len(queries)):
            raise ApiError(
                429,
                "overloaded",
                f"more than {self.max_inflight} queries in flight; retry later",
            )
        try:
            results = self.serve(queries, timeout_s)
        finally:
            self.release_slots(len(queries))
        payloads = [result_payload(result) for result in results]
        if single:
            return payloads[0]
        return {"results": payloads}

    def handle_results(self, params: dict) -> dict:
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        offset = _int_param(params, "offset", 0, 0, None)
        cursor = params.get("cursor", [None])[0]
        with self._ring_lock:
            entries = list(self._ring)
        if cursor is not None:
            try:
                after = int(cursor)
            except ValueError:
                raise ApiError(
                    400, "bad_cursor", f"cursor must be an integer seq, got {cursor!r}"
                ) from None
            selected = [entry for entry in entries if entry["seq"] > after]
            page = selected[:limit]
            has_more = len(selected) > len(page)
            next_cursor = str(page[-1]["seq"]) if page else cursor
        else:
            page = entries[offset:offset + limit]
            has_more = offset + len(page) < len(entries)
            next_cursor = str(page[-1]["seq"]) if page else None
        return {
            "items": page,
            "page": {
                "total": len(entries),
                "limit": limit,
                "offset": offset if cursor is None else None,
                "next_cursor": next_cursor,
                "has_more": has_more,
            },
        }

    def handle_ingest(self, body: dict) -> dict:
        documents, removals = _validate_ingest(body)
        if self._draining:
            raise ApiError(503, "draining", "service is draining; no writes")
        with self._ingest_lock:
            try:
                epoch = self.service.ingest(
                    add_documents=documents, remove_doc_ids=removals
                )
            except ValueError as exc:
                raise _ingest_error(exc) from None
        return {
            "epoch": epoch,
            "ingested": len(documents),
            "removed": len(removals),
        }

    def handle_remove(self, doc_id: str) -> dict:
        if not doc_id:
            raise ApiError(404, "not_found", "no document id in path")
        if self._draining:
            raise ApiError(503, "draining", "service is draining; no writes")
        with self._ingest_lock:
            try:
                epoch = self.service.ingest(remove_doc_ids=[doc_id])
            except ValueError as exc:
                raise _ingest_error(exc) from None
        return {"epoch": epoch, "ingested": 0, "removed": 1}

    def handle_health(self) -> dict:
        if self._drain_report is not None:
            status = "drained"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        payload = {
            "status": status,
            "running": bool(self.front is not None and self.front.running),
        }
        current_epoch = getattr(self.service, "current_epoch", None)
        if callable(current_epoch):
            payload["epoch"] = current_epoch()
        backend = getattr(self.service, "backend", None)
        if backend is not None and hasattr(backend, "num_shards"):
            payload["kind"] = "sharded"
            payload["shards"] = backend.num_shards
            payload["execution_backend"] = getattr(backend, "name", "?")
            health = getattr(backend, "health", None)
            if callable(health):
                payload["replicas"] = {
                    str(shard): entries for shard, entries in health().items()
                }
        else:
            payload["kind"] = "single"
            payload["shards"] = 0
        return payload

    def handle_stats(self) -> dict:
        backend_stats = self.front.backend_stats()
        payload = {
            "front": stats_payload(self.front.stats),
            "backend": stats_payload(backend_stats),
            "caches": {
                "specialization": _cache_payload(self.service.spec_cache_info()),
                "result": _cache_payload(self.service.result_cache_info()),
            },
            "ring": {
                "size": len(self._ring),
                "capacity": self._ring.maxlen,
                "last_seq": self._seq,
            },
            "inflight": self._inflight,
            "draining": self._draining,
        }
        return payload

    def handle_drain(self) -> dict:
        """Graceful shutdown: stop admitting, flush, report counts.

        The draining flag flips *before* the flush starts, so requests
        arriving mid-drain answer 503 instead of racing the shutdown;
        requests already admitted complete (the async layer's
        ``drain()`` guarantees no dropped futures).  Idempotent: repeat
        calls return the original report flagged ``already_drained``.
        """
        with self._drain_lock:
            if self._drain_report is not None:
                return {**self._drain_report, "already_drained": True}
            self._draining = True
            report = asyncio.run_coroutine_threadsafe(
                self.front.drain(), self._loop
            ).result(60)
            report["already_drained"] = False
            self._drain_report = report
            return dict(report)


def _validate_diversify(body: dict, max_batch: int) -> tuple[list[str], bool]:
    """Validate a ``POST /diversify`` body; returns (queries, single?)."""
    if not isinstance(body, dict):
        raise ApiError(422, "invalid_body", "body must be a JSON object")
    unknown = set(body) - {"query", "queries", "timeout_ms"}
    if unknown:
        raise ApiError(
            422, "unknown_field", f"unknown field(s): {', '.join(sorted(unknown))}"
        )
    if ("query" in body) == ("queries" in body):
        raise ApiError(
            422, "invalid_body", "provide exactly one of 'query' or 'queries'"
        )
    if "query" in body:
        query = body["query"]
        if not isinstance(query, str) or not query.strip():
            raise ApiError(422, "invalid_query", "'query' must be a non-empty string")
        return [query], True
    queries = body["queries"]
    if not isinstance(queries, list) or not queries:
        raise ApiError(
            422, "invalid_queries", "'queries' must be a non-empty list of strings"
        )
    if len(queries) > max_batch:
        raise ApiError(
            422, "batch_too_large", f"at most {max_batch} queries per request"
        )
    for query in queries:
        if not isinstance(query, str) or not query.strip():
            raise ApiError(
                422, "invalid_queries", "'queries' entries must be non-empty strings"
            )
    return list(queries), False


def _validate_ingest(body: dict) -> tuple[list[Document], list[str]]:
    """Validate a ``POST /documents`` body.

    Accepts either one document object or the batch form
    ``{"documents": [...], "remove": [...]}`` (both keys optional, not
    both empty).  Returns ``(documents, remove_doc_ids)``.
    """
    if not isinstance(body, dict):
        raise ApiError(422, "invalid_body", "body must be a JSON object")
    if "documents" in body or "remove" in body:
        unknown = set(body) - {"documents", "remove"}
        if unknown:
            raise ApiError(
                422, "unknown_field",
                f"unknown field(s): {', '.join(sorted(unknown))}",
            )
        raw_docs = body.get("documents", [])
        removals = body.get("remove", [])
        if not isinstance(raw_docs, list):
            raise ApiError(
                422, "invalid_documents", "'documents' must be a list of objects"
            )
        if not isinstance(removals, list) or any(
            not isinstance(doc_id, str) or not doc_id for doc_id in removals
        ):
            raise ApiError(
                422, "invalid_remove", "'remove' must be a list of doc_id strings"
            )
        if not raw_docs and not removals:
            raise ApiError(
                422, "invalid_body", "an ingest batch must change the collection"
            )
        return [_validate_document(raw) for raw in raw_docs], list(removals)
    return [_validate_document(body)], []


def _validate_document(raw) -> Document:
    if not isinstance(raw, dict):
        raise ApiError(422, "invalid_document", "each document must be an object")
    unknown = set(raw) - {"doc_id", "text", "title", "metadata"}
    if unknown:
        raise ApiError(
            422, "unknown_field",
            f"unknown document field(s): {', '.join(sorted(unknown))}",
        )
    doc_id = raw.get("doc_id")
    text = raw.get("text")
    if not isinstance(doc_id, str) or not doc_id:
        raise ApiError(
            422, "invalid_document", "'doc_id' must be a non-empty string"
        )
    if not isinstance(text, str) or not text.strip():
        raise ApiError(422, "invalid_document", "'text' must be a non-empty string")
    title = raw.get("title", "")
    if not isinstance(title, str):
        raise ApiError(422, "invalid_document", "'title' must be a string")
    metadata = raw.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ApiError(422, "invalid_document", "'metadata' must be an object")
    return Document(doc_id, text, title=title, metadata=metadata)


def _ingest_error(exc: ValueError) -> ApiError:
    """Map serving-layer ingest rejections onto documented HTTP errors."""
    message = str(exc)
    if "unknown doc_id" in message:
        return ApiError(404, "unknown_document", message)
    if "does not support live ingest" in message:
        return ApiError(409, "ingest_unsupported", message)
    if "duplicate" in message or "already stored" in message:
        return ApiError(409, "conflict", message)
    return ApiError(400, "invalid_ingest", message)


def _validate_timeout(body: dict, default_s: float) -> float:
    timeout_ms = body.get("timeout_ms")
    if timeout_ms is None:
        return default_s
    if not isinstance(timeout_ms, (int, float)) or isinstance(timeout_ms, bool) \
            or timeout_ms <= 0:
        raise ApiError(
            422, "invalid_timeout", "'timeout_ms' must be a positive number"
        )
    return float(timeout_ms) / 1000.0


def _int_param(params: dict, name: str, default: int, low: int, high: int | None) -> int:
    raw = params.get(name, [None])[0]
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(
            400, f"bad_{name}", f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < low:
        raise ApiError(400, f"bad_{name}", f"{name} must be >= {low}")
    if high is not None and value > high:
        value = high  # clamp, Paper-Scanner style (limit caps at max)
    return value


def _make_handler(api: DiversificationHTTPServer):
    """Bind the handler class to one server instance (the ``api``)."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serving/1"
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # measurement harness: no per-request stderr chatter

        # -- plumbing ------------------------------------------------------------

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, error: ApiError) -> None:
            self._reply(
                error.status,
                {"error": {"code": error.code, "message": error.message}},
            )

        def _read_body(self) -> dict:
            length = self.headers.get("Content-Length")
            if length is None:
                raise ApiError(400, "missing_body", "a JSON body is required")
            try:
                raw = self.rfile.read(int(length))
            except ValueError:
                raise ApiError(
                    400, "bad_length", "Content-Length must be an integer"
                ) from None
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ApiError(400, "bad_json", f"body is not valid JSON: {exc}") \
                    from None

        def _dispatch(self, method: str) -> None:
            url = urlsplit(self.path)
            params = parse_qs(url.query)
            try:
                # /documents/{id} is the one non-exact route: the
                # trailing path segment is the document id.
                if url.path.startswith("/documents/"):
                    doc_id = unquote(url.path[len("/documents/"):])
                    if method != "DELETE":
                        raise ApiError(
                            405, "method_not_allowed",
                            f"{method} is not supported on /documents/{{id}}",
                        )
                    self._reply(200, api.handle_remove(doc_id))
                    return
                route = ROUTES.get((method, url.path))
                if route is None:
                    if any(path == url.path for _, path in ROUTES):
                        raise ApiError(
                            405, "method_not_allowed",
                            f"{method} is not supported on {url.path}",
                        )
                    raise ApiError(404, "not_found", f"no route for {url.path}")
                self._reply(200, route(self, params))
            except ApiError as error:
                self._error(error)
            except Exception as exc:  # pragma: no cover - defensive surface
                self._error(ApiError(500, "internal", f"{type(exc).__name__}: {exc}"))

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("POST")

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
            self._dispatch("DELETE")

        # -- routes --------------------------------------------------------------

        def _route_diversify(self, params):
            return api.handle_diversify(self._read_body())

        def _route_ingest(self, params):
            return api.handle_ingest(self._read_body())

        def _route_results(self, params):
            return api.handle_results(params)

        def _route_health(self, params):
            return api.handle_health()

        def _route_stats(self, params):
            return api.handle_stats()

        def _route_drain(self, params):
            return api.handle_drain()

    ROUTES = {
        ("POST", "/diversify"): Handler._route_diversify,
        ("POST", "/documents"): Handler._route_ingest,
        ("GET", "/results"): Handler._route_results,
        ("GET", "/health"): Handler._route_health,
        ("GET", "/stats"): Handler._route_stats,
        ("POST", "/drain"): Handler._route_drain,
    }

    return Handler

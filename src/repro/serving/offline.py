"""Partition-parallel offline pipeline: build the partitioned index on a
pluggable execution backend.

The paper's efficiency story rests on an *offline* phase — mine the
query log, precompute per-specialization result lists and snippet
vectors — amortising into a fast online path.  PR 2–4 scaled the online
path out (hash-routed shards over inline/thread/process backends); this
module scales the offline phase the same way, with the same substrate:

* :func:`build_partitioned_engine` hash-partitions the collection once,
  then builds the N :class:`~repro.retrieval.index.InvertedIndex`
  partitions of a
  :class:`~repro.retrieval.sharding.PartitionedSearchEngine` *wherever
  the chosen* :class:`~repro.serving.backends.ExecutionBackend` *places
  them* — the calling thread, a thread pool, or real OS worker
  processes — and assembles the engine from the gathered indexes with
  collection-global statistics, so the result is **identical** (scores
  included) to the serially constructed engine; the test suite asserts
  it across every backend.
* Each partition build is timed and memory-accounted where it runs,
  reported through a mergeable
  :class:`~repro.retrieval.sharding.BuildReport` whose merged form
  carries both the scatter/gather wall-clock and the summed
  per-partition busy time — the exact discipline the warm fan-out's
  :class:`~repro.serving.service.WarmReport` follows.

The warm half of the offline phase already fans out per-shard
(:meth:`~repro.serving.sharded.ShardedDiversificationService.warm`) and
persists per-partition
(:meth:`~repro.serving.sharded.ShardedDiversificationService.save_warm`
→ ``warm_artifacts_dir`` hydration, in parallel, on restart);
``python -m repro.experiments.offline`` drives the whole pipeline —
parallel build, parallel warm, persistence round-trip — end to end with
an identity check and a ``--save-stats`` benchmark record.

Every travelling type here pickles (collections, analyzers, indexes,
reports), so the pipeline is spawn-safe: a
:class:`~repro.serving.backends.ProcessBackend` with
``start_method="spawn"`` builds partitions in fresh interpreters, and
the opt-in spawn test lane pins it.
"""

from __future__ import annotations

import dataclasses
import time

from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import DocumentCollection
from repro.retrieval.index import InvertedIndex
from repro.retrieval.sharding import (
    BuildReport,
    PartitionedSearchEngine,
    partition_collection,
)
from repro.serving.backends import ExecutionBackend, make_backend

__all__ = [
    "PartitionBuildFactory",
    "build_partitioned_engine",
    "persist_store",
]


class _PartitionBuilder:
    """Worker-side build service for one index partition.

    The execution backends address *services* by shard id and method
    name; this is the build phase's service — one method, ``build()``,
    which indexes the partition where the service lives and returns the
    index together with its timed, memory-estimated
    :class:`~repro.retrieval.sharding.BuildReport`.  On a process
    backend both travel back to the parent as pickles, exactly like
    stats snapshots do during serving.
    """

    def __init__(
        self, part: DocumentCollection, shard: int, analyzer: Analyzer
    ) -> None:
        self._part = part
        self._shard = shard
        self._analyzer = analyzer

    def build(self) -> tuple[InvertedIndex, BuildReport]:
        start = time.perf_counter()
        index = InvertedIndex.from_collection(self._part, self._analyzer)
        seconds = time.perf_counter() - start
        return index, BuildReport.from_index(
            index, seconds, name=f"partition{self._shard}"
        )


@dataclasses.dataclass(frozen=True)
class PartitionBuildFactory:
    """Build one partition's :class:`_PartitionBuilder` — the build
    phase's counterpart of
    :class:`~repro.serving.sharded.ShardServiceFactory`.

    Holds the already-partitioned sub-collections so every worker
    indexes exactly the documents the parent's router placed, and the
    assembled engine is *provably* the serial engine.  The dataclass and
    everything it holds pickle, so the factory travels under ``spawn``
    and ``forkserver`` as well as ``fork``.
    """

    partitions: tuple[DocumentCollection, ...]
    analyzer: Analyzer

    def __call__(self, shard: int) -> _PartitionBuilder:
        return _PartitionBuilder(self.partitions[shard], shard, self.analyzer)


def build_partitioned_engine(
    collection: DocumentCollection,
    num_partitions: int = 2,
    *,
    backend: "str | ExecutionBackend | None" = "thread",
    max_workers: int | None = None,
    start_method: str | None = None,
    model=None,
    analyzer: Analyzer | None = None,
    snippet_extractor=None,
    vector_cache_size: int = 0,
    seed: int = 0,
) -> tuple[PartitionedSearchEngine, BuildReport]:
    """Build a :class:`PartitionedSearchEngine` partition-parallel.

    Partitions *collection* with the same seeded router the serial
    constructor uses, builds every partition index on *backend*
    (``"inline"`` / ``"thread"`` / ``"process"``, a pre-configured
    :class:`~repro.serving.backends.ExecutionBackend` instance, or
    ``None`` for the default thread pool), gathers the indexes, and
    assembles the engine with collection-global statistics — validated
    document-for-document, so rankings *and scores* are identical to
    ``PartitionedSearchEngine(collection, num_partitions, ...)`` built
    serially, which is itself ranking-identical to a single undivided
    engine.

    Returns ``(engine, report)`` where *report* is the merged
    :class:`~repro.retrieval.sharding.BuildReport`: ``seconds`` is the
    scatter/gather wall-clock measured here, ``busy_seconds`` the
    summed per-partition build time, and ``shards`` the per-partition
    reports (zero-document partitions included, well-formed) with each
    partition's estimated resident bytes.

    The backend is *consumed*: it is started for the build and closed
    before returning (a process backend cannot be restarted, and the
    builder services it holds are useless after assembly).  Pass a
    fresh backend spec per build — and a fresh one for the serving
    cluster that follows.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    analyzer = analyzer or Analyzer()
    start = time.perf_counter()
    parts = partition_collection(collection, num_partitions, seed)
    resolved = make_backend(
        backend, max_workers=max_workers, start_method=start_method
    )
    try:
        resolved.start(
            PartitionBuildFactory(tuple(parts), analyzer), num_partitions
        )
        done = resolved.broadcast("build")
    finally:
        resolved.close()
    indexes: list[InvertedIndex] = []
    reports: list[BuildReport] = []
    for shard in range(num_partitions):
        index, report = done[shard]
        indexes.append(index)
        reports.append(report)
    engine = PartitionedSearchEngine(
        collection,
        num_partitions,
        model=model,
        analyzer=analyzer,
        snippet_extractor=snippet_extractor,
        vector_cache_size=vector_cache_size,
        seed=seed,
        partition_collections=parts,
        partition_indexes=indexes,
    )
    merged = dataclasses.replace(
        BuildReport.merge(reports), seconds=time.perf_counter() - start
    )
    return engine, merged


def persist_store(path, engine, cluster=None):
    """Persist the offline phase's outputs as one durable index store.

    The final step of a store-producing offline pipeline (``python -m
    repro.experiments.offline --store PATH``): writes *engine*'s
    partitions, documents and collection-global statistics — plus, when
    a warmed *cluster*
    (:class:`~repro.serving.sharded.ShardedDiversificationService`) is
    given, every shard's warm artifacts collected over its execution
    backend — into a single SQLite file via
    :func:`repro.retrieval.store.write_store`.  Serving processes then
    cold-start by *attaching* the store
    (:class:`~repro.retrieval.store.StoreBackedSearchEngine`, or
    ``warm_store=`` on the serving factories) in O(attach) instead of
    re-running this pipeline.  Returns the written
    :class:`~pathlib.Path`.
    """
    from repro.retrieval.store import write_store

    warm_payloads = cluster.warm_payloads() if cluster is not None else None
    return write_store(path, engine, warm_payloads)

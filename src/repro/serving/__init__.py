"""Serving subsystem: the online face of the reproduction.

The core library diversifies one query at a time; this package turns it
into a servable system with an explicit offline/online lifecycle:

* :class:`~repro.serving.service.DiversificationService` — ``warm()``
  precomputes specialization artifacts (the paper's Section 4.1 offline
  phase), ``diversify_batch()`` serves traffic with deduplication,
  bounded LRU caching and per-query latency/throughput accounting;
* :class:`~repro.core.cache.LRUCache` (re-exported) — the bounded cache
  shared with the framework and the search engine.

See ``examples/quickstart.py`` for the end-to-end flow and
``repro.experiments.throughput`` for the batch-vs-loop measurement.
"""

from repro.core.cache import CacheStats, LRUCache
from repro.serving.service import (
    DiversificationService,
    PreparedQuery,
    ServiceStats,
    WarmReport,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "DiversificationService",
    "PreparedQuery",
    "ServiceStats",
    "WarmReport",
]

"""Serving subsystem: the online face of the reproduction.

The core library diversifies one query at a time; this package turns it
into a servable system with an explicit offline/online lifecycle, then
grows it past one worker:

* :class:`~repro.serving.service.DiversificationService` — ``warm()``
  precomputes specialization artifacts (the paper's Section 4.1 offline
  phase), ``diversify_batch()`` serves traffic with deduplication,
  bounded LRU caching and per-query latency/throughput accounting;
* :class:`~repro.serving.sharded.ShardedDiversificationService` — N
  hash-routed service shards behind the same API: queries route by the
  process-stable :func:`~repro.retrieval.sharding.stable_shard`, the
  offline and online phases fan out per-shard over a pluggable
  execution backend, and :class:`ServiceStats` /
  :class:`~repro.core.cache.CacheStats` / :class:`WarmReport` merge
  into cluster-level summaries with per-shard breakdowns.  The cluster
  serves rankings identical to the unsharded service under every
  backend;
* :mod:`~repro.serving.backends` — the execution substrates:
  :class:`InlineBackend` (ordered sweep, the reference),
  :class:`ThreadBackend` (GIL-bound fan-out; wins once the numpy
  kernels dominate) and :class:`ProcessBackend` (real OS processes
  with per-worker warm state — the multi-core path).  Warm artifacts
  persist via ``save_warm``/``load_warm`` so worker processes hydrate
  from disk instead of re-deriving the offline phase;
* :mod:`~repro.serving.replication` — R-way shard replication over
  process workers: a :class:`ReplicaSet` per shard with routing-aware
  load balancing (round-robin / least-outstanding), optional hedged
  requests for tail control, health checks, and automatic
  respawn-and-rehydrate from the warm store on crash.  Every replica is
  built by the same deterministic factory, so results stay
  byte-identical no matter which replica answers — including
  mid-benchmark kills;
* :mod:`~repro.serving.offline` — the partition-parallel offline
  pipeline: :func:`build_partitioned_engine` builds the N inverted-index
  partitions of a
  :class:`~repro.retrieval.sharding.PartitionedSearchEngine` on any of
  the execution backends (ranking- and score-identical to the serial
  build) with per-partition build-time and memory accounting in a
  mergeable :class:`~repro.retrieval.sharding.BuildReport`;
* :class:`~repro.serving.async_service.AsyncDiversificationService` —
  the asyncio micro-batching front-end: single-query ``await
  submit(query)`` calls coalesce under a size/time admission window
  (bounded queue, backpressure) into batches dispatched to either
  service above on an executor, with batch-formation accounting in
  :class:`ServiceStats`.  Results are identical to a direct
  ``diversify_batch`` call;
* :class:`~repro.serving.http.DiversificationHTTPServer` — the network
  face: a stdlib-only REST front-end (``ThreadingHTTPServer`` bridging
  into the async service's admission windows) with ``POST /diversify``,
  paginated ``GET /results``, ``GET /health`` / ``GET /stats``
  operational surfaces and ``POST /drain`` for graceful rolling
  restarts.  Responses are field-identical to a direct
  ``diversify_batch`` on the wrapped backend;
* :class:`~repro.core.cache.LRUCache` (re-exported) — the bounded cache
  shared with the framework and the search engine.

Services built without an explicit diversifier inherit the framework's
kernel default: selection-identical numpy kernels when numpy is present,
the pure-Python references otherwise (see
:func:`repro.core.framework.default_diversifier`).

See ``examples/quickstart.py`` for the end-to-end flow and
``repro.experiments.throughput`` for the batch-vs-loop and 1-vs-N-shard
measurements.
"""

from repro.core.cache import CacheStats, LRUCache
from repro.serving.async_service import (
    AsyncDiversificationService,
    LoopClock,
    ServiceClosed,
)
from repro.serving.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerDiedError,
    make_backend,
)
from repro.serving.http import (
    ApiError,
    DiversificationHTTPServer,
    result_payload,
    stats_payload,
)
from repro.serving.offline import (
    PartitionBuildFactory,
    build_partitioned_engine,
    persist_store,
)
from repro.serving.replication import (
    REPLICA_POLICIES,
    ReplicaSet,
    ReplicaSetStats,
    ReplicaWorker,
    ReplicatedBackend,
)
from repro.serving.service import (
    DiversificationService,
    PreparedQuery,
    ServiceStats,
    WarmReport,
)
from repro.serving.sharded import ShardedDiversificationService, ShardServiceFactory

__all__ = [
    "ApiError",
    "AsyncDiversificationService",
    "BACKEND_NAMES",
    "BackendError",
    "CacheStats",
    "DiversificationHTTPServer",
    "ExecutionBackend",
    "InlineBackend",
    "LRUCache",
    "LoopClock",
    "DiversificationService",
    "PartitionBuildFactory",
    "PreparedQuery",
    "ProcessBackend",
    "REPLICA_POLICIES",
    "ReplicaSet",
    "ReplicaSetStats",
    "ReplicaWorker",
    "ReplicatedBackend",
    "build_partitioned_engine",
    "persist_store",
    "result_payload",
    "ServiceClosed",
    "stats_payload",
    "ServiceStats",
    "ShardServiceFactory",
    "ShardedDiversificationService",
    "ThreadBackend",
    "WarmReport",
    "WorkerDiedError",
    "make_backend",
]

"""Pluggable execution backends for the sharded serving layer.

PR 2 measured the N-shard cluster at ~1.00x over one shard: the fan-out
ran on a thread pool, and the pure-Python pipeline is GIL-bound, so N
shards took turns on one core.  This module makes the *execution
substrate* a first-class, swappable object so the same
:class:`~repro.serving.sharded.ShardedDiversificationService` can fan
out three ways:

* :class:`InlineBackend` — an ordered sweep on the calling thread.  Zero
  overhead, fully deterministic; the reference the identity tests
  compare everything against.
* :class:`ThreadBackend` — the PR-2 behaviour: a lazily created
  ``ThreadPoolExecutor``.  Pays off once the numpy kernels (which
  release the GIL) dominate; parity otherwise.
* :class:`ProcessBackend` — real OS processes, one pipe-driven worker
  owning one or more shards.  Each worker *builds its own* shard
  services from a factory (under ``fork`` the factory is inherited, so
  closures work; under ``spawn``/``forkserver`` it must pickle), then
  answers addressed calls ``(shard, method, args)`` until stopped.
  Results, stats snapshots and warm reports travel back as pickles —
  which is why the core types (``FrameworkConfig``, specialization sets,
  tasks, ``LRUCache``, the stats dataclasses) all round-trip cleanly.

A backend is a shard-addressed RPC surface, not a pool: ``start()``
builds the shard services, ``invoke_each()`` runs a list of
``(shard, method, args)`` calls and returns ``{shard: result}``, and
``close()`` releases whatever the backend holds.  The sharded service
owns routing and merging; backends own *where the work runs*.
"""

from __future__ import annotations

import os
import threading
import traceback
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

__all__ = [
    "BackendError",
    "WorkerDiedError",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKEND_NAMES",
    "make_backend",
]

#: One shard-addressed call: (shard id, service method name, positional args).
ShardCall = tuple[int, str, tuple]


class BackendError(RuntimeError):
    """A backend-level failure: a worker died, failed to build its
    services, or was used before ``start()`` / after ``close()``."""


class WorkerDiedError(BackendError):
    """A worker process/replica died (crash, kill, or hung past its
    deadline) while it still owed work.

    Subclasses :class:`BackendError` so existing callers that catch the
    broad class keep working; carries enough structure — the shards the
    worker owned, its replica index, and the OS exit code when known —
    for respawn logic (and tests) to react without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        shards: Sequence[int] = (),
        replica: int | None = None,
        exitcode: int | None = None,
    ) -> None:
        super().__init__(message)
        self.shards = tuple(shards)
        self.replica = replica
        self.exitcode = exitcode

    @property
    def shard(self) -> int | None:
        """The first (often only) shard the dead worker owned."""
        return self.shards[0] if self.shards else None


class ExecutionBackend(ABC):
    """Where per-shard service calls execute.

    Lifecycle: ``start(service_factory, num_shards)`` once, any number of
    ``invoke``/``invoke_each``/``broadcast`` calls, then ``close()``
    (idempotent; also available as a context manager).  ``service_factory``
    is called as ``factory(shard) -> DiversificationService`` wherever the
    backend decides that shard lives.
    """

    name: str = "?"

    def __init__(self) -> None:
        self._num_shards = 0

    @property
    def started(self) -> bool:
        return self._num_shards > 0

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def local_services(self):
        """The shard services when they live in this process, else ``None``.

        The sharded service uses this to keep its zero-copy paths (and
        its ``services`` property) on in-process backends; against a
        :class:`ProcessBackend` every interaction goes through
        :meth:`invoke_each`.
        """
        return None

    @property
    def replicas(self) -> int:
        """Copies of each shard service this backend runs (1 unless the
        backend replicates — see ``repro.serving.replication``)."""
        return 1

    def invoke_replicas(self, shard: int, method: str, *args) -> list:
        """Run one call on *every* replica of a shard, primary first.

        The single-replica default is just :meth:`invoke` in a list; the
        replicated backend overrides this so the sharded service can
        collect per-replica stats and cache info.
        """
        return [self.invoke(shard, method, *args)]

    def replication_stats(self) -> dict:
        """Routing-layer counters per shard (hedges, respawns,
        failovers) — empty unless the backend replicates."""
        return {}

    @abstractmethod
    def start(self, service_factory: Callable[[int], object], num_shards: int) -> None:
        """Build *num_shards* shard services via ``service_factory``."""

    @abstractmethod
    def invoke_each(self, calls: Sequence[ShardCall]) -> dict[int, object]:
        """Run every ``(shard, method, args)`` call; return ``{shard: result}``.

        At most one call per shard per batch (the sharded service's
        fan-outs are per-shard already).  Exceptions raised by a shard
        method propagate to the caller.
        """

    def invoke(self, shard: int, method: str, *args) -> object:
        """Run one call on one shard and return its result."""
        return self.invoke_each([(shard, method, args)])[shard]

    def broadcast(self, method: str, *args) -> dict[int, object]:
        """Run the same call on every shard."""
        self._require_started()
        return self.invoke_each(
            [(shard, method, args) for shard in range(self._num_shards)]
        )

    def close(self) -> None:
        """Release execution resources (idempotent).  In-process backends
        stay usable afterwards (they fall back to inline sweeps);
        a closed :class:`ProcessBackend` is gone for good."""

    def _require_started(self) -> None:
        if not self.started:
            raise BackendError(f"{type(self).__name__} has not been started")

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"shards={self._num_shards}" if self.started else "unstarted"
        return f"{type(self).__name__}({state})"


class _LocalBackend(ExecutionBackend):
    """Shared machinery of the backends whose services live in-process."""

    def __init__(self) -> None:
        super().__init__()
        self._services: list = []

    def start(self, service_factory: Callable[[int], object], num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.adopt([service_factory(shard) for shard in range(num_shards)])

    def adopt(self, services: Sequence[object]) -> None:
        """Attach already-built shard services (the pre-backend
        construction path of ``ShardedDiversificationService``)."""
        services = list(services)
        if not services:
            raise ValueError("at least one shard service is required")
        if self.started:
            raise BackendError(f"{type(self).__name__} is already started")
        self._services = services
        self._num_shards = len(services)

    @property
    def local_services(self):
        return tuple(self._services) if self.started else None

    def _call(self, shard: int, method: str, args: tuple) -> object:
        return getattr(self._services[shard], method)(*args)


class InlineBackend(_LocalBackend):
    """Ordered sequential sweep on the calling thread — the reference."""

    name = "inline"

    def invoke_each(self, calls: Sequence[ShardCall]) -> dict[int, object]:
        self._require_started()
        return {shard: self._call(shard, method, args) for shard, method, args in calls}


class ThreadBackend(_LocalBackend):
    """Thread-pool fan-out over in-process shard services.

    ``max_workers`` defaults to ``min(num_shards, os.cpu_count())`` at
    start time — on a single-core host the fan-out degenerates to an
    ordered sweep (no pool overhead), which is the right call for the
    GIL-bound pure-Python pipeline; the numpy kernels release the GIL
    inside their matmuls, so wider pools pay off as task sizes grow.
    """

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        if self._max_workers is not None:
            return max(1, self._max_workers)
        shards = self._num_shards or 1
        return max(1, min(shards, os.cpu_count() or 1))

    def invoke_each(self, calls: Sequence[ShardCall]) -> dict[int, object]:
        self._require_started()
        if self.max_workers == 1 or len(calls) <= 1:
            return {
                shard: self._call(shard, method, args)
                for shard, method, args in calls
            }
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-shard",
            )
        futures = {
            shard: self._pool.submit(self._call, shard, method, args)
            for shard, method, args in calls
        }
        return {shard: future.result() for shard, future in futures.items()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

def check_factory_pickles(service_factory, method: str) -> None:
    """Fail fast when *method* needs a picklable factory and this one
    is not — naming the factory protocol instead of letting a raw
    ``PicklingError`` traceback surface from inside a worker.

    The probe walks the whole object graph (that is what makes it
    reliable — multiprocessing will pickle the same graph into each
    worker moments later) but streams into a discarding sink, so a
    factory closing over a large workload costs one CPU pass, not a
    resident copy of its serialized bytes.
    """
    import pickle

    class _NullSink:
        def write(self, data) -> int:
            return len(data)

    try:
        pickle.Pickler(_NullSink(), pickle.HIGHEST_PROTOCOL).dump(
            service_factory
        )
    except Exception as exc:
        if type(service_factory).__name__ == "ShardServiceFactory":
            detail = (
                "the ShardServiceFactory's framework_factory must "
                "itself pickle (a module-level callable or a "
                "picklable dataclass, not a closure/lambda)"
            )
        else:
            detail = (
                "pass a picklable factory — e.g. a "
                "ShardServiceFactory wrapping a module-level "
                "framework factory"
            )
        raise BackendError(
            f"service factory {service_factory!r} does not pickle, "
            f"but start method {method!r} builds each worker in a "
            f"fresh interpreter; {detail}, or use "
            f"start_method='fork' where the platform offers it "
            f"(pickle error: {exc})"
        ) from exc


def _worker_main(conn, service_factory, shard_ids) -> None:
    """Worker body: build the owned shards, then serve addressed calls.

    Protocol (all over one duplex pipe, strictly request/reply in order):

    * handshake: ``("ready", None)`` or ``("failed", message)``;
    * request  : ``(shard, method, args)``; ``None`` means stop;
    * reply    : ``("ok", result)`` or ``("err", (exception, traceback))``.
    """
    try:
        services = {shard: service_factory(shard) for shard in shard_ids}
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        try:
            conn.send(("failed", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        shard, method, args = message
        try:
            result = getattr(services[shard], method)(*args)
            conn.send(("ok", result))
        except BaseException as exc:  # noqa: BLE001 - ship it back instead
            payload = (exc, traceback.format_exc())
            try:
                conn.send(("err", payload))
            except Exception:
                # The exception itself would not pickle; degrade to repr.
                conn.send(
                    ("err", (BackendError(f"{type(exc).__name__}: {exc}"),
                             traceback.format_exc()))
                )
    conn.close()


class ProcessBackend(ExecutionBackend):
    """Shard services in real OS processes — the multi-core fan-out.

    ``start()`` spawns ``min(num_shards, max_workers)`` long-lived
    workers; shards are assigned round-robin, and each worker builds its
    own services with the factory, so per-shard warm state (spec caches,
    result LRUs, stats) lives — and stays — in the worker.  Calls are
    pipelined: one request per addressed worker goes out before any
    reply is awaited, so a batch fan-out keeps every core busy.

    Parameters
    ----------
    max_workers:
        Cap on worker processes.  Defaults to one worker per shard (the
        OS scheduler multiplexes them onto the available cores).
    start_method:
        ``multiprocessing`` start method, honoured exactly when given
        (``"fork"``, ``"spawn"``, ``"forkserver"``; a method the
        platform does not offer fails at :meth:`start`).  ``None`` uses
        the *platform default* — ``fork`` on Linux, ``spawn`` on macOS
        and Windows — instead of forcing ``fork`` wherever it exists:
        forking a multi-threaded parent is unsafe and emits
        ``DeprecationWarning`` on Python 3.12+, so the platform's own
        judgement is the sane default.  Under ``fork`` the factory and
        its closed-over workload are inherited for free; under
        ``spawn``/``forkserver`` the factory must pickle, which
        :meth:`start` verifies *before* spawning anything so a closure
        factory fails fast with a clear message instead of a raw pickle
        traceback out of a half-started worker.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._start_method = start_method
        self._resolved_start_method: str | None = None
        self._workers: list = []          # mp.Process, worker order
        self._conns: list = []            # parent end of each worker pipe
        self._worker_of: dict[int, int] = {}  # shard -> worker index
        self._owned: list[list[int]] = []     # worker index -> its shards
        self._lock = threading.Lock()
        self._closed = False
        self._broken = False  # a worker died mid-batch; replies may be lost

    @property
    def start_method(self) -> str | None:
        """The effective start method: the explicit one before
        :meth:`start`, the resolved one (platform default when ``None``
        was given) afterwards."""
        return self._resolved_start_method or self._start_method

    def _check_factory_pickles(self, service_factory, method: str) -> None:
        check_factory_pickles(service_factory, method)

    def start(self, service_factory: Callable[[int], object], num_shards: int) -> None:
        import multiprocessing as mp

        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.started or self._closed:
            raise BackendError("ProcessBackend cannot be restarted")
        if self._start_method is not None:
            if self._start_method not in mp.get_all_start_methods():
                raise BackendError(
                    f"start method {self._start_method!r} is not available "
                    f"on this platform (offers: "
                    f"{mp.get_all_start_methods()})"
                )
            ctx = mp.get_context(self._start_method)
        else:
            ctx = mp.get_context()  # the platform default, not forced fork
        self._resolved_start_method = ctx.get_start_method()
        if self._resolved_start_method != "fork":
            self._check_factory_pickles(
                service_factory, self._resolved_start_method
            )
        workers = min(num_shards, max(1, self._max_workers or num_shards))
        owned: list[list[int]] = [[] for _ in range(workers)]
        for shard in range(num_shards):
            owned[shard % workers].append(shard)
            self._worker_of[shard] = shard % workers
        self._owned = owned
        for index, shard_ids in enumerate(owned):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, service_factory, shard_ids),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)
        # Fail fast: a factory that cannot build (or cannot reach) the
        # worker surfaces here, not on the first real call.
        for index, conn in enumerate(self._conns):
            status, detail = self._recv(index, conn)
            if status != "ready":
                message = detail if status == "failed" else f"unexpected {status!r}"
                self.close()
                raise BackendError(
                    f"worker {index} failed to build its shard services: {message}"
                )
        self._num_shards = num_shards

    def _dead_worker_error(self, index: int, exc: BaseException) -> WorkerDiedError:
        code = self._workers[index].exitcode
        shards = self._owned[index] if index < len(self._owned) else ()
        named = f" (shards {list(shards)})" if shards else ""
        return WorkerDiedError(
            f"shard worker {index}{named} died (exitcode={code}) — "
            "its shard state is lost; rebuild the cluster",
            shards=shards,
            exitcode=code,
        )

    def _recv(self, index: int, conn) -> tuple:
        try:
            return conn.recv()
        except (EOFError, OSError) as exc:
            raise self._dead_worker_error(index, exc) from exc

    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, OSError) as exc:
            self._broken = True
            raise self._dead_worker_error(index, exc) from exc

    def invoke_each(self, calls: Sequence[ShardCall]) -> dict[int, object]:
        self._require_started()
        if self._closed:
            raise BackendError("ProcessBackend is closed")
        if self._broken:
            raise BackendError(
                "ProcessBackend lost a worker mid-batch; rebuild the cluster"
            )
        results: dict[int, object] = {}
        with self._lock:
            # Pipeline: every worker gets its requests before any reply
            # is read, so distinct workers run their shards concurrently.
            per_worker: dict[int, list[ShardCall]] = {}
            for call in calls:
                shard = call[0]
                if shard not in self._worker_of:
                    raise BackendError(f"unknown shard {shard}")
                per_worker.setdefault(self._worker_of[shard], []).append(call)
            # One request outstanding per worker: every worker gets its
            # first request up front (distinct workers compute
            # concurrently), and each follow-up is sent only after the
            # previous reply has been drained.  A worker serves its
            # shards sequentially anyway, so this loses no parallelism —
            # and it makes the protocol immune to pipe-buffer deadlock
            # (send-everything-first can block the parent on a full
            # request buffer while the worker blocks on a full reply
            # buffer nobody is reading).
            for index, worker_calls in per_worker.items():
                self._send(index, worker_calls[0])
            # Drain *every* expected reply before surfacing a failure:
            # leaving a reply buffered would desync the request/reply
            # protocol and hand the next batch stale data.  Only a dead
            # worker aborts the drain — its pipe is gone, other pipes
            # may still hold replies, so the backend poisons itself.
            failure: tuple[BaseException, BackendError] | None = None
            for index, worker_calls in per_worker.items():
                conn = self._conns[index]
                for position, (shard, method, _args) in enumerate(worker_calls):
                    try:
                        status, payload = self._recv(index, conn)
                    except BackendError:
                        self._broken = True
                        raise
                    if position + 1 < len(worker_calls):
                        self._send(index, worker_calls[position + 1])
                    if status == "ok":
                        results[shard] = payload
                    elif failure is None:
                        exc, tb = payload
                        failure = (
                            exc,
                            BackendError(
                                f"shard {shard} ({method}) failed in "
                                f"worker {index}:\n{tb}"
                            ),
                        )
            if failure is not None:
                raise failure[0] from failure[1]
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for conn in self._conns:
                try:
                    conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
            for process in self._workers:
                process.join(timeout=10)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5)
            for conn in self._conns:
                conn.close()
            self._workers = []
            self._conns = []


#: The built-in backend names, in "most deterministic first" order.
BACKEND_NAMES = ("inline", "thread", "process")


def make_backend(
    backend: "str | ExecutionBackend | None",
    max_workers: int | None = None,
    start_method: str | None = None,
    replicas: int = 1,
    policy: str = "round-robin",
    hedge_after_ms: float | None = None,
) -> ExecutionBackend:
    """Resolve a backend spec — a name, an instance, or ``None``.

    ``None`` yields the default :class:`ThreadBackend` (the PR-2
    behaviour).  An instance passes through untouched, so callers can
    hand in a pre-configured :class:`ProcessBackend` (custom start
    method, worker cap) or anything else satisfying the protocol.
    ``start_method`` configures a :class:`ProcessBackend` built here by
    name; combining it with any other spec is an error rather than a
    silent no-op.

    ``replicas > 1`` builds a ``ReplicatedBackend`` — R process workers
    per shard with failover and respawn (see
    ``repro.serving.replication``).  Replication only makes sense over
    process workers (in-process shards share one interpreter, so a
    "crash" would take every replica with it), so it is valid with
    ``backend`` of ``None`` or ``"process"`` only; ``policy`` and
    ``hedge_after_ms`` tune its routing and are rejected without it.
    """
    if start_method is not None and backend != "process" and replicas <= 1:
        raise ValueError(
            f"start_method={start_method!r} only applies to the "
            f"'process' backend, not {backend!r}"
        )
    if replicas > 1:
        if isinstance(backend, ExecutionBackend):
            raise ValueError(
                "replicas=N configures a backend built here by name; "
                "pass a configured ReplicatedBackend instance instead"
            )
        if backend not in (None, "process", "replicated"):
            raise ValueError(
                f"replicas={replicas} requires process workers (backend "
                f"None or 'process', got {backend!r}): in-process shards "
                "share one interpreter, so replication could not survive "
                "a crash"
            )
        from repro.serving.replication import ReplicatedBackend

        return ReplicatedBackend(
            replicas=replicas,
            policy=policy,
            hedge_after_ms=hedge_after_ms,
            start_method=start_method,
        )
    if hedge_after_ms is not None:
        raise ValueError("hedge_after_ms requires replicas > 1")
    if policy != "round-robin":
        raise ValueError(f"policy={policy!r} requires replicas > 1")
    if backend is None:
        return ThreadBackend(max_workers=max_workers)
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        names = {
            "inline": InlineBackend,
            "thread": ThreadBackend,
            "process": ProcessBackend,
        }
        try:
            factory = names[backend.lower()]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {sorted(names)}"
            ) from None
        if factory is InlineBackend:
            return InlineBackend()
        if factory is ProcessBackend:
            return ProcessBackend(
                max_workers=max_workers, start_method=start_method
            )
        return factory(max_workers=max_workers)
    raise TypeError(f"backend must be a name or ExecutionBackend, got {backend!r}")

"""Batched serving layer over the diversification framework.

The paper's feasibility argument (Section 4.1) splits the system into an
*offline* phase — mine specializations, precompute their small result
lists R_q' and snippet vectors — and an *online* phase that only reads
those artifacts while re-ranking.  :class:`DiversificationService` makes
that split explicit on top of
:class:`~repro.core.framework.DiversificationFramework`:

* :meth:`warm` is the offline phase: run Algorithm 1 over an expected
  query workload and prefetch every mined specialization's artifacts
  into the framework's bounded LRU, batching the engine lookups;
* :meth:`diversify` / :meth:`diversify_batch` are the online phase:
  bounded result caching, deduplicated detection, one batched
  specialization prefetch per batch, and per-query latency accounting.

``diversify_batch`` is the throughput entry point: a batch of Q queries
with U distinct queries runs U pipelines instead of Q, and all U share
one specialization prefetch — which is what the Table 2/3 harnesses and
the serving benchmark drive end-to-end.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.ambiguity import SpecializationSet
from repro.core.cache import CacheStats, LRUCache
from repro.core.framework import DiversificationFramework, DiversifiedResult
from repro.core.profiling import NULL_TIMER
from repro.core.task import DiversificationTask
from repro.retrieval.engine import ResultList

try:  # numpy is optional; without it the per-query loop is the only path
    from repro.core import fast as _fast
except ImportError:  # pragma: no cover - environment dependent
    _fast = None

__all__ = [
    "PreparedQuery",
    "WarmReport",
    "ServiceStats",
    "DiversificationService",
    "plan_fusion_groups",
    "MIN_FILL_RATIO",
    "MIN_GROUP_SIZE",
]

#: A fused group must keep at least this fraction of its stacked tensor
#: holding real data.  Below 0.5 the padding more than doubles the
#: arithmetic, at which point per-query kernels are the better deal.
MIN_FILL_RATIO = 0.5

#: Stacking fewer queries than this cannot amortise the padding and
#: stacking overhead — singletons run the plain per-query kernel.
MIN_GROUP_SIZE = 2


def plan_fusion_groups(
    shapes: Sequence[tuple[int, int]],
    min_fill_ratio: float = MIN_FILL_RATIO,
) -> list[list[int]]:
    """Bucket task indices into pad-efficient stacking groups.

    ``shapes`` holds, per task, the (rows, cols) of the dominant tensor
    it would contribute to a fused stack
    (:func:`repro.core.fast.fused_shape`).  Greedy policy: visit tasks
    in descending tensor-area order (stable on the original index for
    equal areas) and keep appending to the current group while its fill
    ratio — Σ real cells over B·rows_pad·cols_pad — stays at or above
    *min_fill_ratio*; a task that would dilute the group below the floor
    starts a new group.  Descending area makes the padded envelope
    monotone-ish, so similar shapes cluster and ragged outliers end up
    isolated instead of inflating everyone's padding.

    Returns groups of task indices covering every input exactly once.
    Groups smaller than :data:`MIN_GROUP_SIZE` are not worth a stacked
    kernel launch; the caller serves those per-query.
    """
    order = sorted(
        range(len(shapes)), key=lambda i: (-shapes[i][0] * shapes[i][1], i)
    )
    groups: list[list[int]] = []
    current: list[int] = []
    rows_pad = cols_pad = filled = 0
    for i in order:
        rows, cols = shapes[i]
        if current:
            new_rows = max(rows_pad, rows)
            new_cols = max(cols_pad, cols)
            new_filled = filled + rows * cols
            padded = (len(current) + 1) * new_rows * new_cols
            if padded and new_filled / padded >= min_fill_ratio:
                current.append(i)
                rows_pad, cols_pad, filled = new_rows, new_cols, new_filled
                continue
            groups.append(current)
        current = [i]
        rows_pad, cols_pad, filled = rows, cols, rows * cols
    if current:
        groups.append(current)
    return groups


@dataclass
class PreparedQuery:
    """Offline output for one query: detection result plus ranking input.

    ``task`` is ``None`` when Algorithm 1 did not fire (unambiguous
    query) or retrieval returned nothing — the online phase then serves
    the baseline ranking.
    """

    query: str
    specializations: SpecializationSet
    task: DiversificationTask | None

    @property
    def ambiguous(self) -> bool:
        return bool(self.specializations)


@dataclass(frozen=True)
class WarmReport:
    """What one offline :meth:`DiversificationService.warm` pass did.

    ``name`` labels the service that warmed (the shard id when the
    service is embedded in a
    :class:`~repro.serving.sharded.ShardedDiversificationService`);
    a merged cluster report carries its per-shard reports in ``shards``.

    Two clocks, labelled apart so neither masquerades as the other:
    ``seconds`` is the wall-clock of the pass a reader would time with a
    stopwatch (per-shard busy time on a leaf report; the measured
    fan-out wall-clock on a merged cluster report), while
    ``busy_seconds`` on a merged report is the *sum* of per-shard busy
    times — larger than the wall-clock when shards warmed concurrently
    (thread/process backends), smaller when the fan-out added routing or
    merge overhead around sequential shards (inline backend).
    """

    queries: int
    ambiguous: int
    specializations: int
    fetched: int
    seconds: float
    name: str = ""
    shards: tuple["WarmReport", ...] = ()
    busy_seconds: float = 0.0

    def summary(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        text = (
            f"{label}queries={self.queries} ambiguous={self.ambiguous} "
            f"specializations={self.specializations} "
            f"fetched={self.fetched} seconds={self.seconds:.3f}"
        )
        if self.busy_seconds:
            text += f" busy={self.busy_seconds:.3f}"
        return text

    @classmethod
    def merge(
        cls, reports: Iterable["WarmReport"], name: str = "cluster"
    ) -> "WarmReport":
        """Cluster-level view of per-shard warm passes.

        Counters sum (shards warm disjoint query partitions).
        ``seconds`` sums too — total shard-busy time — and
        ``busy_seconds`` records that same sum explicitly, so a caller
        that measured the fan-out (the sharded service does) can
        overwrite ``seconds`` with the wall-clock while the summed
        per-shard time stays readable next to it.  The inputs are kept
        in ``shards`` for per-shard reporting.  Accepts any iterable
        (including a generator); an empty input yields a valid zeroed
        report.
        """
        reports = list(reports)
        busy = sum(r.busy_seconds or r.seconds for r in reports)
        return cls(
            queries=sum(r.queries for r in reports),
            ambiguous=sum(r.ambiguous for r in reports),
            specializations=sum(r.specializations for r in reports),
            fetched=sum(r.fetched for r in reports),
            seconds=sum(r.seconds for r in reports),
            name=name,
            shards=tuple(reports),
            busy_seconds=busy,
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linearly interpolated percentile of an ascending sequence.

    Matches ``statistics.quantiles(values, method="inclusive")`` (and
    numpy's default ``"linear"``): the quantile *q* sits at fractional
    position ``q * (n - 1)`` and interpolates between the two bracketing
    samples.  Degenerate inputs are pinned: an empty sequence reports
    ``0.0`` (there is no latency to report, not an error), a single
    sample answers every ``q`` with itself, and ``q`` outside ``[0, 1]``
    clamps to the extremes.  The earlier nearest-rank implementation
    rounded the position (with banker's rounding, so p50 of two samples
    fell on the *lower* one) — merged shard/replica samples crossed the
    interpolation thresholds in order-dependent ways; this form is
    order-independent given the sort.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = min(1.0, max(0.0, q)) * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (
        sorted_values[lower] * (1.0 - fraction)
        + sorted_values[upper] * fraction
    )


#: How many recent per-query latencies ServiceStats keeps for the
#: percentile report; counters stay exact forever, the sample slides.
LATENCY_SAMPLE_SIZE = 4096


@dataclass
class ServiceStats:
    """Online-path counters: volumes, cache effectiveness, latencies.

    Counters are exact over the service's lifetime; ``latencies_ms`` is
    a sliding sample of the most recent ranked queries (bounded, so a
    long-running service does not grow with traffic).  ``name`` labels
    the owning service in summaries (the shard id inside a sharded
    deployment); :meth:`merge` rolls per-shard stats into one
    cluster-level instance.

    The batch-formation fields (``batch_sizes`` / ``wait_ms`` /
    ``queue_depth_peak``) belong to the micro-batching front-end
    (:class:`~repro.serving.async_service.AsyncDiversificationService`):
    how large its admission windows actually got, how long requests sat
    in the queue before their batch closed, and how deep the queue ran.
    They stay zero/empty on services that receive pre-formed batches.
    """

    served: int = 0        #: results returned, including cache hits
    ranked: int = 0        #: pipelines actually executed
    diversified: int = 0   #: ranked queries where Algorithm 1 fired
    batches: int = 0
    seconds: float = 0.0   #: wall-clock spent inside the service
    #: merged instances only: summed per-shard busy seconds, kept next to
    #: the cluster wall-clock the merging caller writes into ``seconds``
    #: (can exceed it when shards overlap; zero on leaf stats).
    busy_seconds: float = 0.0
    latencies_ms: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_SAMPLE_SIZE)
    )
    name: str = ""         #: label in summaries (shard id when sharded)
    #: histogram of dispatched batch sizes: {size: count of batches}
    batch_sizes: dict[int, int] = field(default_factory=dict)
    #: sliding sample of per-request queue waits (enqueue → batch close)
    wait_ms: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_SAMPLE_SIZE)
    )
    queue_depth_peak: int = 0  #: deepest the admission queue ever ran
    #: -- fused batch execution (zero when the fused path never ran) -----
    #: queries ranked through the cross-query fused kernels
    fused_queries: int = 0
    #: ambiguous queries a fused-enabled service still ranked per-query
    #: (singleton groups, pad-wasteful shapes)
    fallback_queries: int = 0
    #: fused groups formed — one stacked kernel dispatch each
    fusion_groups: int = 0
    #: real cells stacked across all fused groups (Σ rows·cols per task)
    fused_filled_cells: int = 0
    #: total stacked cells including padding (Σ B·rows_pad·cols_pad)
    fused_padded_cells: int = 0
    #: -- replicated serving (zero without a ReplicatedBackend) ----------
    #: hedge copies of a request this replica received
    hedges_fired: int = 0
    #: hedge copies that answered before the primary
    hedges_won: int = 0
    #: times this replica slot was respawned after a crash or hang
    respawns: int = 0
    #: requests retried on another replica after this one died mid-call
    failovers: int = 0
    #: -- postings page cache (zero on fully in-memory engines) ----------
    #: pages served from the store-backed engine's page cache
    page_hits: int = 0
    #: pages faulted in from the store
    page_misses: int = 0
    #: pages dropped by capacity pressure or budget eviction
    page_evictions: int = 0
    #: estimated bytes of postings resident in the page cache
    page_resident_bytes: int = 0
    #: -- live ingest (zero until apply_updates runs) --------------------
    #: documents added across every published epoch
    documents_ingested: int = 0
    #: documents removed across every published epoch
    documents_removed: int = 0
    #: epochs this service published (or refreshed to, store-backed)
    epochs_published: int = 0
    #: warm specialization artifacts dropped by epoch invalidation
    warm_invalidations: int = 0
    #: per-replica breakdown of one shard's merged stats (empty unless
    #: the shard ran replicated).  Replicas are *copies* of one shard —
    #: not partitions of the cluster — so they get their own slot
    #: instead of reusing ``shards``; see :meth:`merge_replicas`.
    replicas: tuple["ServiceStats", ...] = ()
    #: per-shard breakdown of a merged instance (empty on leaf stats).
    #: Every shard of the merging cluster contributes exactly one entry,
    #: including shards that served zero queries — their entries are
    #: well-formed zeroed stats carrying the shard name.
    shards: tuple["ServiceStats", ...] = ()

    def record(self, latency_ms: float, diversified: bool) -> None:
        self.ranked += 1
        self.diversified += int(diversified)
        self.latencies_ms.append(latency_ms)

    def record_formation(
        self, batch_size: int, waits_ms: Iterable[float], queue_depth: int
    ) -> None:
        """Account one formed batch: its size, the queue wait of each of
        its requests, and the queue depth left behind at close time."""
        self.batch_sizes[batch_size] = self.batch_sizes.get(batch_size, 0) + 1
        self.wait_ms.extend(waits_ms)
        if queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = queue_depth

    @property
    def mean_latency_ms(self) -> float:
        return (
            sum(self.latencies_ms) / len(self.latencies_ms)
            if self.latencies_ms
            else 0.0
        )

    def percentile_ms(self, q: float) -> float:
        return _percentile(sorted(self.latencies_ms), q)

    @property
    def mean_batch_size(self) -> float:
        formed = sum(self.batch_sizes.values())
        if not formed:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / formed

    @property
    def mean_wait_ms(self) -> float:
        return sum(self.wait_ms) / len(self.wait_ms) if self.wait_ms else 0.0

    def wait_percentile_ms(self, q: float) -> float:
        return _percentile(sorted(self.wait_ms), q)

    @property
    def throughput_qps(self) -> float:
        """Served queries per second of service wall-clock."""
        return self.served / self.seconds if self.seconds > 0 else 0.0

    @property
    def pad_fill_ratio(self) -> float:
        """Real-data fraction of everything the fused path stacked
        (1.0 = no padding; 1.0 also when nothing was ever fused)."""
        if not self.fused_padded_cells:
            return 1.0
        return self.fused_filled_cells / self.fused_padded_cells

    @classmethod
    def merge(
        cls, stats: Iterable["ServiceStats"], name: str = "cluster"
    ) -> "ServiceStats":
        """Roll per-shard stats into one cluster-level ``ServiceStats``.

        Counters sum across shards (their query partitions are
        disjoint), latency and wait samples concatenate into one bounded
        sliding sample, batch-size histograms add up, queue depth peaks
        take the max, and ``seconds`` sums to total shard-busy time.
        When the shards ran concurrently the cluster wall-clock is
        shorter than that sum; callers that measured the fan-out
        themselves (the sharded service does) should overwrite
        ``seconds`` with the measured wall-clock before deriving
        ``throughput_qps``.  An empty input yields a valid zeroed
        summary.  Deep copies of the inputs are kept in ``shards`` (like
        :meth:`WarmReport.merge`, whose reports are immutable) so
        per-shard breakdowns survive the roll-up as a *snapshot*: a
        shard serving more traffic after the merge does not mutate an
        already-taken cluster summary, and a shard that served zero
        queries still contributes its well-formed zeroed entry.  Like
        all stats accounting in this module, merging is not
        synchronised against concurrent writers — read stats between
        batches (as the harnesses do) for exact numbers.
        """
        stats = list(stats)
        merged = cls(
            served=sum(s.served for s in stats),
            ranked=sum(s.ranked for s in stats),
            diversified=sum(s.diversified for s in stats),
            batches=sum(s.batches for s in stats),
            seconds=sum(s.seconds for s in stats),
            busy_seconds=sum(s.busy_seconds or s.seconds for s in stats),
            name=name,
            queue_depth_peak=max((s.queue_depth_peak for s in stats), default=0),
            fused_queries=sum(s.fused_queries for s in stats),
            fallback_queries=sum(s.fallback_queries for s in stats),
            fusion_groups=sum(s.fusion_groups for s in stats),
            fused_filled_cells=sum(s.fused_filled_cells for s in stats),
            fused_padded_cells=sum(s.fused_padded_cells for s in stats),
            hedges_fired=sum(s.hedges_fired for s in stats),
            hedges_won=sum(s.hedges_won for s in stats),
            respawns=sum(s.respawns for s in stats),
            failovers=sum(s.failovers for s in stats),
            page_hits=sum(s.page_hits for s in stats),
            page_misses=sum(s.page_misses for s in stats),
            page_evictions=sum(s.page_evictions for s in stats),
            page_resident_bytes=sum(s.page_resident_bytes for s in stats),
            # Every shard (and replica) applies every ingest batch to its
            # own engine copy, so the batch counters agree across inputs
            # — max, not sum, is the cluster-level truth.  Dropped warm
            # artifacts live in per-shard caches and are genuinely
            # additive.
            documents_ingested=max(
                (s.documents_ingested for s in stats), default=0
            ),
            documents_removed=max(
                (s.documents_removed for s in stats), default=0
            ),
            epochs_published=max(
                (s.epochs_published for s in stats), default=0
            ),
            warm_invalidations=sum(s.warm_invalidations for s in stats),
            shards=tuple(copy.deepcopy(s) for s in stats),
        )
        for s in stats:
            merged.latencies_ms.extend(s.latencies_ms)
            merged.wait_ms.extend(s.wait_ms)
            for size, count in s.batch_sizes.items():
                merged.batch_sizes[size] = merged.batch_sizes.get(size, 0) + count
        return merged

    @classmethod
    def merge_replicas(
        cls, stats: Iterable["ServiceStats"], name: str = ""
    ) -> "ServiceStats":
        """Roll one shard's per-replica stats into a shard-level entry.

        Counter semantics are exactly :meth:`merge` — replicas of one
        shard, like shards of one cluster, sum their counters and pool
        their samples — but the input snapshots land in ``replicas``
        instead of ``shards``: replicas are interchangeable copies, not
        partitions, and keeping the slots distinct lets a shard entry
        with a replica breakdown nest cleanly inside a later
        cluster-level :meth:`merge`.  Zero-traffic replicas contribute
        well-formed zeroed entries, mirroring idle shards.
        """
        merged = cls.merge(stats, name=name)
        merged.replicas, merged.shards = merged.shards, ()
        return merged

    def summary(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        text = (
            f"{label}served={self.served} ranked={self.ranked} "
            f"diversified={self.diversified} batches={self.batches} "
            f"throughput={self.throughput_qps:.1f} qps "
            f"latency mean={self.mean_latency_ms:.2f}ms "
            f"p50={self.percentile_ms(0.50):.2f}ms "
            f"p95={self.percentile_ms(0.95):.2f}ms"
        )
        if self.busy_seconds and abs(self.busy_seconds - self.seconds) > 1e-9:
            text += f" busy={self.busy_seconds:.3f}s"
        if self.batch_sizes:
            text += (
                f" batch mean={self.mean_batch_size:.1f} "
                f"wait p95={self.wait_percentile_ms(0.95):.2f}ms "
                f"depth peak={self.queue_depth_peak}"
            )
        if self.fusion_groups or self.fused_queries or self.fallback_queries:
            text += (
                f" fused={self.fused_queries} "
                f"fallback={self.fallback_queries} "
                f"groups={self.fusion_groups} "
                f"fill={self.pad_fill_ratio:.2f}"
            )
        if self.page_hits or self.page_misses or self.page_evictions:
            text += (
                f" pages={self.page_hits}/{self.page_misses} "
                f"evicted={self.page_evictions} "
                f"resident={self.page_resident_bytes}B"
            )
        if (
            self.epochs_published
            or self.documents_ingested
            or self.documents_removed
        ):
            text += (
                f" epochs={self.epochs_published} "
                f"ingested={self.documents_ingested} "
                f"removed={self.documents_removed} "
                f"warm_invalidated={self.warm_invalidations}"
            )
        if (
            self.replicas
            or self.hedges_fired
            or self.hedges_won
            or self.respawns
            or self.failovers
        ):
            if self.replicas:
                text += f" replicas={len(self.replicas)}"
            text += (
                f" hedges={self.hedges_fired}/{self.hedges_won} "
                f"respawns={self.respawns} failovers={self.failovers}"
            )
        return text


class DiversificationService:
    """Explicit-lifecycle serving wrapper around the framework.

    Parameters
    ----------
    framework:
        The configured pipeline (engine + detector + diversifier).
    result_cache_size:
        Bound of the query → :class:`DiversifiedResult` LRU.  The cache
        key is the query string alone, so mutate the framework's
        diversifier/config only via a fresh service (or call
        :meth:`invalidate`).
    name:
        Label threaded into ``repr``, :class:`ServiceStats` and
        :class:`WarmReport` summaries.  The sharded serving layer sets
        it to the shard id (``"shard3"``) so per-shard reports stay
        attributable.
    fused:
        Whether :meth:`diversify_batch` may rank same-algorithm query
        groups through the cross-query fused kernels
        (:func:`repro.core.fast.diversify_fused`).  ``None`` (default)
        and ``True`` enable fusion whenever numpy is importable and the
        diversifier has a fused executor; ``False`` pins the per-query
        loop.  Either way every served ranking is identical — the fused
        kernels are selection-identical by contract — so this flag
        trades nothing but latency.  Fusion accounting (groups formed,
        pad fill, fused vs fallback query counts) lands in
        :class:`ServiceStats`.

    >>> service = DiversificationService(framework)     # doctest: +SKIP
    >>> service.warm(expected_queries)                  # doctest: +SKIP
    >>> results = service.diversify_batch(traffic)      # doctest: +SKIP
    """

    def __init__(
        self,
        framework: DiversificationFramework,
        result_cache_size: int = 2048,
        name: str = "",
        fused: bool | None = None,
    ) -> None:
        self.framework = framework
        self.name = name
        self.fused = fused
        #: Stage timer threaded into the fused kernels; swap in a
        #: :class:`repro.core.profiling.StageTimer` to profile.
        self.profiler = NULL_TIMER
        self._result_cache: LRUCache[str, DiversifiedResult] = LRUCache(
            result_cache_size
        )
        # Detection is deterministic per query, so warm() and the online
        # path share one cache: a warmed query never re-runs Algorithm 1.
        self._detect_cache: LRUCache[str, SpecializationSet] = LRUCache(
            result_cache_size
        )
        self.stats = ServiceStats(name=name)

    def rename(self, name: str) -> None:
        """Relabel the service and its stats.  The replicated backend
        stamps ``shard<i>/r<j>`` onto each replica it builds, so the
        per-replica snapshots stay attributable after they cross the
        process boundary."""
        self.name = name
        self.stats.name = name

    def _detect(self, query: str) -> SpecializationSet:
        specializations = self._detect_cache.get(query)
        if specializations is None:
            specializations = self.framework.detect(query)
            self._detect_cache.put(query, specializations)
        return specializations

    # -- offline phase -----------------------------------------------------------

    def warm(self, queries: Iterable[str]) -> WarmReport:
        """Precompute specialization artifacts for an expected workload.

        Runs Algorithm 1 over the distinct *queries* and prefetches the
        result list + snippet vectors of every mined specialization into
        the framework's bounded LRU — the paper's offline phase.  Safe to
        call repeatedly; already-cached artifacts are not refetched.
        """
        start = time.perf_counter()
        distinct = list(dict.fromkeys(queries))
        spec_queries: list[str] = []
        ambiguous = 0
        for query in distinct:
            specializations = self._detect(query)
            if specializations:
                ambiguous += 1
                spec_queries.extend(spec for spec, _ in specializations)
        fetched = self.framework.prefetch_specializations(spec_queries)
        return WarmReport(
            queries=len(distinct),
            ambiguous=ambiguous,
            specializations=len(set(spec_queries)),
            fetched=fetched,
            seconds=time.perf_counter() - start,
            name=self.name,
        )

    def prepare(self, query: str) -> PreparedQuery:
        """Detection + task construction for one query (no ranking)."""
        return self.prepare_batch([query])[query]

    def prepare_batch(self, queries: Iterable[str]) -> dict[str, PreparedQuery]:
        """Detection + task construction for a batch, amortised.

        Detection runs once per distinct query; the specialization
        artifacts of the whole batch are prefetched in one deduplicated
        engine pass before any task is built.  Returns
        ``{query: PreparedQuery}`` over the distinct queries.  The
        experiment harnesses use this to build per-topic tasks through
        the same code path the online system exercises.
        """
        distinct = list(dict.fromkeys(queries))
        detected = {query: self._detect(query) for query in distinct}
        self.framework.prefetch_specializations(
            spec
            for specializations in detected.values()
            for spec, _ in specializations
        )
        prepared: dict[str, PreparedQuery] = {}
        for query in distinct:
            specializations = detected[query]
            task = (
                self.framework.build_task(query, specializations)
                if specializations
                else None
            )
            prepared[query] = PreparedQuery(
                query=query, specializations=specializations, task=task
            )
        return prepared

    # -- online phase ------------------------------------------------------------

    def diversify(self, query: str) -> DiversifiedResult:
        """Serve one query (cache → pipeline)."""
        return self.diversify_batch([query])[0]

    def diversify_batch(self, queries: Sequence[str]) -> list[DiversifiedResult]:
        """Serve a batch; results align with *queries* order.

        Duplicate queries in the batch (and queries cached from earlier
        calls) share one :class:`DiversifiedResult` instance; only the
        distinct uncached queries run the pipeline, after a single
        batched specialization prefetch.  When fusion is enabled (the
        default with numpy and a kernel-backed diversifier), the
        uncached ambiguous queries are grouped by stacked-tensor shape
        and ranked through the cross-query fused kernels — rankings are
        identical to the per-query loop either way.
        """
        start = time.perf_counter()
        queries = list(queries)
        by_query: dict[str, DiversifiedResult] = {}
        to_rank: list[str] = []
        for query in dict.fromkeys(queries):
            cached = self._result_cache.get(query)
            if cached is None:
                to_rank.append(query)
            else:
                by_query[query] = cached

        detected = {query: self._detect(query) for query in to_rank}
        # One engine pin around the whole compute phase: every uncached
        # query in the batch reads the same epoch even when an ingest
        # publishes mid-batch (inner pins inherit this one).
        with self.framework._pin_engine():
            self.framework.prefetch_specializations(
                spec
                for specializations in detected.values()
                for spec, _ in specializations
            )
            if self._use_fused():
                self._rank_fused(to_rank, detected, by_query)
            else:
                for query in to_rank:
                    ranked_at = time.perf_counter()
                    result = self.framework.diversify_detected(
                        query, detected[query]
                    )
                    self._finish(
                        query,
                        result,
                        (time.perf_counter() - ranked_at) * 1000.0,
                        by_query,
                    )

        results = [by_query[query] for query in queries]
        self.stats.batches += 1
        self.stats.served += len(queries)
        self.stats.seconds += time.perf_counter() - start
        return results

    def _finish(
        self,
        query: str,
        result: DiversifiedResult,
        latency_ms: float,
        by_query: dict[str, DiversifiedResult],
    ) -> None:
        """Shared tail of ranking one query: stats, cache, batch map."""
        self.stats.record(latency_ms, result.diversified)
        self._cache_result(query, result)
        by_query[query] = result

    def _cache_result(self, query: str, result: DiversifiedResult) -> None:
        """Insert into the result cache unless the engine has moved past
        the epoch this result was computed at.

        Without the epoch check an in-flight query pinned to epoch N can
        re-insert its (now stale) result *after* epoch N+1's sweep
        already cleared the cache — the same refill race the spec cache
        guards against.  The check-and-put runs under the engine's epoch
        lock so no publish can slip between the comparison and the put.
        """
        engine = self.framework.engine
        lock = getattr(engine, "_epoch_lock", None)
        if lock is None:
            self._result_cache.put(query, result)
            return
        computed_at = engine._pinned_snapshot().epoch
        with lock:
            if engine.epoch == computed_at:
                self._result_cache.put(query, result)

    def _use_fused(self) -> bool:
        """Fusion policy: enabled unless pinned off, and only when the
        kernels are importable and the diversifier has a fused executor."""
        if self.fused is False or _fast is None:
            return False
        return _fast.fused_capable(self.framework.diversifier)

    def _rank_fused(
        self,
        to_rank: list[str],
        detected: dict[str, SpecializationSet],
        by_query: dict[str, DiversifiedResult],
    ) -> None:
        """Rank a batch's uncached queries through the fused kernels.

        Per query this produces the exact :class:`DiversifiedResult` the
        per-query loop (``framework.diversify_detected``) would:
        unambiguous and empty-retrieval queries take the same baseline
        branches, and ambiguous tasks are grouped by
        :func:`plan_fusion_groups` over their stacked-tensor shapes —
        groups run one fused kernel dispatch, singletons and
        pad-wasteful leftovers fall back to the per-query kernel.  A
        fused query's recorded latency is its own detection + task-build
        time plus an equal share of its group's kernel time.
        """
        framework = self.framework
        k = framework.config.k
        pending: list[
            tuple[str, DiversificationTask, SpecializationSet, float]
        ] = []
        for query in to_rank:
            ranked_at = time.perf_counter()
            specializations = detected[query]
            if not specializations:
                result = framework.diversify_detected(query, specializations)
                self._finish(
                    query,
                    result,
                    (time.perf_counter() - ranked_at) * 1000.0,
                    by_query,
                )
                continue
            task = framework.build_task(query, specializations)
            if task is None:
                result = DiversifiedResult(
                    query=query,
                    ranking=[],
                    diversified=False,
                    baseline=ResultList(query, []),
                    specializations=specializations,
                )
                self._finish(
                    query,
                    result,
                    (time.perf_counter() - ranked_at) * 1000.0,
                    by_query,
                )
                continue
            build_ms = (time.perf_counter() - ranked_at) * 1000.0
            pending.append((query, task, specializations, build_ms))

        if not pending:
            return
        diversifier = framework.diversifier
        shapes = [
            _fast.fused_shape(diversifier, task, k)
            for _query, task, _specs, _ms in pending
        ]
        for group in plan_fusion_groups(shapes):
            if len(group) >= MIN_GROUP_SIZE:
                self._rank_group(group, pending, shapes, k, by_query)
            else:
                for i in group:
                    query, task, specializations, build_ms = pending[i]
                    ranked_at = time.perf_counter()
                    ranking = diversifier.diversify(task, k)
                    kernel_ms = (time.perf_counter() - ranked_at) * 1000.0
                    self.stats.fallback_queries += 1
                    self._finish(
                        query,
                        self._diversified(query, ranking, task, specializations),
                        build_ms + kernel_ms,
                        by_query,
                    )

    def _rank_group(
        self,
        group: list[int],
        pending: list,
        shapes: list[tuple[int, int]],
        k: int,
        by_query: dict[str, DiversifiedResult],
    ) -> None:
        """One fused kernel dispatch for a planned query group."""
        group_start = time.perf_counter()
        tasks = [pending[i][1] for i in group]
        rankings = _fast.diversify_fused(
            self.framework.diversifier, tasks, k, timer=self.profiler
        )
        share_ms = (time.perf_counter() - group_start) * 1000.0 / len(group)
        rows_pad = max(shapes[i][0] for i in group)
        cols_pad = max(shapes[i][1] for i in group)
        self.stats.fusion_groups += 1
        self.stats.fused_queries += len(group)
        self.stats.fused_filled_cells += sum(
            shapes[i][0] * shapes[i][1] for i in group
        )
        self.stats.fused_padded_cells += len(group) * rows_pad * cols_pad
        for i, ranking in zip(group, rankings):
            query, task, specializations, build_ms = pending[i]
            self._finish(
                query,
                self._diversified(query, ranking, task, specializations),
                build_ms + share_ms,
                by_query,
            )

    def _diversified(
        self,
        query: str,
        ranking: list[str],
        task: DiversificationTask,
        specializations: SpecializationSet,
    ) -> DiversifiedResult:
        """The ambiguous-branch result, field-for-field what
        ``framework.diversify_detected`` constructs."""
        return DiversifiedResult(
            query=query,
            ranking=ranking,
            diversified=True,
            baseline=task.candidates,
            specializations=specializations,
            task=task,
            algorithm=self.framework.diversifier.name,
        )

    # -- warm-state persistence ---------------------------------------------------

    def save_warm(self, path) -> int:
        """Write the framework's warm artifacts to *path* (JSON lines).

        Returns how many specialization artifacts were saved.  A fresh
        service (or a worker process on another host) can
        :meth:`load_warm` the file and serve identical rankings without
        re-deriving the offline phase.
        """
        from repro.retrieval.persistence import dump_warm_artifacts

        return dump_warm_artifacts(self.framework.export_warm_state(), path)

    def load_warm(self, path) -> int:
        """Hydrate the framework's warm artifacts from *path*.

        The counterpart of :meth:`save_warm`; returns how many artifacts
        were installed (already-cached ones are left untouched).
        """
        from repro.retrieval.persistence import load_warm_artifacts

        return self.framework.install_warm_state(load_warm_artifacts(path))

    def load_warm_store(self, path, shard: int = 0) -> int:
        """Hydrate warm artifacts for *shard* from an index store.

        The SQLite twin of :meth:`load_warm`: reads the warm rows a
        store-writing offline pipeline persisted for this shard and
        installs them.  Payload lines are byte-identical to the per-shard
        JSONL files, so hydration from either source ranks identically.
        Returns how many artifacts were installed.
        """
        from repro.retrieval.persistence import decode_warm_artifact
        from repro.retrieval.store import read_warm_payloads

        artifacts = {}
        for spec_query, payload in read_warm_payloads(path, shard).items():
            decoded_query, value = decode_warm_artifact(
                payload, f"{path}[shard={shard}] {spec_query!r}"
            )
            artifacts[decoded_query] = value
        return self.framework.install_warm_state(artifacts)

    def export_warm_payloads(self) -> dict[str, str]:
        """The warm state as canonical payload lines — ``{spec_query:
        line}`` ready for the ``warm_artifacts`` table of
        :func:`repro.retrieval.store.write_store`.  Strings travel
        cheaply over process boundaries, so a sharded cluster can
        collect every shard's payloads for one store write.
        """
        from repro.retrieval.persistence import encode_warm_artifact

        return {
            spec_query: encode_warm_artifact(spec_query, results, vectors)
            for spec_query, (results, vectors) in (
                self.framework.export_warm_state().items()
            )
        }

    def warm_memory_estimate(self) -> dict[str, int]:
        """Estimated resident bytes of the held warm artifacts.

        Counts and prices the per-specialization result lists and
        snippet-surrogate vectors currently in the framework's spec
        cache (:func:`repro.retrieval.persistence.estimate_warm_memory`)
        — the snippet-vector half of the offline pipeline's per-shard
        memory accounting, next to the per-partition index footprints in
        :class:`~repro.retrieval.sharding.BuildReport`.  A *method* (not
        a property) so execution backends can fetch the snapshot over a
        process boundary.
        """
        from repro.retrieval.persistence import estimate_warm_memory

        return estimate_warm_memory(self.framework.export_warm_state())

    # -- live ingest --------------------------------------------------------------

    def apply_updates(
        self,
        add_documents: Sequence = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> int:
        """Apply one ingest batch and publish the next epoch.

        In-memory engines prepare-and-publish the epoch here
        (:meth:`~repro.retrieval.sharding.PartitionedSearchEngine.apply_updates`);
        store-backed engines re-attach to the epoch a coordinator already
        appended to the store file
        (:meth:`~repro.retrieval.store.StoreBackedSearchEngine.refresh`)
        — the writer appends once, every attached service refreshes.
        Either way the published delta then drives the warm
        invalidation: per-affected-specialization when the batch
        preserved the collection statistics, wholesale when it changed
        ``N`` or the token total (every cached score embeds both).
        Cached end-to-end results are swept by the same rule.  Returns
        the epoch that includes the batch.
        """
        adds = list(add_documents)
        removes = list(remove_doc_ids)
        epoch, delta = self._advance_engine(adds, removes)
        return self._after_epoch(epoch, delta, len(adds), len(removes))

    def _advance_engine(self, adds: list, removes: list[str]):
        """Make the engine serve the batch; returns ``(epoch, delta)``.

        Split out of :meth:`apply_updates` so a sharded cluster whose
        shard services *share* one engine object can advance it once and
        still run every shard's cache sweep (:meth:`_after_epoch`).
        """
        from repro.retrieval.sharding import EpochDelta

        engine = self.framework.engine
        refresh = getattr(engine, "refresh", None)
        if callable(refresh):
            # Store-backed: the batch was already appended to the store
            # file (see :meth:`ingest`); re-attach to it.  The store no
            # longer holds the removed rows, so the term analysis behind
            # surgical invalidation is impossible here — a conservative
            # stats_changed delta drops all warm state instead.
            epoch = refresh()
            delta = EpochDelta(
                added=tuple(doc.doc_id for doc in adds),
                removed=tuple(removes),
                terms=frozenset(),
                stats_changed=True,
            )
            return epoch, delta
        apply = getattr(engine, "apply_updates", None)
        if not callable(apply):
            raise ValueError(
                "engine does not support live ingest: it has neither "
                "apply_updates (epoch-versioned in-memory engine) nor "
                "refresh (store-backed engine)"
            )
        snapshot = apply(adds, removes)
        return snapshot.epoch, snapshot.delta

    def _after_epoch(
        self, epoch: int, delta, added: int, removed: int
    ) -> int:
        """Cache sweeps + counters for one published epoch."""
        dropped = self.framework.invalidate_affected(delta)
        self._sweep_results(delta)
        self.stats.documents_ingested += added
        self.stats.documents_removed += removed
        self.stats.epochs_published += 1
        self.stats.warm_invalidations += dropped
        return epoch

    def ingest(
        self,
        add_documents: Sequence = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> int:
        """Coordinator entry point: make the batch durable, then apply.

        For a store-backed engine the batch is first appended to the
        store file (:func:`repro.retrieval.store.append_epoch`) —
        exactly once, here — and :meth:`apply_updates` then merely
        refreshes; replicas receiving the broadcast refresh too, without
        re-appending.  In-memory engines have no durable side, so this
        is :meth:`apply_updates` directly.  Returns the epoch that
        includes the batch.
        """
        store_path = self.engine_store_path()
        if store_path is not None:
            from repro.retrieval.store import append_epoch

            append_epoch(
                store_path,
                add_documents,
                remove_doc_ids,
                analyzer=getattr(self.framework.engine, "analyzer", None),
            )
        return self.apply_updates(add_documents, remove_doc_ids)

    def engine_store_path(self) -> str | None:
        """The engine's backing store file, or ``None`` when in-memory —
        how a coordinator decides whether an ingest batch needs a
        durable append before the apply broadcast."""
        engine = self.framework.engine
        if callable(getattr(engine, "refresh", None)):
            return getattr(engine, "store_path", None)
        return None

    def current_epoch(self) -> int:
        """Epoch of the engine's currently published snapshot (0 for
        engines that never ingested)."""
        return int(getattr(self.framework.engine, "epoch", 0))

    def _sweep_results(self, delta) -> None:
        """Drop cached end-to-end results an epoch's delta stales.

        Same soundness rule as the framework's warm sweep: a
        stats-changing batch stales every score, so everything drops; a
        stats-preserving swap keeps a result iff the changed documents'
        terms are disjoint from the query *and* from every specialization
        it ranked under (a changed document matching any of those terms
        could alter candidates, spec lists, or utilities) and no changed
        document appears in its ranking or baseline.  Detections are
        never swept — Algorithm 1 reads the query-log model, not the
        collection.
        """
        if delta is None or delta.stats_changed:
            self._result_cache.clear()
            return
        changed_terms = delta.terms
        changed_ids = delta.changed_ids
        if not changed_terms and not changed_ids:
            return
        analyzer = getattr(self.framework.engine, "analyzer", None)
        if analyzer is None:
            self._result_cache.clear()
            return
        for query, result in self._result_cache.snapshot():
            terms = set(analyzer.analyze(query))
            for spec_query, _p in result.specializations:
                terms.update(analyzer.analyze(spec_query))
            touched = bool(terms & changed_terms)
            if not touched:
                result_ids = set(result.ranking) | set(
                    result.baseline.doc_ids
                )
                touched = bool(result_ids & changed_ids)
            if touched:
                self._result_cache.delete(query)

    # -- maintenance -------------------------------------------------------------

    def get_stats(self) -> ServiceStats:
        """The live :class:`ServiceStats` — as a *method* so execution
        backends can fetch a snapshot over a process boundary.  When the
        engine serves from a store, the postings page-cache counters are
        refreshed into the stats first."""
        page_cache_info = getattr(
            self.framework.engine, "page_cache_info", None
        )
        if callable(page_cache_info):
            info = page_cache_info()
            self.stats.page_hits = info.hits
            self.stats.page_misses = info.misses
            self.stats.page_evictions = info.evictions
            self.stats.page_resident_bytes = info.resident_bytes
        return self.stats

    def invalidate(self) -> None:
        """Drop cached results and detections (e.g. after reconfiguring
        the framework or retraining the detector)."""
        self._result_cache.clear()
        self._detect_cache.clear()

    def result_cache_info(self) -> CacheStats:
        return self._result_cache.stats()

    def spec_cache_info(self) -> CacheStats:
        return self.framework.cache_info()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f"name={self.name!r}, " if self.name else ""
        return (
            f"DiversificationService({label}{self.framework!r}, "
            f"cached={len(self._result_cache)})"
        )

"""R-way shard replication: routing, hedging, respawn-and-rehydrate.

``ProcessBackend`` runs exactly one worker per shard, so a crash kills
the pipe and poisons the cluster.  This module keeps the same
shard-addressed RPC surface but puts a :class:`ReplicaSet` in front of
each shard — R interchangeable workers, every one built by the *same*
deterministic factory, so the cluster's identity anchor extends across
failures: results are byte-identical no matter which replica answers,
including mid-benchmark kills.

The moving parts, bottom-up:

* :class:`ReplicaWorker` — the minimal worker surface the routing layer
  needs (``send``/``poll``/``recv``/``alive``/``close``).  The real
  implementation is :class:`ProcessReplicaWorker` (one OS process per
  replica, speaking ``ProcessBackend``'s exact wire protocol); the
  deterministic fault-injection harness in ``tests/serving/faults.py``
  substitutes scripted in-process workers through ``worker_provider``.
* :class:`ReplicaSet` — one shard's replicas plus the policy that picks
  among them (``round-robin`` or ``least-outstanding``), optional hedged
  requests after a latency deadline, health checks, and burial: a dead
  or hung replica is killed, respawned through the retained factory
  (which rehydrates from ``warm_artifacts_dir`` when configured — the
  PR-4 warm store makes this cheap), and the request retries elsewhere.
* :class:`ReplicatedBackend` — an :class:`ExecutionBackend` whose
  ``invoke_each`` routes serving calls to one replica per shard and
  *replicates* state-mutating calls (``warm``/``load_warm``/
  ``invalidate``) to every replica, so caches stay in lockstep.

Hedging never duplicates or reorders results: a hedge is a second copy
of the *same* request to a second replica, and the set returns exactly
one reply to the caller — the loser's reply is drained and discarded.
Time is injectable (``clock`` + worker ``poll`` own all waiting), which
is what lets the fault-injection tests script crashes, hangs, and slow
replicas at exact virtual-clock points with zero real sleeps.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import monotonic

from repro.serving.backends import (
    BackendError,
    ExecutionBackend,
    ShardCall,
    WorkerDiedError,
    _worker_main,
    check_factory_pickles,
)

__all__ = [
    "REPLICA_POLICIES",
    "REPLICATED_STATE_METHODS",
    "HEDGEABLE_METHODS",
    "ReplicaWorker",
    "ProcessReplicaWorker",
    "ReplicaSetStats",
    "ReplicaSet",
    "ReplicatedBackend",
]

#: Routing policies a ReplicaSet understands.
REPLICA_POLICIES = ("round-robin", "least-outstanding")

#: Methods that mutate per-replica state and must reach *every* replica,
#: or the caches would diverge and a failover would change behaviour.
#: ``apply_updates`` is the live-ingest epoch publish: every replica must
#: advance to the new epoch, or a failover would time-travel the
#: collection.
REPLICATED_STATE_METHODS = frozenset(
    {"warm", "load_warm", "invalidate", "apply_updates"}
)

#: Methods worth hedging: read-only serving calls where a duplicate
#: execution is wasted work, never wrong work.  State mutators and
#: side-effectful calls (``save_warm`` writes files) are excluded.
HEDGEABLE_METHODS = frozenset(
    {"diversify", "diversify_batch", "prepare", "prepare_batch"}
)


class ReplicaWorker(ABC):
    """One replica of one shard, behind a pipe-like request/reply surface.

    The contract mirrors a ``multiprocessing`` pipe end: ``send`` ships a
    ``(shard, method, args)`` request, ``poll(timeout)`` waits for the
    *next* reply (FIFO — replies come back in request order), ``recv``
    returns it as ``("ok", result)`` or ``("err", (exc, tb))``.  A dead
    worker raises :class:`WorkerDiedError` from ``send``/``recv`` and
    reports ``poll`` ready (so the router reaches the ``recv`` that
    surfaces the death).  ``poll`` owns all waiting — scripted workers
    advance a virtual clock there instead of sleeping.
    """

    def __init__(self, shard: int, replica: int) -> None:
        self.shard = shard
        self.replica = replica

    @property
    def label(self) -> str:
        return f"shard{self.shard}/r{self.replica}"

    @property
    def pid(self) -> int | None:
        """OS pid when the replica is a real process, else ``None``."""
        return None

    @abstractmethod
    def send(self, request: ShardCall) -> None:
        """Ship a request; raises :class:`WorkerDiedError` if dead."""

    @abstractmethod
    def poll(self, timeout: float) -> bool:
        """Wait up to *timeout* seconds for the next reply."""

    @abstractmethod
    def recv(self) -> tuple:
        """Return the next ``(status, payload)`` reply (FIFO)."""

    @abstractmethod
    def alive(self) -> bool:
        """Liveness as far as the OS (or script) knows."""

    @abstractmethod
    def close(self, kill: bool = False) -> None:
        """Stop the replica — gracefully, or hard when ``kill``."""


class ProcessReplicaWorker(ReplicaWorker):
    """One replica = one OS process owning one shard service.

    Reuses ``ProcessBackend``'s worker body (handshake, addressed calls,
    pickled replies) with a single-shard ownership list, then renames the
    worker's service to ``shard<i>/r<j>`` so per-replica stats stay
    attributable once their snapshots cross the process boundary.
    """

    def __init__(self, shard: int, replica: int, ctx, service_factory) -> None:
        super().__init__(shard, replica)
        parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, service_factory, [shard]),
            name=f"repro-replica-s{shard}r{replica}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        try:
            status, detail = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise self._died("died during startup") from exc
        if status != "ready":
            message = detail if status == "failed" else f"unexpected {status!r}"
            self.close(kill=True)
            raise BackendError(
                f"{self.label} failed to build its shard service: {message}"
            )
        try:
            # A service without rename() answers "err"; it just keeps its
            # own label, which only blurs stats attribution, not results.
            self._conn.send((shard, "rename", (self.label,)))
            self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise self._died("died during startup") from exc

    def _died(self, what: str) -> WorkerDiedError:
        return WorkerDiedError(
            f"{self.label} {what} (exitcode={self._process.exitcode})",
            shards=(self.shard,),
            replica=self.replica,
            exitcode=self._process.exitcode,
        )

    @property
    def pid(self) -> int | None:
        return self._process.pid

    def send(self, request: ShardCall) -> None:
        try:
            self._conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            raise self._died("died") from exc

    def poll(self, timeout: float) -> bool:
        try:
            return self._conn.poll(timeout)
        except (BrokenPipeError, OSError):
            return True  # let recv() surface the death

    def recv(self) -> tuple:
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise self._died("died") from exc

    def alive(self) -> bool:
        return self._process.is_alive()

    def close(self, kill: bool = False) -> None:
        if kill:
            self._process.kill()  # SIGKILL — no grace, like a real crash
            self._process.join(timeout=5)
        else:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            self._process.join(timeout=10)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout=5)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


@dataclass(frozen=True)
class ReplicaSetStats:
    """Routing-layer counters for one shard, per replica slot.

    Indexed by replica slot (a respawned replica reuses its slot);
    counters accumulate across respawns because the *slot* is the stable
    identity, not the process behind it.
    """

    shard: int
    requests: tuple[int, ...]
    hedges_fired: tuple[int, ...]
    hedges_won: tuple[int, ...]
    respawns: tuple[int, ...]
    failovers: tuple[int, ...]

    @property
    def replicas(self) -> int:
        return len(self.requests)

    @property
    def requests_total(self) -> int:
        return sum(self.requests)

    @property
    def hedges_fired_total(self) -> int:
        return sum(self.hedges_fired)

    @property
    def hedges_won_total(self) -> int:
        return sum(self.hedges_won)

    @property
    def respawns_total(self) -> int:
        return sum(self.respawns)

    @property
    def failovers_total(self) -> int:
        return sum(self.failovers)


class ReplicaSet:
    """One shard's R replicas plus the routing that hides their failures.

    ``call()`` is the serving path: pick a replica (policy-driven, after
    a health sweep that buries and respawns the dead), ship the request,
    await the reply — optionally racing a hedge copy on a second replica
    once ``hedge_after_s`` elapses without an answer.  Any replica death
    or hang along the way counts a failover, buries the replica (kill +
    respawn through the retained factory), and retries the request on
    another; the attempt budget is generous because every respawn yields
    a fresh, serviceable worker, but finite so a systematically crashing
    fleet surfaces as :class:`WorkerDiedError` instead of a livelock.

    ``call_all()`` is the state path: the same request to *every*
    replica in slot order, each awaited, with one respawn-and-retry per
    slot — used for ``warm``/``load_warm``/``invalidate`` so replica
    caches never diverge.

    Bookkeeping invariant: ``_outstanding[r]`` counts replies replica
    *r* still owes (its pipe is strictly FIFO).  A replica is only
    *selected* when it owes nothing; a hedge loser keeps owing until its
    reply is drained by a later health sweep or pre-selection drain, and
    a replica that owes past ``hang_timeout_s`` is declared hung and
    buried.
    """

    def __init__(
        self,
        shard: int,
        spawn: Callable[[int], ReplicaWorker],
        replicas: int,
        policy: str = "round-robin",
        hedge_after_s: float | None = None,
        hang_timeout_s: float = 30.0,
        poll_interval_s: float = 0.005,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        if policy not in REPLICA_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {REPLICA_POLICIES}"
            )
        if hedge_after_s is not None and replicas < 2:
            raise ValueError("hedged requests need at least 2 replicas")
        self.shard = shard
        self._spawn = spawn
        self._policy = policy
        self._hedge_after_s = hedge_after_s
        self._hang_timeout_s = hang_timeout_s
        self._poll_interval_s = poll_interval_s
        self._clock = clock
        self._workers = [spawn(replica) for replica in range(replicas)]
        self._outstanding = [0] * replicas
        self._owed_since = [0.0] * replicas
        self._rr = 0
        self.requests = [0] * replicas
        self.hedges_fired = [0] * replicas
        self.hedges_won = [0] * replicas
        self.respawns = [0] * replicas
        self.failovers = [0] * replicas

    @property
    def replicas(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> tuple[ReplicaWorker, ...]:
        return tuple(self._workers)

    def stats(self) -> ReplicaSetStats:
        return ReplicaSetStats(
            shard=self.shard,
            requests=tuple(self.requests),
            hedges_fired=tuple(self.hedges_fired),
            hedges_won=tuple(self.hedges_won),
            respawns=tuple(self.respawns),
            failovers=tuple(self.failovers),
        )

    # -- the serving path --------------------------------------------------

    def call(self, method: str, args: tuple) -> object:
        """Run one request on one replica, failing over until it lands."""
        request: ShardCall = (self.shard, method, args)
        budget = 2 * self.replicas + 4
        for _attempt in range(budget):
            replica = self._select()
            worker = self._workers[replica]
            try:
                worker.send(request)
            except WorkerDiedError:
                self.failovers[replica] += 1
                self._bury(replica)
                continue
            self._outstanding[replica] += 1
            self._owed_since[replica] = self._clock()
            self.requests[replica] += 1
            try:
                return self._await_reply(replica, request, method)
            except WorkerDiedError:
                self.failovers[replica] += 1
                continue
        raise WorkerDiedError(
            f"shard {self.shard}: no replica could answer {method!r} "
            f"after {budget} attempts — replicas keep dying",
            shards=(self.shard,),
        )

    def call_all(self, method: str, args: tuple) -> list:
        """Run one request on *every* replica (slot order); one
        respawn-and-retry per slot, then the failure propagates."""
        request: ShardCall = (self.shard, method, args)
        results = []
        for replica in range(self.replicas):
            for attempt in (0, 1):
                if not self._workers[replica].alive():
                    self._bury(replica)
                if self._outstanding[replica]:
                    self._drain(replica)
                worker = self._workers[replica]
                try:
                    worker.send(request)
                    self._outstanding[replica] += 1
                    self._owed_since[replica] = self._clock()
                    results.append(self._receive(replica, method))
                    break
                except WorkerDiedError:
                    if attempt:
                        raise
                    self.failovers[replica] += 1
                    if self._workers[replica] is worker:
                        self._bury(replica)
        return results

    def kill(self, replica: int | None = None) -> int:
        """Chaos hook: hard-kill a replica (default: the one the router
        would pick next) and leave the corpse for the next health sweep
        to find — exactly how a real crash presents."""
        if replica is None:
            replica = self._rr % self.replicas
        self._workers[replica].close(kill=True)
        return replica

    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    # -- selection, health, burial -----------------------------------------

    def _select(self) -> int:
        """Pick the next replica per policy, after a health sweep; drain
        it first if it still owes a reply (round-robin can land on a
        recent hedge loser)."""
        self._health_sweep()
        order = [(self._rr + i) % self.replicas for i in range(self.replicas)]
        if self._policy == "least-outstanding":
            chosen = min(order, key=lambda r: (self._outstanding[r], order.index(r)))
        else:
            chosen = order[0]
        self._rr = (chosen + 1) % self.replicas
        if self._outstanding[chosen]:
            self._drain(chosen)
        return chosen

    def _health_sweep(self) -> None:
        """Bury the dead, collect owed replies that have arrived, and
        declare replicas hung when they owe past the hang budget."""
        now = self._clock()
        for replica in range(self.replicas):
            worker = self._workers[replica]
            if not worker.alive():
                self._bury(replica)
                continue
            while self._outstanding[replica] and worker.poll(0):
                try:
                    worker.recv()
                except WorkerDiedError:
                    self._bury(replica)
                    break
                self._outstanding[replica] -= 1
            if (
                self._outstanding[replica]
                and now - self._owed_since[replica] > self._hang_timeout_s
            ):
                self._bury(replica)

    def _bury(self, replica: int) -> None:
        """Kill and respawn a replica slot.  The spawn callable runs the
        retained service factory, so a ``warm_artifacts_dir``-configured
        cluster rehydrates the newcomer from the persisted warm store."""
        try:
            self._workers[replica].close(kill=True)
        except Exception:  # pragma: no cover - corpse already gone
            pass
        self._workers[replica] = self._spawn(replica)
        self.respawns[replica] += 1
        self._outstanding[replica] = 0

    def _drain(self, replica: int) -> None:
        """Blockingly collect (and discard) every reply a replica owes;
        a replica that cannot cough them up within the hang budget is
        buried."""
        worker = self._workers[replica]
        while self._outstanding[replica]:
            if not worker.poll(self._hang_timeout_s):
                self._bury(replica)
                return
            try:
                worker.recv()
            except WorkerDiedError:
                self._bury(replica)
                return
            self._outstanding[replica] -= 1

    # -- reply plumbing ----------------------------------------------------

    def _await_reply(self, primary: int, request: ShardCall, method: str) -> object:
        """Wait for the primary's reply, hedging onto a second replica
        once the deadline passes.  Exactly one reply is returned; the
        loser's stays owed (drained later)."""
        if self._hedge_after_s is None or method not in HEDGEABLE_METHODS:
            return self._receive(primary, method)
        worker = self._workers[primary]
        if worker.poll(self._hedge_after_s):
            return self._consume(primary, method)
        secondary = self._pick_hedge(primary)
        if secondary is None:
            # Nobody free to hedge onto: plain bounded wait (the hang
            # budget restarts — acceptable slack on a saturated set).
            return self._receive(primary, method)
        hedge_worker = self._workers[secondary]
        try:
            hedge_worker.send(request)
        except WorkerDiedError:
            self._bury(secondary)
            return self._receive(primary, method)
        self._outstanding[secondary] += 1
        self._owed_since[secondary] = self._clock()
        self.hedges_fired[secondary] += 1
        waited = self._hedge_after_s
        while True:
            if worker.poll(0):
                return self._consume(primary, method)
            if hedge_worker.poll(0):
                self.hedges_won[secondary] += 1
                return self._consume(secondary, method)
            if waited >= self._hang_timeout_s:
                # Both silent past the hang budget: bury both, let the
                # caller's retry land on fresh workers.
                self._bury(primary)
                self._bury(secondary)
                raise WorkerDiedError(
                    f"shard {self.shard}: primary r{primary} and hedge "
                    f"r{secondary} both hung on {method!r}",
                    shards=(self.shard,),
                    replica=primary,
                )
            if worker.poll(self._poll_interval_s):
                return self._consume(primary, method)
            waited += self._poll_interval_s

    def _pick_hedge(self, primary: int) -> int | None:
        for offset in range(self.replicas):
            replica = (self._rr + offset) % self.replicas
            if (
                replica != primary
                and self._outstanding[replica] == 0
                and self._workers[replica].alive()
            ):
                return replica
        return None

    def _receive(self, replica: int, method: str) -> object:
        """One reply from a replica, waiting up to the hang budget."""
        worker = self._workers[replica]
        if not worker.poll(self._hang_timeout_s):
            self._bury(replica)
            raise WorkerDiedError(
                f"{worker.label} did not answer within "
                f"{self._hang_timeout_s:g}s (hung)",
                shards=(self.shard,),
                replica=replica,
            )
        return self._consume(replica, method)

    def _consume(self, replica: int, method: str) -> object:
        worker = self._workers[replica]
        try:
            status, payload = worker.recv()
        except WorkerDiedError:
            self._bury(replica)
            raise
        self._outstanding[replica] = max(0, self._outstanding[replica] - 1)
        if status == "ok":
            return payload
        # A service-level error is deterministic — every replica would
        # raise the same — so it propagates instead of failing over.
        exc, tb = payload
        raise exc from BackendError(
            f"shard {self.shard} ({method}) failed in {worker.label}:\n{tb}"
        )


class ReplicatedBackend(ExecutionBackend):
    """An :class:`ExecutionBackend` running R replicas of every shard.

    ``start()`` retains the factory (respawns re-run it) and builds one
    :class:`ReplicaSet` per shard.  ``invoke_each`` fans out across
    shards on a thread pool (each shard's set is touched by one thread
    per batch; sets are not shared across concurrent batches) and
    routes each call: state mutators in :data:`REPLICATED_STATE_METHODS`
    go to every replica via ``call_all`` (first replica's result is
    returned — the replicas are identical, so the copies' results are
    too), everything else to one replica via ``call``.

    ``worker_provider(factory, shard, replica) -> ReplicaWorker``
    substitutes the worker implementation — the deterministic fault
    harness injects scripted in-process workers there; ``clock`` feeds
    the routing layer's notion of time for the same reason.  Defaults
    spawn real processes under the platform's ``multiprocessing`` start
    method (``start_method`` overrides, with the same fail-fast pickle
    probe as ``ProcessBackend``).
    """

    name = "replicated"

    def __init__(
        self,
        replicas: int = 2,
        policy: str = "round-robin",
        hedge_after_ms: float | None = None,
        hang_timeout_s: float = 30.0,
        poll_interval_s: float = 0.005,
        start_method: str | None = None,
        worker_provider: (
            Callable[[Callable[[int], object], int, int], ReplicaWorker] | None
        ) = None,
        clock: Callable[[], float] | None = None,
        parallel: bool = True,
    ) -> None:
        super().__init__()
        if replicas < 1:
            raise ValueError("replicas must be positive")
        if policy not in REPLICA_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {REPLICA_POLICIES}"
            )
        if hedge_after_ms is not None and replicas < 2:
            raise ValueError("hedged requests need at least 2 replicas")
        self._replica_count = replicas
        self._policy = policy
        self._hedge_after_s = (
            None if hedge_after_ms is None else hedge_after_ms / 1000.0
        )
        self._hang_timeout_s = hang_timeout_s
        self._poll_interval_s = poll_interval_s
        self._start_method = start_method
        self._worker_provider = worker_provider
        self._clock = clock or monotonic
        self._parallel = parallel
        self._factory: Callable[[int], object] | None = None
        self._ctx = None
        self._sets: dict[int, ReplicaSet] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def replicas(self) -> int:
        return self._replica_count

    @property
    def policy(self) -> str:
        return self._policy

    def start(self, service_factory: Callable[[int], object], num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.started or self._closed:
            raise BackendError("ReplicatedBackend cannot be restarted")
        self._factory = service_factory
        if self._worker_provider is None:
            import multiprocessing as mp

            if self._start_method is not None:
                if self._start_method not in mp.get_all_start_methods():
                    raise BackendError(
                        f"start method {self._start_method!r} is not "
                        f"available on this platform (offers: "
                        f"{mp.get_all_start_methods()})"
                    )
                ctx = mp.get_context(self._start_method)
            else:
                ctx = mp.get_context()
            if ctx.get_start_method() != "fork":
                check_factory_pickles(service_factory, ctx.get_start_method())
            self._ctx = ctx
        for shard in range(num_shards):
            self._sets[shard] = ReplicaSet(
                shard,
                spawn=self._spawner(shard),
                replicas=self._replica_count,
                policy=self._policy,
                hedge_after_s=self._hedge_after_s,
                hang_timeout_s=self._hang_timeout_s,
                poll_interval_s=self._poll_interval_s,
                clock=self._clock,
            )
        self._num_shards = num_shards

    def _spawner(self, shard: int) -> Callable[[int], ReplicaWorker]:
        def spawn(replica: int) -> ReplicaWorker:
            if self._worker_provider is not None:
                return self._worker_provider(self._factory, shard, replica)
            return ProcessReplicaWorker(shard, replica, self._ctx, self._factory)

        return spawn

    def invoke_each(self, calls: Sequence[ShardCall]) -> dict[int, object]:
        self._require_started()
        if self._closed:
            raise BackendError("ReplicatedBackend is closed")
        for call in calls:
            if call[0] not in self._sets:
                raise BackendError(f"unknown shard {call[0]}")

        def run(call: ShardCall) -> object:
            shard, method, args = call
            replica_set = self._sets[shard]
            if method in REPLICATED_STATE_METHODS:
                return replica_set.call_all(method, args)[0]
            return replica_set.call(method, args)

        if self._parallel and len(calls) > 1 and (os.cpu_count() or 1) > 1:
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=min(len(self._sets), os.cpu_count() or 1),
                        thread_name_prefix="repro-replicated",
                    )
            futures = {call[0]: self._pool.submit(run, call) for call in calls}
            return {shard: future.result() for shard, future in futures.items()}
        return {call[0]: run(call) for call in calls}

    def invoke_replicas(self, shard: int, method: str, *args) -> list:
        self._require_started()
        if shard not in self._sets:
            raise BackendError(f"unknown shard {shard}")
        return self._sets[shard].call_all(method, args)

    def replication_stats(self) -> dict[int, ReplicaSetStats]:
        return {shard: rset.stats() for shard, rset in sorted(self._sets.items())}

    def kill_replica(self, shard: int, replica: int | None = None) -> int:
        """Chaos hook: hard-kill one replica of *shard* (default: the
        router's next pick); returns the replica slot killed."""
        self._require_started()
        if shard not in self._sets:
            raise BackendError(f"unknown shard {shard}")
        return self._sets[shard].kill(replica)

    def replica_pids(self, shard: int) -> tuple[int | None, ...]:
        """The OS pids behind a shard's replica slots (``None`` entries
        for non-process workers)."""
        self._require_started()
        return tuple(worker.pid for worker in self._sets[shard].workers)

    def health(self) -> dict[int, list[dict]]:
        """Liveness snapshot of every replica slot, keyed by shard.

        Each entry reports what an operator polling a health endpoint
        needs: the slot index, whether the worker behind it is alive as
        far as the OS (or scripted harness) knows, its pid, and how many
        times the slot has been respawned.  Purely observational — no
        burial or respawn is triggered; a dead slot shows ``alive:
        False`` until the routing layer's next health sweep replaces it.
        """
        self._require_started()
        snapshot: dict[int, list[dict]] = {}
        for shard, replica_set in sorted(self._sets.items()):
            stats = replica_set.stats()
            snapshot[shard] = [
                {
                    "replica": slot,
                    "alive": worker.alive(),
                    "pid": worker.pid,
                    "respawns": stats.respawns[slot],
                }
                for slot, worker in enumerate(replica_set.workers)
            ]
        return snapshot

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for replica_set in self._sets.values():
            replica_set.close()
        self._sets = {}

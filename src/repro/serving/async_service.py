"""Async micro-batching front-end over the batched serving layer.

The batched services (:class:`~repro.serving.service.DiversificationService`
and :class:`~repro.serving.sharded.ShardedDiversificationService`) take a
*pre-formed* batch — but a real front-end serving millions of users
receives single queries on independent connections and must form the
batches itself.  :class:`AsyncDiversificationService` is that admission
layer:

* callers ``await submit(query)`` — one awaitable per request, resolved
  with exactly the :class:`~repro.core.framework.DiversifiedResult` a
  direct ``diversify_batch`` call would have produced;
* requests land in a **bounded** queue (full queue = backpressure: the
  submit blocks, or fails fast once the service is stopping);
* a single batcher task coalesces requests under a two-sided window —
  close when ``max_batch_size`` requests have gathered or ``max_wait_s``
  has passed since the first one arrived, whichever comes first;
* each closed batch is dispatched to the backend's ``diversify_batch``
  on an executor so the event loop keeps accepting traffic while the
  (GIL-releasing numpy kernels aside, CPU-bound) ranking runs;
* per-request futures resolve in request order within the batch, and
  batch-formation accounting (batch-size histogram, queue-wait sample,
  queue depth peak) lands in :class:`~repro.serving.service.ServiceStats`
  next to the usual counters.

Timing is injected through a small clock protocol (:class:`LoopClock`)
so the admission window can be driven by a *manual* clock in tests —
every window/backpressure/cancellation behaviour is asserted
deterministically in ``tests/serving/test_async_service.py`` without a
single real sleep.  ``python -m repro.experiments.throughput --mode
async`` drives the front-end under open-loop Zipf arrivals and verifies
result identity against the sequential batched path end to end.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable
from concurrent.futures import Executor
from dataclasses import dataclass

from repro.core.framework import DiversifiedResult
from repro.serving.service import ServiceStats, WarmReport

__all__ = [
    "AsyncDiversificationService",
    "LoopClock",
    "ServiceClosed",
]


class ServiceClosed(RuntimeError):
    """Raised to submitters whose request cannot be served because the
    service is stopping (or was never started)."""


class LoopClock:
    """Default clock: the running event loop's time and real sleeps.

    Anything with ``now() -> float`` and ``async sleep(seconds)`` can
    stand in — the deterministic test harness substitutes a manually
    advanced clock so admission windows close exactly when a test says
    so.
    """

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)


@dataclass
class _Pending:
    """One admitted request: its query, the caller's future, and when it
    entered the queue (for the wait-time sample)."""

    query: str
    future: asyncio.Future
    enqueued_at: float


class AsyncDiversificationService:
    """Coalesce single-query submits into windowed batches.

    Parameters
    ----------
    backend:
        Anything with ``diversify_batch(queries) -> list[DiversifiedResult]``
        and ``warm(queries)`` — a
        :class:`~repro.serving.service.DiversificationService` or a
        :class:`~repro.serving.sharded.ShardedDiversificationService`
        (running on any execution backend, including
        :class:`~repro.serving.backends.ProcessBackend`: its worker
        protocol is serialized internally, so dispatching from the
        event loop's executor threads is safe).  The backend's own
        dedup/caching make results identical to a direct batched call
        over the same queries.
    max_batch_size:
        Close the window as soon as this many requests have gathered.
    max_wait_s:
        Close the window this long after its *first* request arrived,
        even if the batch is not full.  ``0`` disables the timer: a
        batch is whatever is already queued when the batcher looks.
    max_pending:
        Bound of the admission queue.  When it is full, ``submit``
        blocks until the batcher drains — backpressure instead of
        unbounded buffering.
    executor:
        Where batches run.  ``None`` uses the event loop's default
        thread pool.  Ignored when ``inline=True``, which runs the
        backend call directly on the event loop — only sensible for
        tests and tiny workloads, but perfectly deterministic.
    clock:
        The time source for the admission window (see :class:`LoopClock`).
    name:
        Label for ``stats`` summaries.

    >>> async with AsyncDiversificationService(service) as front:  # doctest: +SKIP
    ...     results = await asyncio.gather(*(front.submit(q) for q in traffic))
    """

    def __init__(
        self,
        backend,
        max_batch_size: int = 32,
        max_wait_s: float = 0.005,
        max_pending: int = 1024,
        executor: Executor | None = None,
        inline: bool = False,
        clock=None,
        name: str = "async",
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.backend = backend
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_pending = max_pending
        self.name = name
        self.stats = ServiceStats(name=name)
        self._executor = executor
        self._inline = inline
        self._clock = clock if clock is not None else LoopClock()
        self._queue: asyncio.Queue[_Pending] | None = None
        self._runner: asyncio.Task | None = None
        self._closing: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._runner is not None and not self._runner.done()

    def start(self) -> None:
        """Create the admission queue and the batcher task.  Must be
        called from a running event loop; idempotent while running."""
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        self._closing = asyncio.Event()
        self._runner = asyncio.get_running_loop().create_task(
            self._run(), name=f"repro-batcher-{self.name}"
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting requests and shut the batcher down.

        With ``drain=True`` (the default) every request already accepted
        into the queue is still batched and resolved first — the open
        admission window closes immediately rather than waiting out
        ``max_wait_s``.  Submitters blocked on backpressure, and any
        requests still queued with ``drain=False``, are failed with
        :class:`ServiceClosed`.  Idempotent, including *concurrent*
        stops: overlapping callers share one shutdown instead of
        cancelling a runner another stop already tore down.
        """
        runner = self._runner
        if runner is None:
            return
        self._closing.set()
        if drain:
            await self._queue.join()
        if self._runner is runner:
            self._runner = None
            runner.cancel()
        await asyncio.gather(runner, return_exceptions=True)
        await self._sweep_rejected()

    async def _sweep_rejected(self) -> None:
        """Fail every request still in (or racing into) the queue.

        A submitter parked on backpressure holds its item *outside* the
        queue: each ``get_nowait`` below frees a slot and wakes one such
        putter, whose item only lands after the event loop runs its
        resumed coroutine.  A single sweep would miss those stragglers —
        their futures would never resolve — so the sweep repeats, with
        yield rounds in between, until a full round finds the queue
        empty and nothing new arrived.
        """
        while True:
            swept = False
            while True:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                swept = True
                if not item.future.done():
                    item.future.set_exception(ServiceClosed("service stopped"))
                self._queue.task_done()
            for _ in range(3):  # let woken putters land their items
                await asyncio.sleep(0)
            if not swept and self._queue.empty():
                return

    async def drain(self) -> dict:
        """Graceful-shutdown hook: stop admitting, flush what is queued.

        The rolling-restart primitive the HTTP layer's ``POST /drain``
        exposes: admission closes immediately (new submits raise
        :class:`ServiceClosed`), every request already accepted is still
        batched and resolved, and the returned counts say what the drain
        found and how long the flush took.  Safe to call on a stopped
        (or never-started) service — it reports zero pending and flags
        ``already_stopped``.
        """
        already_stopped = self._runner is None
        pending = 0 if self._queue is None else self._queue.qsize()
        start = time.perf_counter()
        await self.stop(drain=True)
        return {
            "already_stopped": already_stopped,
            "pending_at_drain": pending,
            "served_total": self.stats.served,
            "batches_total": self.stats.batches,
            "seconds": time.perf_counter() - start,
        }

    async def __aenter__(self) -> "AsyncDiversificationService":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=True)

    # -- submission --------------------------------------------------------------

    async def submit(self, query: str) -> DiversifiedResult:
        """Admit one query; resolves when its batch has been served.

        Blocks (asynchronously) while the admission queue is full.  A
        submit waiting on that backpressure when the service stops is
        failed with :class:`ServiceClosed` instead of hanging.
        """
        if not self.running:
            raise ServiceClosed("service is not running; use `async with` "
                                "or call start() first")
        if self._closing.is_set():
            raise ServiceClosed("service is stopping")
        loop = asyncio.get_running_loop()
        item = _Pending(query, loop.create_future(), self._clock.now())
        if not self._queue.full():
            # Fast path: space available, admit without yielding (so the
            # queue-depth sample sees the burst before the batcher drains).
            self._queue.put_nowait(item)
        else:
            put = asyncio.ensure_future(self._queue.put(item))
            closing = asyncio.ensure_future(self._closing.wait())
            try:
                await asyncio.wait(
                    {put, closing}, return_when=asyncio.FIRST_COMPLETED
                )
                if not put.done():
                    # Backpressure lost the race against shutdown.
                    put.cancel()
                    await asyncio.gather(put, return_exceptions=True)
                    raise ServiceClosed(
                        "service stopped while awaiting queue space"
                    )
                put.result()  # re-raise a put failure, if any
            finally:
                if not closing.done():
                    closing.cancel()
                    await asyncio.gather(closing, return_exceptions=True)
        depth = self._queue.qsize()
        if depth > self.stats.queue_depth_peak:
            self.stats.queue_depth_peak = depth
        return await item.future

    async def submit_many(self, queries: Iterable[str]) -> list[DiversifiedResult]:
        """Submit many queries concurrently; results align with input."""
        return list(
            await asyncio.gather(*(self.submit(query) for query in queries))
        )

    async def warm(self, queries: Iterable[str]) -> WarmReport:
        """Run the backend's offline phase without blocking the loop."""
        queries = list(queries)
        if self._inline:
            return self.backend.warm(queries)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self.backend.warm, queries
        )

    # -- batch formation ---------------------------------------------------------

    def _fill(self, batch: list[_Pending]) -> None:
        """Greedily move already-queued requests into *batch*."""
        while len(batch) < self.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return

    async def _reap(self, getter: asyncio.Task, batch: list[_Pending]) -> None:
        """Cancel a pending queue-get; keep its item if it won the race."""
        getter.cancel()
        try:
            item = await getter
        except (asyncio.CancelledError, asyncio.QueueEmpty):
            return
        batch.append(item)

    async def _await_window(self, batch: list[_Pending]) -> None:
        """Gather requests until the batch fills, ``max_wait_s`` passes
        (measured from the first request), or the service starts
        stopping."""
        deadline = asyncio.ensure_future(self._clock.sleep(self.max_wait_s))
        closing = asyncio.ensure_future(self._closing.wait())
        getter: asyncio.Future | None = None
        try:
            while len(batch) < self.max_batch_size:
                getter = asyncio.ensure_future(self._queue.get())
                done, _ = await asyncio.wait(
                    {getter, deadline, closing},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if getter in done:
                    batch.append(getter.result())
                    self._fill(batch)
                else:
                    await self._reap(getter, batch)
                getter = None
                if deadline in done or closing in done:
                    return
        finally:
            if getter is not None:
                # The wait itself was interrupted (batcher cancelled):
                # keep the item if the get had already won, else put the
                # get out of its misery so it cannot consume one later.
                getter.cancel()
                if getter.done() and not getter.cancelled():
                    batch.append(getter.result())
            for task in (deadline, closing):
                if not task.done():
                    task.cancel()
            await asyncio.gather(deadline, closing, return_exceptions=True)

    async def _run(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            try:
                self._fill(batch)
                if (
                    len(batch) < self.max_batch_size
                    and self.max_wait_s > 0
                    and not self._closing.is_set()
                ):
                    await self._await_window(batch)
            except asyncio.CancelledError:
                # Stopped without drain while the window was open: the
                # batch's requests were already dequeued, so the queue
                # sweep in stop() cannot see them — fail them here.
                self._reject(batch, ServiceClosed("service stopped"))
                for _ in batch:
                    self._queue.task_done()
                raise
            await self._dispatch(batch)

    # -- dispatch ----------------------------------------------------------------

    def _reject(self, items: list[_Pending], exc: BaseException) -> None:
        for item in items:
            if not item.future.done():
                item.future.set_exception(exc)

    async def _dispatch(self, batch: list[_Pending]) -> None:
        """Serve one closed batch and resolve its futures."""
        try:
            closed_at = self._clock.now()
            # A caller that cancelled its submit no longer needs a
            # result; its query is dropped unless another live request
            # shares it (the backend dedups those anyway).
            live = [item for item in batch if not item.future.done()]
            if not live:
                return
            self.stats.record_formation(
                len(live),
                ((closed_at - item.enqueued_at) * 1000.0 for item in live),
                self._queue.qsize(),
            )
            queries = [item.query for item in live]
            start = time.perf_counter()
            try:
                if self._inline:
                    results = self.backend.diversify_batch(queries)
                else:
                    results = await asyncio.get_running_loop().run_in_executor(
                        self._executor, self.backend.diversify_batch, queries
                    )
            except asyncio.CancelledError:
                self._reject(live, ServiceClosed("service stopped mid-batch"))
                raise
            except Exception as exc:
                self._reject(live, exc)
                return
            finally:
                self.stats.seconds += time.perf_counter() - start
            for item, result in zip(live, results):
                if not item.future.done():
                    item.future.set_result(result)
            self.stats.served += len(live)
            self.stats.batches += 1
        finally:
            for _ in batch:
                self._queue.task_done()

    # -- summaries ---------------------------------------------------------------

    def backend_stats(self) -> ServiceStats:
        """The backend's own serving stats (cluster-merged when sharded)."""
        if hasattr(self.backend, "cluster_stats"):
            return self.backend.cluster_stats()
        return self.backend.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return (
            f"AsyncDiversificationService(name={self.name!r}, {state}, "
            f"max_batch_size={self.max_batch_size}, "
            f"max_wait_s={self.max_wait_s}, max_pending={self.max_pending})"
        )

"""Sharded serving layer: hash-routed shards of the diversification service.

One :class:`~repro.serving.service.DiversificationService` bounds the
paper's online phase to a single worker.  This module grows it
horizontally the way the partitioned-storage designs in PAPERS.md grow
theirs: state is partitioned with deterministic placement, and the
per-partition summaries merge back losslessly.

:class:`ShardedDiversificationService` owns N shard services.  Queries
route by :func:`~repro.retrieval.sharding.stable_shard` — the same
seeded, process-stable hash the retrieval layer uses to place documents
— so a given query *always* lands on the same shard, and each shard's
specialization cache, detection cache and result LRU hold exactly its
partition of the query space.  The offline phase (``warm``) and the
online phase (``diversify_batch``) fan out per-shard over a thread pool
and merge:

* results re-assemble in request order (routing is per-query, the batch
  contract is unchanged);
* :class:`~repro.serving.service.ServiceStats` /
  :class:`~repro.core.cache.CacheStats` /
  :class:`~repro.serving.service.WarmReport` roll up through their
  ``merge`` classmethods into cluster-level summaries that keep the
  per-shard breakdown.

Because every shard runs the same framework over the same corpus (the
index itself may be document-partitioned via
:class:`~repro.retrieval.sharding.PartitionedSearchEngine`, which is
ranking-identical), the cluster serves **exactly** the rankings the
unsharded service serves — asserted by the test suite and re-checked by
``python -m repro.experiments.throughput --shards N``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.core.cache import CacheStats
from repro.core.framework import DiversificationFramework, DiversifiedResult
from repro.retrieval.sharding import stable_shard
from repro.serving.service import (
    DiversificationService,
    PreparedQuery,
    ServiceStats,
    WarmReport,
)

__all__ = ["ShardedDiversificationService"]


class ShardedDiversificationService:
    """N hash-routed :class:`DiversificationService` shards behind one API.

    Parameters
    ----------
    services:
        The shard services, in shard order.  Shards without a ``name``
        are labelled ``shard0 … shardN-1`` so their stats stay
        attributable in merged reports.
    max_workers:
        Thread-pool width for the per-shard fan-out.  Defaults to
        ``min(num_shards, os.cpu_count())`` — on a single-core host the
        fan-out degenerates to an ordered sweep, which is the right call
        for the GIL-bound pure-Python pipeline; the numpy kernels
        release the GIL inside their matmuls, so wider pools pay off as
        task sizes grow.
    router_seed:
        Seed of the :func:`~repro.retrieval.sharding.stable_shard`
        router.  Must be kept constant for the lifetime of the cluster's
        caches: changing it remaps queries to different shards (cold
        caches), though results stay correct because every shard can
        answer any query.

    >>> cluster = ShardedDiversificationService.from_factory(  # doctest: +SKIP
    ...     lambda shard: DiversificationFramework(engine, miner),
    ...     num_shards=4,
    ... )
    >>> cluster.warm(expected_queries)                         # doctest: +SKIP
    >>> results = cluster.diversify_batch(traffic)             # doctest: +SKIP
    >>> print(cluster.cluster_stats().summary())               # doctest: +SKIP
    """

    def __init__(
        self,
        services: Sequence[DiversificationService],
        max_workers: int | None = None,
        router_seed: int = 0,
    ) -> None:
        services = list(services)
        if not services:
            raise ValueError("at least one shard service is required")
        for i, service in enumerate(services):
            if not service.name:
                service.name = f"shard{i}"
                service.stats.name = service.name
        self._services = services
        self.router_seed = router_seed
        if max_workers is None:
            max_workers = min(len(services), os.cpu_count() or 1)
        self._max_workers = max(1, max_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._online_seconds = 0.0

    @classmethod
    def from_factory(
        cls,
        framework_factory: Callable[[int], DiversificationFramework],
        num_shards: int,
        result_cache_size: int = 2048,
        max_workers: int | None = None,
        router_seed: int = 0,
    ) -> "ShardedDiversificationService":
        """Build *num_shards* shards from ``framework_factory(shard_id)``.

        The factory is called once per shard; frameworks may share a
        (read-only) engine and detector, or carry per-shard replicas /
        a :class:`~repro.retrieval.sharding.PartitionedSearchEngine` —
        anything ranking-identical keeps the cluster's identity
        guarantee.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        services = [
            DiversificationService(
                framework_factory(shard),
                result_cache_size=result_cache_size,
                name=f"shard{shard}",
            )
            for shard in range(num_shards)
        ]
        return cls(services, max_workers=max_workers, router_seed=router_seed)

    # -- routing -----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._services)

    @property
    def services(self) -> tuple[DiversificationService, ...]:
        """The shard services, in shard order (read-only view)."""
        return tuple(self._services)

    def route(self, query: str) -> int:
        """Shard id owning *query* — stable across processes/restarts."""
        return stable_shard(query, len(self._services), self.router_seed)

    def shard_for(self, query: str) -> DiversificationService:
        """The shard service that owns *query*."""
        return self._services[self.route(query)]

    def partition(self, queries: Iterable[str]) -> list[list[str]]:
        """Split *queries* into per-shard buckets, preserving order.

        The hash runs once per *distinct* query — serving batches repeat
        queries heavily (that is what batching is for), so routing cost
        tracks distinct traffic, not raw volume.
        """
        return self._partition_with_routes(queries)[0]

    def _partition_with_routes(
        self, queries: Iterable[str]
    ) -> tuple[list[list[str]], dict[str, int]]:
        """Per-shard buckets plus the ``{query: shard}`` memo behind them."""
        buckets: list[list[str]] = [[] for _ in self._services]
        shard_of: dict[str, int] = {}
        for query in queries:
            shard = shard_of.get(query)
            if shard is None:
                shard = shard_of[query] = self.route(query)
            buckets[shard].append(query)
        return buckets, shard_of

    # -- fan-out machinery -------------------------------------------------------

    def _run_per_shard(self, calls: list[tuple[int, Callable[[], object]]]):
        """Run ``(shard, thunk)`` pairs, concurrently when the pool allows.

        Returns ``{shard: result}``.  With one worker (or one call) the
        sweep stays on the calling thread — no pool overhead, same
        ordering semantics.
        """
        if self._max_workers == 1 or len(calls) <= 1:
            return {shard: thunk() for shard, thunk in calls}
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-shard",
            )
        futures = {shard: self._pool.submit(thunk) for shard, thunk in calls}
        return {shard: future.result() for shard, future in futures.items()}

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent; cluster stays usable
        inline afterwards)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- offline phase -----------------------------------------------------------

    def warm(self, queries: Iterable[str]) -> WarmReport:
        """Fan the offline phase out per-shard; return the merged report.

        Each shard warms only the queries it will later serve, so the
        specialization artifacts land exactly where the online path
        reads them.  The merged report's ``shards`` tuple keeps one
        (possibly empty) report per shard, in shard order; its
        ``seconds`` is the cluster wall-clock measured around the
        fan-out (the per-shard reports keep shard-busy time, which can
        sum past it when shards overlap).
        """
        start = time.perf_counter()
        buckets = self.partition(queries)
        done = self._run_per_shard(
            [
                (shard, lambda s=self._services[shard], b=bucket: s.warm(b))
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        reports = [
            done.get(shard)
            or WarmReport(0, 0, 0, 0, 0.0, name=self._services[shard].name)
            for shard in range(len(self._services))
        ]
        return dataclasses.replace(
            WarmReport.merge(reports), seconds=time.perf_counter() - start
        )

    def prepare_batch(self, queries: Iterable[str]) -> dict[str, PreparedQuery]:
        """Detection + task construction, fanned out per-shard."""
        buckets = self.partition(queries)
        done = self._run_per_shard(
            [
                (
                    shard,
                    lambda s=self._services[shard], b=bucket: s.prepare_batch(b),
                )
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        merged: dict[str, PreparedQuery] = {}
        for prepared in done.values():
            merged.update(prepared)
        return merged

    # -- online phase ------------------------------------------------------------

    def diversify(self, query: str) -> DiversifiedResult:
        """Serve one query on its owning shard."""
        start = time.perf_counter()
        result = self.shard_for(query).diversify(query)
        self._online_seconds += time.perf_counter() - start
        return result

    def diversify_batch(self, queries: Sequence[str]) -> list[DiversifiedResult]:
        """Serve a batch across the shards; results align with *queries*.

        The batch splits into per-shard sub-batches (duplicates of a
        query always share a shard, so the per-shard dedup equals the
        unsharded dedup), each shard runs its own
        :meth:`DiversificationService.diversify_batch`, and the shard
        outputs zip back together in request order.
        """
        queries = list(queries)
        if not queries:
            return []
        start = time.perf_counter()
        buckets, shard_of = self._partition_with_routes(queries)
        done = self._run_per_shard(
            [
                (
                    shard,
                    lambda s=self._services[shard], b=bucket: s.diversify_batch(b),
                )
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        # Shard outputs align with their buckets, which preserved the
        # request order — walk the request stream again, consuming each
        # owning shard's results in turn.
        cursors = {shard: iter(results) for shard, results in done.items()}
        merged = [next(cursors[shard_of[query]]) for query in queries]
        self._online_seconds += time.perf_counter() - start
        return merged

    # -- maintenance & cluster summaries -----------------------------------------

    def invalidate(self) -> None:
        """Drop every shard's cached results and detections."""
        for service in self._services:
            service.invalidate()

    def shard_stats(self) -> list[ServiceStats]:
        """Per-shard online stats, in shard order."""
        return [service.stats for service in self._services]

    def cluster_stats(self) -> ServiceStats:
        """Merged online stats with *cluster* wall-clock.

        Counters and latency samples merge across shards; ``seconds``
        is the wall-clock this object measured around its fan-outs —
        overlapping shard work is not double-counted, so
        ``throughput_qps`` is the cluster's actual serving rate.
        """
        merged = ServiceStats.merge(self.shard_stats())
        merged.seconds = self._online_seconds
        return merged

    def spec_cache_info(self) -> CacheStats:
        """Cluster-merged specialization-cache counters."""
        return CacheStats.merge(s.spec_cache_info() for s in self._services)

    def result_cache_info(self) -> CacheStats:
        """Cluster-merged result-LRU counters."""
        return CacheStats.merge(s.result_cache_info() for s in self._services)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDiversificationService(shards={self.num_shards}, "
            f"workers={self._max_workers}, seed={self.router_seed})"
        )

"""Sharded serving layer: hash-routed shards of the diversification service.

One :class:`~repro.serving.service.DiversificationService` bounds the
paper's online phase to a single worker.  This module grows it
horizontally the way the partitioned-storage designs in PAPERS.md grow
theirs: state is partitioned with deterministic placement, and the
per-partition summaries merge back losslessly.

:class:`ShardedDiversificationService` owns N shard services.  Queries
route by :func:`~repro.retrieval.sharding.stable_shard` — the same
seeded, process-stable hash the retrieval layer uses to place documents
— so a given query *always* lands on the same shard, and each shard's
specialization cache, detection cache and result LRU hold exactly its
partition of the query space.  The offline phase (``warm``) and the
online phase (``diversify_batch``) fan out per-shard over a pluggable
:class:`~repro.serving.backends.ExecutionBackend` — an ordered inline
sweep, a thread pool, or real OS processes — and merge:

* results re-assemble in request order (routing is per-query, the batch
  contract is unchanged);
* :class:`~repro.serving.service.ServiceStats` /
  :class:`~repro.core.cache.CacheStats` /
  :class:`~repro.serving.service.WarmReport` roll up through their
  ``merge`` classmethods into cluster-level summaries that keep the
  per-shard breakdown — every shard contributes an entry, including
  shards that served zero queries.

Because every shard runs the same framework over the same corpus (the
index itself may be document-partitioned via
:class:`~repro.retrieval.sharding.PartitionedSearchEngine`, which is
ranking-identical), the cluster serves **exactly** the rankings the
unsharded service serves — under *any* backend — asserted by the test
suite and re-checked by ``python -m repro.experiments.throughput
--shards N [--backend process]``.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.core.cache import CacheStats
from repro.core.framework import DiversificationFramework, DiversifiedResult
from repro.retrieval.sharding import stable_shard
from repro.serving.backends import ExecutionBackend, make_backend
from repro.serving.service import (
    DiversificationService,
    PreparedQuery,
    ServiceStats,
    WarmReport,
)

__all__ = ["ShardedDiversificationService", "ShardServiceFactory"]


@dataclasses.dataclass(frozen=True)
class ShardServiceFactory:
    """Build one shard's :class:`DiversificationService` from a framework
    factory — the per-process construction protocol.

    An instance travels to wherever the execution backend places the
    shard: in-process backends just call it; a
    :class:`~repro.serving.backends.ProcessBackend` worker calls it
    after fork (or unpickles it first, under spawn — then
    ``framework_factory`` itself must pickle).  ``warm_artifacts_dir``
    optionally points at a directory written by
    :meth:`ShardedDiversificationService.save_warm`: the freshly built
    shard hydrates its offline artifacts from disk instead of
    re-deriving them.  ``warm_store`` is the SQLite twin: the path of an
    index store whose ``warm_artifacts`` table was written by the
    offline pipeline — the shard hydrates from its rows (same payload
    bytes as the JSONL files, so rankings are identical), which is how
    process workers and respawned replicas cold-start in O(attach)
    without a JSONL re-read.  ``fused`` is the shard services'
    fused-kernel policy (see :class:`DiversificationService`); rankings
    are identical either way.
    """

    framework_factory: Callable[[int], DiversificationFramework]
    result_cache_size: int = 2048
    warm_artifacts_dir: str | None = None
    warm_store: str | None = None
    fused: bool | None = None

    def __call__(self, shard: int) -> DiversificationService:
        service = DiversificationService(
            self.framework_factory(shard),
            result_cache_size=self.result_cache_size,
            name=f"shard{shard}",
            fused=self.fused,
        )
        if self.warm_artifacts_dir is not None:
            path = _warm_path(self.warm_artifacts_dir, shard)
            if path.is_file():
                service.load_warm(path)
        if self.warm_store is not None and Path(self.warm_store).is_file():
            service.load_warm_store(self.warm_store, shard)
        return service


def _warm_path(directory: str | Path, shard: int) -> Path:
    """Where shard *shard*'s warm artifacts live under *directory*."""
    return Path(directory) / f"warm-shard{shard}.jsonl"


class ShardedDiversificationService:
    """N hash-routed :class:`DiversificationService` shards behind one API.

    Parameters
    ----------
    services:
        The shard services, in shard order, when they are built by the
        caller (the in-process path).  Shards without a ``name`` are
        labelled ``shard0 … shardN-1`` so their stats stay attributable
        in merged reports.  Pass ``None`` (and use :meth:`from_factory`)
        for backends that build the services themselves — a
        :class:`~repro.serving.backends.ProcessBackend` constructs each
        shard inside its worker process.
    max_workers:
        Fan-out width hint for backends built from a name/default.  The
        default :class:`~repro.serving.backends.ThreadBackend` resolves
        ``None`` to ``min(num_shards, os.cpu_count())``.
    router_seed:
        Seed of the :func:`~repro.retrieval.sharding.stable_shard`
        router.  Must be kept constant for the lifetime of the cluster's
        caches: changing it remaps queries to different shards (cold
        caches), though results stay correct because every shard can
        answer any query.
    backend:
        Where per-shard calls execute: a name (``"inline"``,
        ``"thread"``, ``"process"``), an
        :class:`~repro.serving.backends.ExecutionBackend` instance, or
        ``None`` for the default thread pool.  Rankings are identical
        under every backend; only the parallelism substrate changes.

    >>> cluster = ShardedDiversificationService.from_factory(  # doctest: +SKIP
    ...     lambda shard: DiversificationFramework(engine, miner),
    ...     num_shards=4,
    ...     backend="process",
    ... )
    >>> cluster.warm(expected_queries)                         # doctest: +SKIP
    >>> results = cluster.diversify_batch(traffic)             # doctest: +SKIP
    >>> print(cluster.cluster_stats().summary())               # doctest: +SKIP
    """

    def __init__(
        self,
        services: Sequence[DiversificationService] | None = None,
        max_workers: int | None = None,
        router_seed: int = 0,
        backend: "str | ExecutionBackend | None" = None,
    ) -> None:
        backend = make_backend(backend, max_workers=max_workers)
        if services is not None:
            services = list(services)
            if not services:
                raise ValueError("at least one shard service is required")
            for i, service in enumerate(services):
                if not service.name:
                    service.name = f"shard{i}"
                    service.stats.name = service.name
            if backend.started:
                raise ValueError(
                    "pass either pre-built services or a started backend, "
                    "not both"
                )
            if not hasattr(backend, "adopt"):
                raise ValueError(
                    f"{type(backend).__name__} builds its own services; "
                    "construct the cluster via from_factory()"
                )
            backend.adopt(services)
        elif not backend.started:
            raise ValueError(
                "no services given and the backend is not started; "
                "use from_factory()"
            )
        self._backend = backend
        self.router_seed = router_seed
        self._online_seconds = 0.0

    @classmethod
    def from_factory(
        cls,
        framework_factory: Callable[[int], DiversificationFramework],
        num_shards: int,
        result_cache_size: int = 2048,
        max_workers: int | None = None,
        router_seed: int = 0,
        backend: "str | ExecutionBackend | None" = None,
        warm_artifacts_dir: "str | Path | None" = None,
        warm_store: "str | Path | None" = None,
        fused: bool | None = None,
        replicas: int = 1,
        policy: str = "round-robin",
        hedge_after_ms: float | None = None,
    ) -> "ShardedDiversificationService":
        """Build *num_shards* shards from ``framework_factory(shard_id)``.

        The factory is called once per shard, *wherever the backend
        places that shard* — in this process for ``inline``/``thread``,
        inside a worker process for ``process`` (inherited under fork;
        must pickle under spawn).  Frameworks may share a (read-only)
        engine and detector, or carry per-shard replicas / a
        :class:`~repro.retrieval.sharding.PartitionedSearchEngine` —
        anything ranking-identical keeps the cluster's identity
        guarantee.  With ``warm_artifacts_dir`` (a directory written by
        :meth:`save_warm`), every shard hydrates its offline artifacts
        from disk as it is built.  ``warm_store`` points at an index
        store instead (see :func:`repro.retrieval.store.write_store`):
        shards — and replicas respawned after a crash — hydrate their
        warm artifacts by attaching the store read-only, byte-identical
        to the JSONL path.  ``fused`` sets every shard's fused-kernel
        policy (default: auto).

        ``replicas=R`` (with a ``None``/``"process"`` backend spec)
        builds a fault-tolerant cluster instead: R process workers per
        shard behind a ``ReplicatedBackend``, with ``policy`` routing
        (``"round-robin"`` or ``"least-outstanding"``), optional hedged
        requests after ``hedge_after_ms``, and automatic
        respawn-and-rehydrate — a respawned replica re-runs the factory,
        so pair replication with ``warm_artifacts_dir`` to make the
        rebuild hydrate from disk.  Every replica is built by the same
        deterministic factory, so results are byte-identical no matter
        which replica answers.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        backend = make_backend(
            backend,
            max_workers=max_workers,
            replicas=replicas,
            policy=policy,
            hedge_after_ms=hedge_after_ms,
        )
        backend.start(
            ShardServiceFactory(
                framework_factory,
                result_cache_size=result_cache_size,
                warm_artifacts_dir=(
                    str(warm_artifacts_dir)
                    if warm_artifacts_dir is not None
                    else None
                ),
                warm_store=(
                    str(warm_store) if warm_store is not None else None
                ),
                fused=fused,
            ),
            num_shards,
        )
        return cls(backend=backend, router_seed=router_seed)

    # -- routing -----------------------------------------------------------------

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend running the per-shard calls."""
        return self._backend

    @property
    def num_shards(self) -> int:
        return self._backend.num_shards

    @property
    def services(self) -> tuple[DiversificationService, ...]:
        """The shard services, in shard order (read-only view).

        Only available on in-process backends; shards driven by a
        :class:`~repro.serving.backends.ProcessBackend` live in worker
        processes — use :meth:`shard_stats` / :meth:`cluster_stats` /
        the cache-info methods, which fetch snapshots over the boundary.
        """
        local = self._backend.local_services
        if local is None:
            raise RuntimeError(
                "shard services live in worker processes; use shard_stats()"
                " / cluster_stats() / spec_cache_info() for snapshots"
            )
        return local

    def _shard_names(self) -> list[str]:
        local = self._backend.local_services
        if local is not None:
            return [service.name for service in local]
        return [f"shard{i}" for i in range(self.num_shards)]

    def route(self, query: str) -> int:
        """Shard id owning *query* — stable across processes/restarts."""
        return stable_shard(query, self.num_shards, self.router_seed)

    def shard_for(self, query: str) -> DiversificationService:
        """The (in-process) shard service that owns *query*."""
        return self.services[self.route(query)]

    def partition(self, queries: Iterable[str]) -> list[list[str]]:
        """Split *queries* into per-shard buckets, preserving order.

        The hash runs once per *distinct* query — serving batches repeat
        queries heavily (that is what batching is for), so routing cost
        tracks distinct traffic, not raw volume.
        """
        return self._partition_with_routes(queries)[0]

    def _partition_with_routes(
        self, queries: Iterable[str]
    ) -> tuple[list[list[str]], dict[str, int]]:
        """Per-shard buckets plus the ``{query: shard}`` memo behind them."""
        buckets: list[list[str]] = [[] for _ in range(self.num_shards)]
        shard_of: dict[str, int] = {}
        for query in queries:
            shard = shard_of.get(query)
            if shard is None:
                shard = shard_of[query] = self.route(query)
            buckets[shard].append(query)
        return buckets, shard_of

    def close(self) -> None:
        """Release the backend's execution resources (idempotent; with
        in-process backends the cluster stays usable inline afterwards,
        a process backend is shut down for good)."""
        self._backend.close()

    # -- offline phase -----------------------------------------------------------

    def warm(self, queries: Iterable[str]) -> WarmReport:
        """Fan the offline phase out per-shard; return the merged report.

        Each shard warms only the queries it will later serve, so the
        specialization artifacts land exactly where the online path
        reads them.  The merged report's ``shards`` tuple keeps one
        (possibly empty) report per shard, in shard order, and it
        carries *both* clocks, labelled: ``seconds`` is the cluster
        wall-clock measured here around routing + fan-out + merge, and
        ``busy_seconds`` is the summed per-shard busy time — which
        exceeds the wall-clock when shards overlap (thread/process
        backends) and falls short of it under the inline backend, where
        the wall-clock additionally pays for routing and merging.
        Neither number is ever silently substituted for the other.
        """
        start = time.perf_counter()
        buckets = self.partition(queries)
        done = self._backend.invoke_each(
            [
                (shard, "warm", (bucket,))
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        names = self._shard_names()
        reports = [
            done.get(shard) or WarmReport(0, 0, 0, 0, 0.0, name=names[shard])
            for shard in range(self.num_shards)
        ]
        return dataclasses.replace(
            WarmReport.merge(reports), seconds=time.perf_counter() - start
        )

    def save_warm(self, directory: str | Path) -> int:
        """Persist every shard's warm artifacts under *directory*.

        One JSON-lines file per shard (``warm-shard<i>.jsonl``), written
        wherever the shard lives — a process-backed shard writes from
        its own worker.  Returns the total number of specialization
        artifacts saved.  A later cluster (same corpus, same shard
        count, same router seed) hydrates via
        ``from_factory(..., warm_artifacts_dir=directory)`` or
        :meth:`load_warm`.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        done = self._backend.invoke_each(
            [
                (shard, "save_warm", (str(_warm_path(directory, shard)),))
                for shard in range(self.num_shards)
            ]
        )
        return sum(done.values())

    def warm_payloads(self) -> dict[int, dict[str, str]]:
        """Every shard's warm artifacts as canonical payload lines.

        ``{shard: {spec_query: payload}}`` — exactly the
        ``warm_payloads`` argument of
        :func:`repro.retrieval.store.write_store`, collected over the
        execution backend (strings travel cheaply across process
        boundaries).  The offline pipeline calls this once after the
        warm pass to bundle the cluster's warm state into the store.
        """
        done = self._backend.broadcast("export_warm_payloads")
        return {shard: done[shard] for shard in range(self.num_shards)}

    def load_warm(self, directory: str | Path) -> int:
        """Hydrate shards from a :meth:`save_warm` directory.

        Shards whose file is missing are skipped.  Returns the total
        number of artifacts installed across shards.  The loads fan out
        through the execution backend like every other per-shard call,
        so a restarted cluster on a thread/process backend hydrates its
        partitions *in parallel* from disk.
        """
        directory = Path(directory)
        calls = [
            (shard, "load_warm", (str(_warm_path(directory, shard)),))
            for shard in range(self.num_shards)
            if _warm_path(directory, shard).is_file()
        ]
        if not calls:
            return 0
        return sum(self._backend.invoke_each(calls).values())

    def prepare_batch(self, queries: Iterable[str]) -> dict[str, PreparedQuery]:
        """Detection + task construction, fanned out per-shard."""
        buckets = self.partition(queries)
        done = self._backend.invoke_each(
            [
                (shard, "prepare_batch", (bucket,))
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        merged: dict[str, PreparedQuery] = {}
        for prepared in done.values():
            merged.update(prepared)
        return merged

    # -- online phase ------------------------------------------------------------

    def diversify(self, query: str) -> DiversifiedResult:
        """Serve one query on its owning shard."""
        start = time.perf_counter()
        result = self._backend.invoke(self.route(query), "diversify", query)
        self._online_seconds += time.perf_counter() - start
        return result

    def diversify_batch(self, queries: Sequence[str]) -> list[DiversifiedResult]:
        """Serve a batch across the shards; results align with *queries*.

        The batch splits into per-shard sub-batches (duplicates of a
        query always share a shard, so the per-shard dedup equals the
        unsharded dedup), each shard runs its own
        :meth:`DiversificationService.diversify_batch`, and the shard
        outputs zip back together in request order.
        """
        queries = list(queries)
        if not queries:
            return []
        start = time.perf_counter()
        buckets, shard_of = self._partition_with_routes(queries)
        done = self._backend.invoke_each(
            [
                (shard, "diversify_batch", (bucket,))
                for shard, bucket in enumerate(buckets)
                if bucket
            ]
        )
        # Shard outputs align with their buckets, which preserved the
        # request order — walk the request stream again, consuming each
        # owning shard's results in turn.
        cursors = {shard: iter(results) for shard, results in done.items()}
        merged = [next(cursors[shard_of[query]]) for query in queries]
        self._online_seconds += time.perf_counter() - start
        return merged

    # -- live ingest --------------------------------------------------------------

    def ingest(
        self,
        add_documents: Sequence = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> int:
        """Coordinator entry point for one ingest batch.

        When the shards serve from a store file, the batch is appended
        to it exactly once here
        (:func:`repro.retrieval.store.append_epoch`); the
        :meth:`apply_updates` broadcast then makes every shard — and
        every replica of every shard — serve the new epoch.  Returns the
        epoch that includes the batch.
        """
        adds = list(add_documents)
        removes = list(remove_doc_ids)
        store_path = self._engine_store_path()
        if store_path is not None:
            from repro.retrieval.store import append_epoch

            append_epoch(store_path, adds, removes)
        return self.apply_updates(adds, removes)

    def _engine_store_path(self) -> str | None:
        local = self._backend.local_services
        if local is not None:
            return local[0].engine_store_path()
        return self._backend.invoke(0, "engine_store_path")

    def apply_updates(
        self,
        add_documents: Sequence = (),
        remove_doc_ids: Sequence[str] = (),
    ) -> int:
        """Apply an (already durable) ingest batch on every shard.

        Each shard applies the batch to its own engine copy and sweeps
        its caches; replicated backends route this to *every* replica
        (it is in ``REPLICATED_STATE_METHODS``), so no failover can
        time-travel the collection.  In-process shards commonly *share*
        one engine object — the engine advances once and every shard
        still runs its own cache sweep.  Returns the published epoch.
        """
        adds = list(add_documents)
        removes = list(remove_doc_ids)
        local = self._backend.local_services
        if local is not None:
            epochs = []
            advanced: dict[int, tuple[int, object]] = {}
            for service in local:
                key = id(service.framework.engine)
                if key not in advanced:
                    advanced[key] = service._advance_engine(adds, removes)
                epoch, delta = advanced[key]
                service._after_epoch(epoch, delta, len(adds), len(removes))
                epochs.append(epoch)
            return max(epochs)
        done = self._backend.broadcast("apply_updates", adds, removes)
        return max(done[shard] for shard in range(self.num_shards))

    def current_epoch(self) -> int:
        """The epoch every shard serves (shards advance in lockstep —
        probe shard 0)."""
        local = self._backend.local_services
        if local is not None:
            return local[0].current_epoch()
        return self._backend.invoke(0, "current_epoch")

    # -- maintenance & cluster summaries -----------------------------------------

    def invalidate(self) -> None:
        """Drop every shard's cached results and detections."""
        local = self._backend.local_services
        if local is not None:
            for service in local:
                service.invalidate()
        else:
            self._backend.broadcast("invalidate")

    def shard_stats(self) -> list[ServiceStats]:
        """Per-shard online stats, in shard order.

        In-process shards return their live objects; process-backed
        shards ship snapshots over the boundary.  Every shard appears —
        one that served zero queries contributes a well-formed zeroed
        entry carrying its name.
        """
        local = self._backend.local_services
        if local is not None:
            # get_stats() (not .stats) so store-backed shards refresh
            # their page-cache counters into the returned live objects.
            return [service.get_stats() for service in local]
        if self._backend.replicas > 1:
            return self._replicated_shard_stats()
        done = self._backend.broadcast("get_stats")
        return [done[shard] for shard in range(self.num_shards)]

    def _replicated_shard_stats(self) -> list[ServiceStats]:
        """Per-shard entries carrying per-replica breakdowns.

        Each replica ships its own :class:`ServiceStats` snapshot over
        the boundary; the routing-layer counters (hedges, respawns,
        failovers — events a worker cannot see from inside) are stamped
        onto the replica entries from the backend's
        ``replication_stats()``, then the replicas roll up into one
        shard-level entry via :meth:`ServiceStats.merge_replicas`.  A
        respawned replica's snapshot restarts from zero — its pre-crash
        traffic died with the old process — while the routing counters
        accumulate per *slot*, so ``respawns`` stays visible even though
        the serving counters reset.
        """
        replication = self._backend.replication_stats()
        entries = []
        for shard in range(self.num_shards):
            replica_stats = self._backend.invoke_replicas(shard, "get_stats")
            routing = replication.get(shard)
            if routing is not None:
                for replica, snapshot in enumerate(replica_stats):
                    snapshot.hedges_fired = routing.hedges_fired[replica]
                    snapshot.hedges_won = routing.hedges_won[replica]
                    snapshot.respawns = routing.respawns[replica]
                    snapshot.failovers = routing.failovers[replica]
            entries.append(
                ServiceStats.merge_replicas(replica_stats, name=f"shard{shard}")
            )
        return entries

    def cluster_stats(self) -> ServiceStats:
        """Merged online stats with *cluster* wall-clock.

        Counters and latency samples merge across shards; ``seconds``
        is the wall-clock this object measured around its fan-outs —
        overlapping shard work is not double-counted, so
        ``throughput_qps`` is the cluster's actual serving rate — while
        ``busy_seconds`` keeps the summed per-shard busy time next to
        it.  The per-shard breakdown (one entry per shard, zero-query
        shards included) is kept in the merged instance's ``shards``
        tuple.
        """
        merged = ServiceStats.merge(self.shard_stats())
        merged.seconds = self._online_seconds
        return merged

    def warm_memory_estimate(self) -> dict[str, int]:
        """Cluster-summed warm-artifact memory estimate.

        Fans :meth:`DiversificationService.warm_memory_estimate` out to
        every shard (snapshots cross the process boundary on a process
        backend) and sums component-wise — the snippet-vector half of
        the offline pipeline's memory accounting, complementing the
        per-partition index footprints in
        :class:`~repro.retrieval.sharding.BuildReport`.
        """
        done = self._backend.broadcast("warm_memory_estimate")
        totals: dict[str, int] = {}
        for shard in range(self.num_shards):
            for key, value in done[shard].items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _merged_cache_info(self, method: str) -> CacheStats:
        """Merge one cache-info getter across shards — directly for
        in-process shards, over the backend for process-backed ones.
        Replicated shards contribute every replica's cache (each holds
        its own copy of the shard's partition)."""
        local = self._backend.local_services
        if local is not None:
            return CacheStats.merge(getattr(s, method)() for s in local)
        if self._backend.replicas > 1:
            infos = []
            for shard in range(self.num_shards):
                infos.extend(self._backend.invoke_replicas(shard, method))
            return CacheStats.merge(infos)
        return CacheStats.merge(self._backend.broadcast(method).values())

    def spec_cache_info(self) -> CacheStats:
        """Cluster-merged specialization-cache counters."""
        return self._merged_cache_info("spec_cache_info")

    def result_cache_info(self) -> CacheStats:
        """Cluster-merged result-LRU counters."""
        return self._merged_cache_info("result_cache_info")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDiversificationService(shards={self.num_shards}, "
            f"backend={self._backend.name}, seed={self.router_seed})"
        )

"""Benchmarks for the two design-choice ablations (DESIGN.md §4).

* λ sweep — sensitivity of OptSelect/xQuAD to the relevance/coverage mix.
* proportionality constraint — OptSelect variants (constrained /
  strict-pseudocode / pure top-k), checking the constraint's effect on
  subtopic coverage.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation_constraint import run_constraint_ablation
from repro.experiments.ablation_lambda import run_lambda_ablation


def test_lambda_sweep(benchmark, trec_workload):
    benchmark.group = "ablation-lambda"
    result = benchmark.pedantic(
        run_lambda_ablation,
        kwargs=dict(
            workload=trec_workload,
            lambdas=(0.0, 0.15, 0.5, 1.0),
            algorithms=("OptSelect", "xQuAD"),
        ),
        rounds=1,
        iterations=1,
    )
    for algorithm, per_lambda in result.reports.items():
        values = {
            lam: report.mean("alpha-ndcg", result.cutoff)
            for lam, report in per_lambda.items()
        }
        assert all(0.0 <= v <= 1.0 for v in values.values()), algorithm


def test_constraint_variants(benchmark, trec_workload):
    benchmark.group = "ablation-constraint"
    result = benchmark.pedantic(
        run_constraint_ablation,
        kwargs=dict(workload=trec_workload),
        rounds=1,
        iterations=1,
    )
    recalls = result.avg_subtopic_recall
    # The constrained variant must cover at least as many subtopics as the
    # unconstrained top-k — that is the constraint's entire purpose.
    assert recalls["constrained"] >= recalls["pure-topk"] - 1e-9


@pytest.mark.parametrize("variant", ("constrained", "strict"))
def test_optselect_variant_cost(benchmark, task_10k, variant):
    """The proportional fill must not change OptSelect's cost class."""
    from repro.core.optselect import OptSelect

    algo = OptSelect(strict_paper_pseudocode=(variant == "strict"))
    benchmark.group = "ablation-constraint-cost"
    benchmark(algo.diversify, task_10k, 100)
    assert algo.last_stats.operations <= task_10k.n * len(
        task_10k.specializations
    )

"""Benchmark for Figure 1 — the Appendix C utility-ratio experiment.

Measures the per-query cost of the Figure 1 protocol (external-engine
retrieval + utility matrix + OptSelect re-rank + ratio) and verifies the
figure's shape claim on a small sample: the diversified list's summed
utility exceeds the original external top-k's for most ambiguous queries.

Regenerate the full figure with ``python -m repro.experiments.figure1``.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import run_figure1


@pytest.mark.parametrize("log_name", ("AOL", "MSN"))
def test_figure1_protocol(benchmark, trec_workload, log_name):
    benchmark.group = "figure1"
    result = benchmark.pedantic(
        run_figure1,
        kwargs=dict(
            workload=trec_workload,
            logs=(log_name,),
            external_candidates=100,
            k=12,
            spec_results=12,
            max_queries_per_log=12,
        ),
        rounds=1,
        iterations=1,
    )
    points = result.points[log_name]
    assert points, f"no ambiguous queries evaluated for {log_name}"
    average = result.overall_average(log_name)
    # Shape claim: diversification improves the list utility on average
    # (the paper reports 5–10×; scale-dependent, see EXPERIMENTS.md).
    assert average > 1.0
    improved = sum(1 for p in points if p.ratio >= 1.0)
    assert improved >= len(points) * 0.5

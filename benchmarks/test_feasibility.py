"""Benchmark for the Section 4.1 feasibility estimate.

Times mining the full ambiguous-query side structure plus surrogate
materialisation, and checks the paper's point: the storage needed by the
diversification framework is small (megabytes, not the index's gigabytes).
"""

from __future__ import annotations

from repro.experiments.feasibility import run_feasibility


def test_feasibility_footprint(benchmark, trec_workload):
    benchmark.group = "feasibility"
    result = benchmark.pedantic(
        run_feasibility,
        kwargs=dict(workload=trec_workload, min_frequency=2),
        rounds=1,
        iterations=1,
    )
    assert result.num_ambiguous_queries > 0
    # The side structures must be tiny relative to any realistic index:
    # single-digit megabytes at this scale.
    assert result.measured_mb < 10.0
    assert result.analytic_bound_bytes >= result.measured_surrogate_bytes

"""Benchmark for Table 1 — asymptotic complexity of the three algorithms.

Table 1 of the paper:

    IASelect   O(n·k)
    xQuAD      O(n·k)
    OptSelect  O(n·log2 k)

Each benchmark times one (algorithm, k) cell at fixed n = 1000; the
benchmark *names* group by algorithm so the k-scaling is visible in the
report.  The paired assertions verify the operation-count shape, which is
what the table actually claims (wall-clock constants are interpreter
noise).

Regenerate the paper-style table with ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

import pytest

from repro.core.iaselect import IASelect
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD

K_VALUES = (10, 100, 500)


@pytest.mark.parametrize("k", K_VALUES)
def test_optselect_complexity(benchmark, task_1k, k):
    algo = OptSelect()
    benchmark.group = "table1-optselect"
    benchmark(algo.diversify, task_1k, k)
    # O(n log k): operation count independent of k, bounded by n·|S_q|.
    assert algo.last_stats.operations <= task_1k.n * len(
        task_1k.specializations
    )


@pytest.mark.parametrize("k", K_VALUES)
def test_xquad_complexity(benchmark, task_1k, k):
    algo = XQuAD()
    benchmark.group = "table1-xquad"
    benchmark(algo.diversify, task_1k, k)
    # O(n·k): the exact greedy count Σ_{i<k} |S_q|(n−i).
    n, m = task_1k.n, len(task_1k.specializations)
    assert algo.last_stats.operations == sum(m * (n - i) for i in range(k))


@pytest.mark.parametrize("k", K_VALUES)
def test_iaselect_complexity(benchmark, task_1k, k):
    algo = IASelect()
    benchmark.group = "table1-iaselect"
    benchmark(algo.diversify, task_1k, k)
    n, m = task_1k.n, len(task_1k.specializations)
    assert algo.last_stats.operations == sum(m * (n - i) for i in range(k))


def test_operation_shape_summary(benchmark, task_1k):
    """One combined cell verifying the k-independence of OptSelect versus
    the k-linearity of the greedy pair (the content of Table 1)."""

    def measure():
        results = {}
        for k in (10, 500):
            for algo in (OptSelect(), XQuAD(), IASelect()):
                algo.diversify(task_1k, k)
                results[(algo.name, k)] = algo.last_stats.operations
        return results

    benchmark.group = "table1-shape"
    results = benchmark(measure)
    assert results[("OptSelect", 500)] == results[("OptSelect", 10)]
    assert results[("xQuAD", 500)] > 20 * results[("xQuAD", 10)]
    assert results[("IASelect", 500)] > 20 * results[("IASelect", 10)]

"""Benchmark for the Appendix C recall measure.

Times the full replay (train on 70%, walk test-split refinement events,
check Algorithm 1) per log, and verifies the shape: a substantial but
sub-total fraction of refinement events is covered (the paper reports
61% for AOL and 65% for MSN).
"""

from __future__ import annotations

import pytest

from repro.experiments.recall import measure_recall


@pytest.mark.parametrize("log_name", ("AOL", "MSN"))
def test_recall_measure(benchmark, trec_workload, log_name):
    log = trec_workload.logs[log_name]
    benchmark.group = "recall-appendix-c"
    result = benchmark.pedantic(measure_recall, args=(log,), rounds=1, iterations=1)
    assert result.events > 0
    # Shape: the miner covers many but not all refinement events.
    assert 0.3 <= result.recall <= 1.0

"""Benchmark for the serving layer — batch throughput and hot latency.

The acceptance measurement of the serving refactor: on a realistic
(Zipf-repeating) 100-query workload, ``DiversificationService.
diversify_batch`` must beat the seed architecture's per-query
``diversify_query`` loop on wall-clock throughput.  The win comes from
deduplicated pipelines, one batched specialization prefetch, and the
bounded result LRU; :func:`repro.experiments.throughput.run_throughput`
also verifies the two strategies serve identical rankings before timing
is trusted.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments.throughput import (
    make_framework,
    run_async_throughput,
    run_backend_throughput,
    run_fused_throughput,
    run_http_throughput,
    run_replicated_throughput,
    run_sharded_throughput,
    run_throughput,
    zipf_workload,
)
from repro.serving import DiversificationService


def test_batch_beats_per_query_loop(trec_workload):
    """The ISSUE's headline criterion, 100 queries end to end."""
    result = run_throughput(trec_workload, num_queries=100)
    assert result.batch_seconds < result.loop_seconds
    # The dedup factor alone (~12 distinct of 100) predicts >5x; demand a
    # conservative margin so scheduler noise cannot flake the suite.
    assert result.speedup > 1.5
    assert result.service_stats.ranked == result.distinct


def test_sharded_cluster_preserves_throughput_and_rankings(trec_workload):
    """1 vs 4 shards on the Zipf workload: rankings are asserted
    identical inside the harness, counters must cover the full batch,
    and sharding must cost at most a small constant factor.  (On a
    single-core CI host the two arms do identical total work, so the
    honest expectation is parity, not speedup — the hard ≥ comparison
    is reported by ``--shards`` rather than asserted here, where
    scheduler noise would flake the suite.)"""
    result = run_sharded_throughput(
        trec_workload, num_queries=100, shards=4, repeats=2
    )
    cluster = result.cluster_stats
    assert cluster.served == result.queries
    assert cluster.ranked == result.distinct
    assert sum(s.served for s in result.shard_stats) == result.queries
    assert result.sharded_warm.queries == result.distinct
    # Loose sanity bound only (catches a pathological 2x regression, not
    # scheduler noise): ~1.0x is the honest single-core expectation and
    # was observed as low as 0.96x on an idle host.
    assert result.speedup > 0.5


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend smoke relies on fork inheriting the workload",
)
def test_process_backend_identity_smoke(trec_workload):
    """The CI smoke for the process execution backend: a 2-shard cluster
    fanned out over real OS processes must serve rankings identical to
    the inline reference (asserted inside the harness before timing).
    Speedup over the thread backend is *reported*, not asserted — on a
    single-core CI host parity within noise is the honest expectation;
    the >1.3x multi-core criterion is measured by ``throughput
    --backend process`` where cores exist, and the record notes
    ``hardware_limited`` otherwise."""
    result = run_backend_throughput(
        trec_workload, num_queries=60, shards=2, backend="process", repeats=1
    )
    assert result.identity_checked
    assert result.backend == "process"
    assert result.cluster_stats.served == result.queries
    assert result.cluster_stats.ranked == result.distinct
    assert len(result.cluster_stats.shards) == result.shards
    assert result.backend_warm.queries == result.distinct
    # Loose sanity bound only: catches a pathological IPC regression
    # without flaking on scheduler noise (observed ~0.97x on one core).
    assert result.speedup > 0.4


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="replicated backend smoke relies on fork inheriting the workload",
)
def test_replicated_kill_shard_identity_smoke(trec_workload):
    """The CI smoke for the replication layer: a 2-shard x 2-replica
    process cluster with one replica per shard hard-killed after the
    first serving batch must serve results identical to the fault-free
    inline reference — rankings *and* baseline scores, asserted inside
    the harness — with the respawned replicas rehydrating from the warm
    store rather than re-mining."""
    result = run_replicated_throughput(
        trec_workload, num_queries=60, shards=2, replicas=2, kill_shard=True
    )
    assert result.identity_checked
    assert result.respawns >= result.shards  # one kill per shard
    assert result.warm.fetched == 0  # hydrated from the donor's warm store
    assert result.cluster_stats.served == result.queries
    assert result.cluster_stats.respawns == result.respawns
    for stats in result.replica_stats.values():
        assert len(stats.requests) == result.replicas


def test_async_front_end_open_loop_identity(trec_workload):
    """The micro-batching front-end under open-loop Zipf arrivals: the
    harness itself asserts every async result equals the sequential
    ``diversify_batch`` ranking; here we additionally pin the formation
    accounting to the request volume."""
    result = run_async_throughput(trec_workload, num_queries=60)
    assert result.identity_checked
    front = result.front_stats
    assert front.served == result.queries
    assert (
        sum(size * count for size, count in front.batch_sizes.items())
        == result.queries
    )
    assert result.backend_stats.served == result.queries
    assert result.backend_stats.ranked == result.distinct


def test_http_front_end_socket_identity(trec_workload):
    """The REST layer end to end through real sockets: the harness
    asserts every 200 body field-identical to the direct
    ``diversify_batch`` payload and that drain completed every admitted
    request; here we pin the error-free path and the operational
    surface's accounting."""
    result = run_http_throughput(
        trec_workload, num_queries=60, offered_qps=1000.0
    )
    assert result.identity_checked
    assert result.ok == result.queries
    assert result.errors == {}
    assert result.front_stats.served == result.queries
    assert result.backend_stats.ranked == result.distinct
    assert result.drain_report["served_total"] == result.queries
    assert result.health["status"] == "ok"
    assert len(result.client_latencies_ms) == result.queries


def test_fused_kernel_identity_and_accounting(trec_workload):
    """The cross-query fused path on a real workload: the harness first
    asserts every fused result equals the looped service's field for
    field, then times both arms.  Speedup is *reported*, not asserted —
    at this scale the pipeline is dominated by task building, which
    fusion does not touch; the kernel-level win is measured by the
    paper-scale ``throughput --mode batch --fused`` record."""
    result = run_fused_throughput(
        trec_workload, num_queries=60, repeats=1, profile=True
    )
    assert result.identity_checked
    stats = result.fused_stats
    assert stats.ranked == result.distinct
    assert stats.fused_queries + stats.fallback_queries == stats.diversified
    assert 0.0 < result.pad_fill_ratio <= 1.0
    if stats.fusion_groups:
        # --profile threaded a StageTimer through the kernels
        assert "select" in result.stage_profile


def test_hot_query_latency(benchmark, trec_workload):
    """Steady-state serving: a popular query after the caches warmed."""
    service = DiversificationService(make_framework(trec_workload))
    queries = zipf_workload(trec_workload, 50)
    service.warm(queries)
    service.diversify_batch(queries)
    benchmark.group = "serving-latency"
    benchmark(service.diversify, queries[0])


def test_cold_pipeline_latency(benchmark, trec_workload):
    """One full pipeline (detect + retrieve + vectorise + rank), no
    result cache — the cost the batch path amortises."""
    framework = make_framework(trec_workload)
    query = trec_workload.testbed.topics[0].query
    framework.diversify_query(query)  # warm the spec artifacts only

    def serve_uncached():
        service = DiversificationService(framework)
        return service.diversify(query)

    benchmark.group = "serving-latency"
    benchmark(serve_uncached)

"""Benchmark for Table 3 — the effectiveness pipeline.

Table 3 is a quality table, not a timing table; the benchmark measures the
cost of producing one Table 3 *column* (diversify every detected topic and
evaluate α-NDCG + IA-P), and the paired assertions re-verify the headline
shape claims on the measured run:

* diversified runs beat the DPH baseline on α-NDCG at the best threshold,
* an extreme threshold collapses every algorithm onto the baseline.

Regenerate the paper-style table with
``python -m repro.experiments.table3 [--paper-scale]``.
"""

from __future__ import annotations

import pytest

from repro.core.framework import get_diversifier
from repro.evaluation.runner import evaluate_run


def _run_column(workload, tasks, baseline_run, algorithm_name, threshold):
    diversifier = get_diversifier(algorithm_name)
    run = {}
    for topic in workload.testbed.topics:
        task = tasks.get(topic.topic_id)
        if task is None:
            run[topic.topic_id] = baseline_run[topic.topic_id]
        else:
            run[topic.topic_id] = diversifier.diversify(
                task.with_threshold(threshold), workload.scale.k
            )
    return evaluate_run(run, workload.testbed, workload.scale.cutoffs)


@pytest.mark.parametrize("algorithm", ("optselect", "xquad", "iaselect"))
def test_diversify_and_evaluate_column(benchmark, topic_tasks, algorithm):
    workload, tasks, baseline_run = topic_tasks
    benchmark.group = "table3-column"
    report = benchmark(
        _run_column, workload, tasks, baseline_run, algorithm, 0.2
    )
    cutoff = workload.scale.cutoffs[0]
    assert 0.0 <= report.mean("alpha-ndcg", cutoff) <= 1.0


def test_best_runs_beat_baseline(benchmark, topic_tasks):
    workload, tasks, baseline_run = topic_tasks

    def measure():
        baseline = evaluate_run(
            baseline_run, workload.testbed, workload.scale.cutoffs
        )
        best = {}
        for algorithm in ("optselect", "xquad", "iaselect"):
            reports = [
                _run_column(workload, tasks, baseline_run, algorithm, c)
                for c in (0.0, 0.2)
            ]
            best[algorithm] = max(
                r.mean("alpha-ndcg", 10) for r in reports
            )
        return baseline, best

    benchmark.group = "table3-claims"
    baseline, best = benchmark.pedantic(measure, rounds=1, iterations=1)
    for algorithm, value in best.items():
        assert value >= baseline.mean("alpha-ndcg", 10) - 1e-9, algorithm


def test_extreme_threshold_collapses_to_baseline(benchmark, topic_tasks):
    workload, tasks, baseline_run = topic_tasks

    def measure():
        baseline = evaluate_run(
            baseline_run, workload.testbed, workload.scale.cutoffs
        )
        collapsed = _run_column(workload, tasks, baseline_run, "optselect", 0.99)
        return baseline, collapsed

    benchmark.group = "table3-claims"
    baseline, collapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    for cutoff in workload.scale.cutoffs:
        assert collapsed.mean("alpha-ndcg", cutoff) == pytest.approx(
            baseline.mean("alpha-ndcg", cutoff), abs=0.05
        )

"""Micro-benchmarks of the substrates the experiments stand on.

Not a paper table — these track the cost of the building blocks (indexing,
DPH search, snippet extraction, utility-matrix construction, QFG build,
recommender training) so substrate regressions are visible independently
of the headline experiments.
"""

from __future__ import annotations

import pytest

from repro.core.utility import UtilityMatrix
from repro.querylog.flowgraph import QueryFlowGraph
from repro.querylog.recommend import SearchShortcutsRecommender
from repro.querylog.sessions import split_by_time_gap
from repro.retrieval.analysis import Analyzer, PorterStemmer
from repro.retrieval.index import InvertedIndex
from repro.retrieval.snippets import SnippetExtractor


@pytest.fixture(scope="module")
def corpus(trec_workload):
    return trec_workload.corpus


def test_porter_stemmer_throughput(benchmark):
    stemmer = PorterStemmer()
    vocabulary = [
        "diversification", "relational", "running", "leopards", "caresses",
        "formalize", "adjustment", "electricity", "hopefulness", "national",
    ] * 50

    def stem_all():
        return [stemmer(w) for w in vocabulary]

    benchmark.group = "substrate-analysis"
    assert len(benchmark(stem_all)) == len(vocabulary)


def test_analyzer_throughput(benchmark, corpus):
    analyzer = Analyzer()
    texts = [doc.text for doc in list(corpus.collection)[:100]]
    benchmark.group = "substrate-analysis"
    benchmark(lambda: [analyzer.analyze(t) for t in texts])


def test_index_build(benchmark, corpus):
    docs = list(corpus.collection)[:300]

    def build():
        index = InvertedIndex()
        for doc in docs:
            index.index_document(doc)
        return index

    benchmark.group = "substrate-index"
    index = benchmark(build)
    assert index.num_documents == len(docs)


def test_dph_search(benchmark, trec_workload):
    engine = trec_workload.engine
    query = trec_workload.corpus.topics[0].query
    benchmark.group = "substrate-search"
    results = benchmark(engine.search, query, 100)
    assert len(results) > 0


def test_snippet_extraction(benchmark, trec_workload):
    engine = trec_workload.engine
    topic = trec_workload.corpus.topics[0]
    results = engine.search(topic.query, 50)
    benchmark.group = "substrate-search"
    benchmark(lambda: engine.snippet_vectors(topic.query, results))


def test_utility_matrix_build(benchmark, trec_workload):
    engine = trec_workload.engine
    topic = trec_workload.corpus.topics[0]
    candidates = engine.search(topic.query, 100)
    vectors = dict(engine.snippet_vectors(topic.query, candidates))
    spec_results = {}
    for aspect in topic.aspects[:4]:
        results = engine.search(aspect.query, 20)
        spec_results[aspect.query] = results
        vectors.update(engine.snippet_vectors(aspect.query, results))

    benchmark.group = "substrate-utility"
    matrix = benchmark(
        UtilityMatrix.build, candidates, spec_results, vectors, 0.0
    )
    assert matrix.specializations


def test_sessionization(benchmark, trec_workload):
    log = trec_workload.logs["AOL"]
    benchmark.group = "substrate-querylog"
    sessions = benchmark(split_by_time_gap, log)
    assert sessions


def test_query_flow_graph_build(benchmark, trec_workload):
    sessions = split_by_time_gap(trec_workload.logs["AOL"])
    benchmark.group = "substrate-querylog"
    graph = benchmark(QueryFlowGraph.build, sessions)
    assert graph.num_nodes > 0


def test_recommender_training(benchmark, trec_workload):
    sessions = split_by_time_gap(trec_workload.logs["AOL"])
    benchmark.group = "substrate-querylog"
    recommender = benchmark(
        lambda: SearchShortcutsRecommender.train(sessions)
    )
    assert recommender.is_trained


def test_specialization_mining(benchmark, trec_workload):
    miner = trec_workload.miner("AOL")
    query = trec_workload.corpus.topics[0].query
    benchmark.group = "substrate-querylog"
    benchmark(miner.mine, query)

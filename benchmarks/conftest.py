"""Shared fixtures for the benchmark suite.

Workloads are built once per session; benchmark functions only measure the
operation under study (the diversification step, a metric computation,
an index build, ...), mirroring how the paper times its Table 2 cells.
"""

from __future__ import annotations

import pytest

from repro.experiments.table3 import build_topic_tasks
from repro.experiments.workloads import (
    SMALL_SCALE,
    build_trec_workload,
    synthetic_task,
)


@pytest.fixture(scope="session")
def task_1k():
    return synthetic_task(1000, num_specs=8, seed=7)


@pytest.fixture(scope="session")
def task_10k():
    return synthetic_task(10_000, num_specs=8, seed=7)


@pytest.fixture(scope="session")
def trec_workload():
    return build_trec_workload(SMALL_SCALE, logs=("AOL", "MSN"))


@pytest.fixture(scope="session")
def topic_tasks(trec_workload):
    """Per-topic diversification tasks (threshold 0) plus baseline run."""
    tasks, baseline = build_topic_tasks(trec_workload)
    return trec_workload, tasks, baseline

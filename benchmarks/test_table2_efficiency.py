"""Benchmark for Table 2 — execution time of the diversification step.

The paper's Table 2 grid is |R_q| ∈ {1k, 10k, 100k} × k ∈ {10..1000}; in
pure Python the greedy O(n·k) cells at the top of that grid take minutes,
so the benchmark suite measures a representative sub-grid and the paired
assertions check the two headline shapes:

* all three algorithms scale ~linearly in |R_q| at fixed k,
* OptSelect's time is ~flat in k while xQuAD/IASelect grow ~linearly,
  which is what produces the two-orders-of-magnitude gap at k = 1000.

Regenerate the full paper grid with
``python -m repro.experiments.table2 --full``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.iaselect import IASelect
from repro.core.optselect import OptSelect
from repro.core.xquad import XQuAD
from repro.experiments.table2 import run_table2


@pytest.mark.parametrize("k", (10, 100, 1000))
def test_optselect_time_vs_k(benchmark, task_10k, k):
    benchmark.group = "table2-optselect-n10k"
    benchmark(OptSelect().diversify, task_10k, k)


@pytest.mark.parametrize("k", (10, 100, 1000))
def test_fast_optselect_time_vs_k(benchmark, task_10k, k):
    from repro.core.fast import FastOptSelect

    benchmark.group = "table2-optselect-n10k"
    benchmark(FastOptSelect().diversify, task_10k, k)


@pytest.mark.parametrize("k", (10, 50, 100))
def test_fast_xquad_time_vs_k(benchmark, task_10k, k):
    """The kernel variant runs the n=10k cells the pure-Python xQuAD
    cannot afford in this suite."""
    from repro.core.fast import FastXQuAD

    benchmark.group = "table2-xquad-fast-n10k"
    benchmark(FastXQuAD().diversify, task_10k, k)


@pytest.mark.parametrize("k", (10, 50, 100))
def test_xquad_time_vs_k(benchmark, task_1k, k):
    benchmark.group = "table2-xquad-n1k"
    benchmark(XQuAD().diversify, task_1k, k)


@pytest.mark.parametrize("k", (10, 50, 100))
def test_iaselect_time_vs_k(benchmark, task_1k, k):
    benchmark.group = "table2-iaselect-n1k"
    benchmark(IASelect().diversify, task_1k, k)


@pytest.mark.parametrize(
    ("algo_factory", "name"),
    [(OptSelect, "optselect"), (XQuAD, "xquad"), (IASelect, "iaselect")],
    ids=["optselect", "xquad", "iaselect"],
)
def test_time_vs_n(benchmark, task_1k, task_10k, algo_factory, name):
    """n-scaling cell: diversify 1k then 10k candidates at k = 10."""

    def both():
        algo = algo_factory()
        algo.diversify(task_1k, 10)
        algo.diversify(task_10k, 10)

    benchmark.group = "table2-n-scaling"
    benchmark(both)


def test_optselect_speedup_shape(benchmark):
    """The Table 2 conclusion: at the largest common cell OptSelect is at
    least an order of magnitude faster than the greedy competitors (the
    gap widens to ~2 orders at the paper's k = 1000)."""

    def measure():
        cells = run_table2(grid=((5000,), (200,)), repeats=1)
        return {c.algorithm: c.milliseconds for c in cells}

    benchmark.group = "table2-speedup"
    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert times["xQuAD"] > 10 * times["OptSelect"]
    assert times["IASelect"] > 10 * times["OptSelect"]


def test_linearity_in_n(task_1k, task_10k):
    """Non-timed shape check: 10× candidates → ~10× time (±4×), per
    algorithm, at k = 10 (run once; wall-clock based but coarse)."""
    for algo in (OptSelect(), XQuAD(), IASelect()):
        start = time.perf_counter()
        algo.diversify(task_1k, 10)
        t_small = time.perf_counter() - start
        start = time.perf_counter()
        algo.diversify(task_10k, 10)
        t_big = time.perf_counter() - start
        assert t_big < 60 * max(t_small, 1e-4), algo.name

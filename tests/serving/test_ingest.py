"""Live ingest through the serving layer: epoch-consistent serving.

The serving-side half of the live-ingest identity gate: after any
interleaved sequence of ingest batches and queries, a service (single,
sharded under any backend, replicated through a respawn, or fronted by
HTTP) must serve results field-identical — rankings *and* baseline
scores — to a cold service built from scratch over the final
collection.  The concurrency half is snapshot isolation: a query in
flight when an epoch publishes returns results consistent with exactly
one epoch, and its (now stale) result never re-enters the caches.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.framework import DiversificationFramework
from repro.retrieval.analysis import Analyzer
from repro.retrieval.documents import Document, DocumentCollection
from repro.retrieval.sharding import PartitionedSearchEngine
from repro.retrieval.store import StoreBackedSearchEngine, write_store
from repro.serving import (
    BACKEND_NAMES,
    AsyncDiversificationService,
    DiversificationHTTPServer,
    DiversificationService,
    ShardedDiversificationService,
)

from tests.conftest import STANDARD_CONFIG

from .aio import ManualClock, RecordingBackend, run
from .faults import FaultInjectingBackend
from .test_http import error_code, get, post

PARTITIONS = 3
NUM_SHARDS = 3
HOLDOUT = 8

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend tests rely on fork inheriting the fixtures",
)


# -- corpus split and identity helpers -------------------------------------------


@pytest.fixture(scope="module")
def corpus_docs(small_corpus):
    collection = small_corpus.collection
    return [collection[doc_id] for doc_id in collection.doc_ids]


@pytest.fixture(scope="module")
def initial_docs(corpus_docs):
    """The collection every service starts from: all but the holdout."""
    return corpus_docs[:-HOLDOUT]


@pytest.fixture(scope="module")
def holdout_docs(corpus_docs):
    """Real corpus documents kept back to be ingested live."""
    return corpus_docs[-HOLDOUT:]


@pytest.fixture(scope="module")
def batches(initial_docs, holdout_docs):
    """Two ingest batches: adds from the holdout plus removals of both
    an original document and a document added by the previous batch."""
    return [
        (holdout_docs[:4], [initial_docs[5].doc_id]),
        (
            holdout_docs[4:],
            [initial_docs[17].doc_id, holdout_docs[0].doc_id],
        ),
    ]


def apply_to_docs(docs, batches):
    """The from-scratch view of the final collection: survivors in their
    original order, added documents appended in batch order."""
    docs = list(docs)
    for adds, removes in batches:
        removed = set(removes)
        docs = [d for d in docs if d.doc_id not in removed] + list(adds)
    return docs


def make_engine(docs):
    return PartitionedSearchEngine(
        DocumentCollection(docs), num_partitions=PARTITIONS
    )


def make_service(miner, docs):
    return DiversificationService(
        DiversificationFramework(
            make_engine(docs), miner, config=STANDARD_CONFIG
        )
    )


@pytest.fixture(scope="module")
def workload(small_corpus):
    queries = [topic.query for topic in small_corpus.topics]
    return queries + list(reversed(queries))


@pytest.fixture(scope="module")
def reference(small_miner, initial_docs, batches, workload):
    """The cold from-scratch run over the final collection — what every
    live-ingested service must serve byte-identically."""
    service = make_service(small_miner, apply_to_docs(initial_docs, batches))
    return service.diversify_batch(workload)


def assert_results_equal(got, want):
    __tracebackhide__ = True
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.query == w.query
        assert g.ranking == w.ranking
        assert g.diversified == w.diversified
        assert g.algorithm == w.algorithm
        assert g.baseline.doc_ids == w.baseline.doc_ids
        assert g.baseline.scores == w.baseline.scores


# -- single service --------------------------------------------------------------


class TestServiceIngest:
    def test_ingest_identical_to_cold_rebuild(
        self, small_miner, initial_docs, batches, workload, reference
    ):
        service = make_service(small_miner, initial_docs)
        service.warm(set(workload))
        service.diversify_batch(workload)  # serve (and cache) epoch 0
        for index, (adds, removes) in enumerate(batches):
            epoch = service.ingest(
                add_documents=adds, remove_doc_ids=removes
            )
            assert epoch == index + 1
        assert service.current_epoch() == len(batches)
        assert_results_equal(service.diversify_batch(workload), reference)
        stats = service.get_stats()
        assert stats.epochs_published == len(batches)
        assert stats.documents_ingested == sum(len(a) for a, _ in batches)
        assert stats.documents_removed == sum(len(r) for _, r in batches)

    def test_plain_engine_rejects_ingest(self, framework_factory):
        service = DiversificationService(framework_factory())
        with pytest.raises(ValueError, match="does not support live ingest"):
            service.ingest(add_documents=[Document("x", "apple")])
        assert service.get_stats().epochs_published == 0

    def test_balanced_alien_swap_keeps_warm_state(
        self, small_miner, initial_docs, workload
    ):
        """A stats-preserving swap whose vocabulary is disjoint from the
        query space invalidates nothing: zero warm drops, and cached
        end-to-end results keep serving as hits."""
        service = make_service(small_miner, initial_docs)
        service.warm(set(workload))
        alien = Document("alien0", "zzqa wwxo vvrt")
        service.ingest(add_documents=[alien])  # N changed: wholesale drop
        assert service.stats.warm_invalidations > 0
        service.diversify_batch(workload)  # refill every cache at epoch 1
        invalidations = service.stats.warm_invalidations
        hits_before = service.result_cache_info().hits
        misses_before = service.result_cache_info().misses

        length = len(Analyzer().analyze(alien.full_text))
        swap = Document("alien1", " ".join(["qqzb"] * length))
        epoch = service.ingest(
            add_documents=[swap], remove_doc_ids=[alien.doc_id]
        )
        assert epoch == 2
        # The surgical path fired: no warm artifact was dropped ...
        assert service.stats.warm_invalidations == invalidations
        served = service.diversify_batch(workload)
        # ... and every result survived the sweep to serve from cache:
        # one hit per distinct query, not a single new miss.
        assert (
            service.result_cache_info().hits
            == hits_before + len(set(workload))
        )
        assert service.result_cache_info().misses == misses_before
        fresh = make_service(
            small_miner,
            apply_to_docs(initial_docs, [([alien], []), ([swap], ["alien0"])]),
        )
        assert_results_equal(served, fresh.diversify_batch(workload))


# -- sharded clusters ------------------------------------------------------------


class TestShardedIngest:
    def test_shared_engine_advances_once(
        self, small_miner, initial_docs, holdout_docs
    ):
        """In-process shards share one engine object: an ingest batch
        publishes ONE epoch, while every shard still sweeps its caches
        and counts the batch."""
        engine = make_engine(initial_docs)
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: DiversificationFramework(
                engine, small_miner, config=STANDARD_CONFIG
            ),
            num_shards=NUM_SHARDS,
            backend="inline",
        )
        try:
            epoch = cluster.ingest(add_documents=holdout_docs[:2])
            assert epoch == 1
            assert cluster.current_epoch() == 1
            stats = cluster.cluster_stats()
            assert stats.epochs_published == 1  # max-merged, not summed
            assert stats.documents_ingested == 2
            for shard_stats in cluster.shard_stats():
                assert shard_stats.epochs_published == 1
        finally:
            cluster.close()

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_identity_under_every_backend(
        self, small_miner, initial_docs, batches, workload, reference, backend
    ):
        if backend == "process" and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            pytest.skip("no fork on this platform")
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: DiversificationFramework(
                make_engine(initial_docs), small_miner, config=STANDARD_CONFIG
            ),
            num_shards=NUM_SHARDS,
            backend=backend,
        )
        try:
            cluster.diversify_batch(workload)  # pre-ingest traffic
            for adds, removes in batches:
                cluster.ingest(add_documents=adds, remove_doc_ids=removes)
            assert cluster.current_epoch() == len(batches)
            assert_results_equal(cluster.diversify_batch(workload), reference)
        finally:
            cluster.close()


# -- replicated serving: respawn rehydrates to the latest epoch ------------------


class TestReplicatedIngest:
    def test_respawn_rehydrates_to_latest_epoch(
        self, tmp_path, small_miner, initial_docs, batches, workload, reference
    ):
        """The coordinator appends each batch to the store once; every
        replica refreshes.  A replica killed after the ingests respawns
        from the store already at the latest epoch — no failover can
        time-travel the collection."""
        store_path = tmp_path / "ingest.sqlite3"
        write_store(store_path, make_engine(initial_docs))

        def factory(shard):
            return DiversificationFramework(
                StoreBackedSearchEngine(store_path),
                small_miner,
                config=STANDARD_CONFIG,
            )

        backend = FaultInjectingBackend(replicas=2)
        cluster = ShardedDiversificationService.from_factory(
            factory, num_shards=2, backend=backend
        )
        try:
            for adds, removes in batches:
                cluster.ingest(add_documents=adds, remove_doc_ids=removes)
            assert cluster.current_epoch() == len(batches)
            spawned_before = len(backend.spawned)
            backend.kill_replica(0)
            got = cluster.diversify_batch(workload)
            assert_results_equal(got, reference)
            # The kill really forced a respawn (a fresh store attach).
            assert len(backend.spawned) > spawned_before
            assert cluster.current_epoch() == len(batches)
        finally:
            cluster.close()


# -- snapshot isolation under a concurrent publish -------------------------------


class TestPublishRace:
    def test_in_flight_query_serves_exactly_one_epoch(
        self, small_miner, initial_docs, topic_queries
    ):
        """A query mid-flight when an epoch publishes returns results
        consistent with the epoch it pinned — and its stale result is
        refused by the cache, so the next serve computes the new epoch."""
        target = topic_queries[0]
        alien = Document("racer", "zzqa zzqa zzqa")
        ref_epoch0 = make_service(small_miner, initial_docs).diversify(target)
        ref_epoch1 = make_service(
            small_miner, list(initial_docs) + [alien]
        ).diversify(target)

        service = make_service(small_miner, initial_docs)
        engine = service.framework.engine
        original = engine.search
        entered, release = threading.Event(), threading.Event()
        state = {"fired": False}

        def blocking_search(query, *args, **kwargs):
            # Block the first search of the target *before* it computes:
            # the publish lands while we wait, yet the pinned snapshot
            # must still serve the old epoch in full.
            if query == target and not state["fired"]:
                state["fired"] = True
                entered.set()
                assert release.wait(10)
            return original(query, *args, **kwargs)

        engine.search = blocking_search
        result_box = {}
        thread = threading.Thread(
            target=lambda: result_box.update(got=service.diversify(target))
        )
        thread.start()
        assert entered.wait(10)
        assert service.ingest(add_documents=[alien]) == 1
        release.set()
        thread.join(10)
        assert not thread.is_alive()

        # The in-flight query saw epoch 0, entirely.
        assert_results_equal([result_box["got"]], [ref_epoch0])
        # Its stale result was refused by the cache: re-serving computes
        # epoch 1 (N changed, so even an identical ranking has new scores).
        assert_results_equal([service.diversify(target)], [ref_epoch1])


# -- async front-end: each admitted batch sees one epoch -------------------------


class TestAsyncEpochConsistency:
    def test_each_window_serves_one_epoch(
        self, small_miner, initial_docs, holdout_docs, topic_queries
    ):
        queries = topic_queries[:3]
        service = make_service(small_miner, initial_docs)
        backend = RecordingBackend(service)
        ref_epoch0 = make_service(
            small_miner, initial_docs
        ).diversify_batch(queries)
        ref_epoch1 = make_service(
            small_miner, list(initial_docs) + list(holdout_docs[:2])
        ).diversify_batch(queries)

        async def scenario():
            clock = ManualClock()
            front = AsyncDiversificationService(
                backend,
                inline=True,
                clock=clock,
                max_batch_size=10,
                max_wait_s=0.005,
            )
            async with front:
                first = [
                    asyncio.create_task(front.submit(q)) for q in queries
                ]
                await clock.advance(0.005)
                assert all(task.done() for task in first)
                # The publish lands between admission windows.
                assert service.ingest(add_documents=holdout_docs[:2]) == 1
                second = [
                    asyncio.create_task(front.submit(q)) for q in queries
                ]
                await clock.advance(0.005)
                assert all(task.done() for task in second)
                return (
                    [task.result() for task in first],
                    [task.result() for task in second],
                )

        got_first, got_second = run(scenario())
        assert backend.batches == [queries, queries]
        assert_results_equal(got_first, ref_epoch0)
        assert_results_equal(got_second, ref_epoch1)


# -- HTTP ingest surface ---------------------------------------------------------


def delete(url: str) -> tuple[int, dict]:
    request = urllib.request.Request(url, method="DELETE")
    try:
        with urllib.request.urlopen(request, timeout=30) as rsp:
            return rsp.status, json.load(rsp)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


@pytest.fixture()
def ingest_server(small_miner, initial_docs):
    service = make_service(small_miner, initial_docs)
    with DiversificationHTTPServer(service) as srv:
        yield srv


class TestHTTPIngest:
    def test_ingest_lifecycle(self, ingest_server, holdout_docs):
        url = ingest_server.base_url
        doc = holdout_docs[0]
        status, body = post(
            f"{url}/documents",
            {"doc_id": doc.doc_id, "text": doc.text, "title": doc.title},
        )
        assert (status, body["epoch"]) == (200, 1)
        assert (body["ingested"], body["removed"]) == (1, 0)

        status, body = post(
            f"{url}/documents",
            {
                "documents": [
                    {"doc_id": d.doc_id, "text": d.text}
                    for d in holdout_docs[1:3]
                ],
                "remove": [doc.doc_id],
            },
        )
        assert (status, body["epoch"]) == (200, 2)
        assert (body["ingested"], body["removed"]) == (2, 1)

        status, body = delete(f"{url}/documents/{holdout_docs[1].doc_id}")
        assert (status, body["epoch"]) == (200, 3)

        status, health = get(f"{url}/health")
        assert (status, health["epoch"]) == (200, 3)
        status, stats = get(f"{url}/stats")
        assert status == 200
        ingest = stats["backend"]["ingest"]
        assert ingest["documents_ingested"] == 3
        assert ingest["documents_removed"] == 2
        assert ingest["epochs_published"] == 3

    def test_error_paths(self, ingest_server, holdout_docs):
        url = ingest_server.base_url
        status, body = post(f"{url}/documents", {"documents": [], "remove": []})
        assert (status, error_code(body)) == (422, "invalid_body")
        status, body = delete(f"{url}/documents/ghost")
        assert (status, error_code(body)) == (404, "unknown_document")
        doc = holdout_docs[0]
        post(f"{url}/documents", {"doc_id": doc.doc_id, "text": doc.text})
        status, body = post(
            f"{url}/documents", {"doc_id": doc.doc_id, "text": doc.text}
        )
        assert (status, error_code(body)) == (409, "conflict")
        status, body = post(f"{url}/documents", {"doc_id": "x"})
        assert (status, error_code(body)) == (422, "invalid_document")
        status, body = get(f"{url}/documents")
        assert status == 405

    def test_plain_engine_reports_unsupported(self, framework_factory):
        service = DiversificationService(framework_factory())
        with DiversificationHTTPServer(service) as srv:
            status, body = post(
                f"{srv.base_url}/documents", {"doc_id": "x", "text": "apple"}
            )
            assert (status, error_code(body)) == (409, "ingest_unsupported")
            status, health = get(f"{srv.base_url}/health")
            assert status == 200
            assert health["epoch"] == 0

"""Deterministic tests for the async micro-batching front-end.

Every window/backpressure/cancellation behaviour is driven by the manual
clock and event harness in :mod:`tests.serving.aio` — no real timers, so
each scenario runs exactly the interleaving it constructs.  One
integration test at the end exercises the real clock + executor path.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.serving import (
    AsyncDiversificationService,
    DiversificationService,
    ServiceClosed,
    ShardedDiversificationService,
)

from .aio import FailingBackend, ManualClock, RecordingBackend, run, settle

#: Admission window used by the manual-clock scenarios (value is
#: arbitrary: the clock only moves when a test advances it).
WINDOW = 0.005


@pytest.fixture()
def service(fresh_framework):
    return DiversificationService(fresh_framework)


@pytest.fixture()
def backend(service):
    return RecordingBackend(service)


def make_front(backend, clock, **kwargs):
    """An inline (event-loop-dispatched) front-end under a manual clock."""
    kwargs.setdefault("max_batch_size", 10)
    kwargs.setdefault("max_wait_s", WINDOW)
    return AsyncDiversificationService(backend, inline=True, clock=clock, **kwargs)


class TestWindow:
    def test_full_batch_dispatches_without_the_clock(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock, max_batch_size=3) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:3]
                ]
                await settle()  # size limit hit: no advance() needed
                assert all(task.done() for task in tasks)
                return [task.result() for task in tasks]

        results = run(scenario())
        assert backend.batches == [topic_queries[:3]]
        assert [r.query for r in results] == topic_queries[:3]

    def test_window_closes_on_deadline(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:3]
                ]
                await settle()
                # Partial batch: the window is open, nothing resolves.
                assert not any(task.done() for task in tasks)
                assert backend.batches == []
                await clock.advance(WINDOW)
                assert all(task.done() for task in tasks)

        run(scenario())
        assert backend.batches == [topic_queries[:3]]

    def test_late_arrivals_join_the_open_window(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                first = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:2]
                ]
                await clock.advance(WINDOW / 2)
                assert not any(task.done() for task in first)
                late = asyncio.create_task(front.submit(topic_queries[2]))
                await clock.advance(WINDOW / 2)  # first request's deadline
                assert all(task.done() for task in first + [late])

        run(scenario())
        assert backend.batches == [topic_queries[:3]]

    def test_batches_split_at_max_size(self, backend, topic_queries):
        queries = topic_queries[:5]

        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock, max_batch_size=2) as front:
                tasks = [asyncio.create_task(front.submit(q)) for q in queries]
                await settle()
                # Two full batches dispatched eagerly; the odd one out
                # waits for its window.
                assert [task.done() for task in tasks] == [True] * 4 + [False]
                await clock.advance(WINDOW)
                assert tasks[4].done()

        run(scenario())
        assert [len(b) for b in backend.batches] == [2, 2, 1]
        assert backend.served_queries == queries

    def test_zero_wait_is_greedy(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock, max_wait_s=0) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:4]
                ]
                await settle()  # no timer exists to wait for
                assert all(task.done() for task in tasks)

        run(scenario())
        assert backend.batches == [topic_queries[:4]]


class TestIdentity:
    """The acceptance criterion: any interleaving the harness produces
    must serve exactly what one direct ``diversify_batch`` call serves."""

    @pytest.fixture(params=["single", "sharded"])
    def any_backend(self, request, framework_factory):
        if request.param == "single":
            return DiversificationService(framework_factory())
        return ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(), num_shards=3
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_interleavings_match_direct_batch(
        self, seed, any_backend, framework_factory, topic_queries
    ):
        rng = random.Random(seed)
        workload = rng.choices(topic_queries, k=24)  # repeats included
        # Slice the arrival stream into random windows.
        chunks, rest = [], list(workload)
        while rest:
            size = rng.randint(1, 6)
            chunks.append(rest[:size])
            rest = rest[size:]

        async def scenario():
            clock = ManualClock()
            async with make_front(any_backend, clock, max_batch_size=4) as front:
                tasks = []
                for chunk in chunks:
                    tasks.extend(
                        asyncio.create_task(front.submit(q)) for q in chunk
                    )
                    await settle()
                    await clock.advance(WINDOW)
                return await asyncio.gather(*tasks)

        results = run(scenario())
        reference = DiversificationService(framework_factory()).diversify_batch(
            workload
        )
        assert [r.query for r in results] == workload
        for got, want in zip(results, reference):
            assert got.query == want.query
            assert got.ranking == want.ranking

    def test_duplicates_in_one_window_share_a_result(
        self, backend, topic_queries
    ):
        query = topic_queries[0]

        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                tasks = [
                    asyncio.create_task(front.submit(query)) for _ in range(3)
                ]
                await clock.advance(WINDOW)
                return [task.result() for task in tasks]

        first, second, third = run(scenario())
        assert first is second is third
        assert backend.batches == [[query, query, query]]

    def test_submit_many_aligns_with_input(self, backend, topic_queries):
        workload = topic_queries + list(reversed(topic_queries))

        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock, max_wait_s=0) as front:
                return await front.submit_many(workload)

        results = run(scenario())
        assert [r.query for r in results] == workload


class GatedBackend:
    """Delegate whose dispatch blocks on a controllable event — lets a
    test hold the batcher mid-dispatch while the queue backs up."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.gate = threading.Event()

    def diversify_batch(self, queries):
        assert self.gate.wait(timeout=15.0), "test never opened the gate"
        return self.inner.diversify_batch(queries)

    def warm(self, queries):
        return self.inner.warm(queries)


class TestBackpressure:
    def test_full_queue_blocks_submit_until_dispatch_drains(self, service):
        gated = GatedBackend(service)
        queries = ["q0", "q1", "q2", "q3"]

        async def scenario():
            front = AsyncDiversificationService(
                gated, max_batch_size=1, max_wait_s=0, max_pending=2
            )
            try:
                front.start()
                tasks = [asyncio.create_task(front.submit(q)) for q in queries]
                await settle()
                # q0 is stuck in dispatch behind the gate, q1/q2 fill the
                # queue, q3's submit is blocked on backpressure.
                assert front._queue.full()
                assert not any(task.done() for task in tasks)
                assert front.stats.queue_depth_peak == 2
                gated.gate.set()
                await asyncio.gather(*tasks)
                assert all(task.done() for task in tasks)
            finally:
                gated.gate.set()
                await front.stop()

        run(scenario())
        assert service.stats.served == len(queries)

    def test_stop_fails_submitters_blocked_on_backpressure(self, service):
        gated = GatedBackend(service)

        async def scenario():
            front = AsyncDiversificationService(
                gated, max_batch_size=1, max_wait_s=0, max_pending=1
            )
            try:
                front.start()
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in ["q0", "q1", "q2"]
                ]
                await settle()  # q0 gated, q1 queued, q2 blocked on put
                stop = asyncio.create_task(front.stop(drain=False))
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                await stop
                assert all(isinstance(o, ServiceClosed) for o in outcomes)
                assert not front.running
            finally:
                gated.gate.set()

        run(scenario())


class TestCancellation:
    def test_cancelled_request_is_dropped_from_the_batch(
        self, backend, topic_queries
    ):
        keep, drop = topic_queries[0], topic_queries[1]

        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                kept = asyncio.create_task(front.submit(keep))
                doomed = asyncio.create_task(front.submit(drop))
                await settle()
                doomed.cancel()
                await settle()
                await clock.advance(WINDOW)
                assert kept.done() and doomed.cancelled()
                return kept.result()

        result = run(scenario())
        assert result.query == keep
        assert backend.batches == [[keep]]  # the cancelled query never ran

    def test_fully_cancelled_window_skips_the_backend(
        self, backend, topic_queries
    ):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:2]
                ]
                await settle()
                for task in tasks:
                    task.cancel()
                await settle()
                await clock.advance(WINDOW)
                assert all(task.cancelled() for task in tasks)
                # The service survives: a fresh submit still works.
                follow_up = asyncio.create_task(front.submit(topic_queries[0]))
                await settle()
                await clock.advance(WINDOW)
                return await follow_up

        result = run(scenario())
        assert result.query == topic_queries[0]
        assert backend.batches == [[topic_queries[0]]]

    def test_shared_query_survives_one_cancellation(
        self, backend, topic_queries
    ):
        query = topic_queries[0]

        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                kept = asyncio.create_task(front.submit(query))
                doomed = asyncio.create_task(front.submit(query))
                await settle()
                doomed.cancel()
                await clock.advance(WINDOW)
                return await kept

        result = run(scenario())
        assert result.query == query
        assert backend.batches == [[query]]


class TestErrors:
    def test_backend_failure_propagates_to_every_waiter(self, topic_queries):
        failing = FailingBackend()

        async def scenario():
            clock = ManualClock()
            async with make_front(failing, clock, max_wait_s=0) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:2]
                ]
                await settle()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                assert all(o is failing.exc for o in outcomes)
                # Failed batches count as formed, never as served.
                assert front.stats.batch_sizes == {2: 1}
                assert front.stats.served == 0
                assert front.stats.batches == 0

        run(scenario())
        assert failing.calls == 1

    def test_service_survives_a_failing_batch(self, service, topic_queries):
        query = topic_queries[0]

        class FlakyBackend:
            def __init__(self):
                self.calls = 0

            def diversify_batch(self, queries):
                self.calls += 1
                if self.calls == 1:
                    raise RuntimeError("transient")
                return service.diversify_batch(queries)

        flaky = FlakyBackend()

        async def scenario():
            clock = ManualClock()
            async with make_front(flaky, clock, max_wait_s=0) as front:
                with pytest.raises(RuntimeError, match="transient"):
                    await front.submit(query)
                return await front.submit(query)

        result = run(scenario())
        assert result.query == query
        assert flaky.calls == 2


class TestLifecycle:
    def test_submit_before_start_raises(self, backend):
        async def scenario():
            front = make_front(backend, ManualClock())
            with pytest.raises(ServiceClosed):
                await front.submit("anything")

        run(scenario())

    def test_stop_drains_the_open_window_immediately(
        self, backend, topic_queries
    ):
        async def scenario():
            clock = ManualClock()
            front = make_front(backend, clock)
            front.start()
            tasks = [
                asyncio.create_task(front.submit(q)) for q in topic_queries[:3]
            ]
            await settle()
            assert not any(task.done() for task in tasks)
            # No advance(): stop() must flush the window itself.
            await front.stop(drain=True)
            assert all(task.done() for task in tasks)
            with pytest.raises(ServiceClosed):
                await front.submit(topic_queries[0])

        run(scenario())
        assert backend.batches == [topic_queries[:3]]

    def test_context_manager_starts_and_stops(self, backend):
        async def scenario():
            front = make_front(backend, ManualClock())
            assert not front.running
            async with front:
                assert front.running
            assert not front.running

        run(scenario())

    def test_restart_after_stop(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            front = make_front(backend, clock, max_wait_s=0)
            front.start()
            first = await front.submit(topic_queries[0])
            await front.stop()
            front.start()
            second = await front.submit(topic_queries[1])
            await front.stop()
            return first, second

        first, second = run(scenario())
        assert first.query == topic_queries[0]
        assert second.query == topic_queries[1]

    def test_stop_without_drain_fails_the_open_window(
        self, backend, topic_queries
    ):
        """Requests already dequeued into an open admission window have
        left the queue, so a non-draining stop cannot sweep them there —
        they must still be failed, not abandoned to hang forever."""

        async def scenario():
            clock = ManualClock()
            front = make_front(backend, clock)
            front.start()
            tasks = [
                asyncio.create_task(front.submit(q)) for q in topic_queries[:2]
            ]
            await settle()  # both requests are inside the open window
            assert not any(task.done() for task in tasks)
            await front.stop(drain=False)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(o, ServiceClosed) for o in outcomes)

        run(scenario())
        assert backend.batches == []  # nothing was ever dispatched

    def test_stop_is_idempotent(self, backend):
        async def scenario():
            front = make_front(backend, ManualClock())
            front.start()
            await front.stop()
            await front.stop()

        run(scenario())

    def test_invalid_parameters(self, backend):
        with pytest.raises(ValueError):
            AsyncDiversificationService(backend, max_batch_size=0)
        with pytest.raises(ValueError):
            AsyncDiversificationService(backend, max_wait_s=-1)
        with pytest.raises(ValueError):
            AsyncDiversificationService(backend, max_pending=0)


class TestStopRaces:
    """Interleavings where stop() races submitters or another stop().

    These pin two former bugs: concurrent stops tripping over each
    other's ``_runner = None`` (AttributeError mid-shutdown), and a
    non-draining stop whose single queue sweep missed items that blocked
    putters landed *after* the sweep — leaving their futures unresolved
    forever.  The 20s watchdog in :func:`run` turns such a hang into a
    failure.
    """

    def test_concurrent_stops_during_drain(self, service):
        gated = GatedBackend(service)

        async def scenario():
            front = AsyncDiversificationService(
                gated, max_batch_size=1, max_wait_s=0
            )
            front.start()
            task = asyncio.create_task(front.submit("q0"))
            await settle()  # q0 is inside the gated dispatch
            stops = [
                asyncio.create_task(front.stop(drain=True)) for _ in range(3)
            ]
            await settle()  # every stop is parked on the queue join
            gated.gate.set()
            await asyncio.gather(*stops)
            assert not front.running
            result = await task
            assert result.query == "q0"

        run(scenario())

    def test_late_putters_are_failed_not_hung(self, service):
        """Two submitters blocked on a full queue: the stop-side sweep
        wakes them, their items land *after* the first sweep pass, and
        both must still be failed with ServiceClosed."""
        gated = GatedBackend(service)

        async def scenario():
            front = AsyncDiversificationService(
                gated, max_batch_size=1, max_wait_s=0, max_pending=1
            )
            try:
                front.start()
                tasks = [
                    asyncio.create_task(front.submit(f"q{i}"))
                    for i in range(4)
                ]
                await settle()  # q0 gated, q1 queued, q2+q3 blocked on put
                stop = asyncio.create_task(front.stop(drain=False))
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                await stop
                assert all(isinstance(o, ServiceClosed) for o in outcomes)
                assert not front.running
            finally:
                gated.gate.set()

        run(scenario())

    def test_drain_reports_counts_and_is_idempotent(
        self, backend, topic_queries
    ):
        async def scenario():
            front = make_front(backend, ManualClock(), max_wait_s=0)
            front.start()
            await front.submit_many(topic_queries[:3])
            report = await front.drain()
            assert report["already_stopped"] is False
            assert report["served_total"] == 3
            assert report["batches_total"] >= 1
            assert report["pending_at_drain"] == 0
            assert report["seconds"] >= 0
            assert not front.running
            second = await front.drain()
            assert second["already_stopped"] is True
            assert second["served_total"] == 3

        run(scenario())


class TestStats:
    def test_formation_accounting_is_exact_under_the_manual_clock(
        self, backend, topic_queries
    ):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                early = asyncio.create_task(front.submit(topic_queries[0]))
                await clock.advance(0.002)
                late = asyncio.create_task(front.submit(topic_queries[1]))
                await clock.advance(0.003)  # the opener's 5ms window ends
                await asyncio.gather(early, late)
                stats = front.stats
                assert stats.batch_sizes == {2: 1}
                assert stats.mean_batch_size == 2.0
                # Queue waits, per the manual clock: the opener waited the
                # whole 5ms window, the late joiner the remaining 3ms.
                assert sorted(stats.wait_ms) == pytest.approx([3.0, 5.0])
                assert stats.mean_wait_ms == pytest.approx(4.0)
                assert stats.wait_percentile_ms(1.0) == pytest.approx(5.0)
                assert stats.served == 2
                assert stats.batches == 1
                assert "batch mean=2.0" in stats.summary()
                assert "depth peak=" in stats.summary()

        run(scenario())

    def test_queue_depth_peak_tracks_burst_size(self, backend, topic_queries):
        async def scenario():
            clock = ManualClock()
            async with make_front(backend, clock) as front:
                tasks = [
                    asyncio.create_task(front.submit(q))
                    for q in topic_queries[:3]
                ]
                await settle()
                await clock.advance(WINDOW)
                await asyncio.gather(*tasks)
                # All three puts landed before the batcher first drained.
                assert front.stats.queue_depth_peak == 3

        run(scenario())

    def test_backend_stats_accessor(self, service, framework_factory):
        front = AsyncDiversificationService(service)
        assert front.backend_stats() is service.stats
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(), num_shards=2
        )
        sharded_front = AsyncDiversificationService(cluster)
        assert sharded_front.backend_stats().name == "cluster"


class TestRealClockIntegration:
    """One end-to-end pass over the real clock + executor path."""

    def test_open_loop_traffic_matches_direct_batch(
        self, service, framework_factory, topic_queries
    ):
        workload = topic_queries * 3

        async def scenario():
            async with AsyncDiversificationService(
                service, max_batch_size=4, max_wait_s=0.01
            ) as front:
                await front.warm(topic_queries)
                return await front.submit_many(workload)

        results = run(scenario())
        reference = DiversificationService(framework_factory()).diversify_batch(
            workload
        )
        for got, want in zip(results, reference):
            assert got.query == want.query
            assert got.ranking == want.ranking
        assert service.stats.served == len(workload)

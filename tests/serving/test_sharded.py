"""Tests for the sharded serving layer (ShardedDiversificationService)."""

from __future__ import annotations

import pytest

from repro.core.cache import CacheStats
from repro.retrieval.sharding import stable_shard
from repro.serving import (
    DiversificationService,
    ServiceStats,
    ShardedDiversificationService,
    WarmReport,
)

NUM_SHARDS = 3


@pytest.fixture()
def cluster(framework_factory):
    return ShardedDiversificationService.from_factory(
        lambda shard: framework_factory(),
        num_shards=NUM_SHARDS,
    )


@pytest.fixture()
def single(framework_factory):
    return DiversificationService(framework_factory())


@pytest.fixture(scope="module")
def workload(small_corpus):
    """A repeating workload over every topic query."""
    queries = [topic.query for topic in small_corpus.topics]
    return queries * 2 + list(reversed(queries))


class TestRouting:
    def test_route_is_stable_hash(self, cluster, workload):
        for query in workload:
            assert cluster.route(query) == stable_shard(query, NUM_SHARDS)
            assert cluster.route(query) == cluster.route(query)
            assert cluster.shard_for(query) is cluster.services[
                cluster.route(query)
            ]

    def test_partition_covers_batch_in_order(self, cluster, workload):
        buckets = cluster.partition(workload)
        assert len(buckets) == NUM_SHARDS
        assert sorted(q for b in buckets for q in b) == sorted(workload)
        for shard, bucket in enumerate(buckets):
            assert bucket == [q for q in workload if cluster.route(q) == shard]

    def test_router_seed_remaps(self, framework_factory, workload):
        reseeded = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(),
            num_shards=NUM_SHARDS,
            router_seed=1,
        )
        default = [stable_shard(q, NUM_SHARDS) for q in set(workload)]
        assert [reseeded.route(q) for q in set(workload)] != default


class TestIdentity:
    def test_batch_identical_to_unsharded(self, cluster, single, workload):
        """The acceptance criterion: sharding must not change a ranking."""
        sharded = cluster.diversify_batch(workload)
        unsharded = single.diversify_batch(workload)
        assert [r.query for r in sharded] == workload
        for a, b in zip(unsharded, sharded):
            assert a.query == b.query
            assert a.ranking == b.ranking

    def test_identity_with_thread_pool(
        self, framework_factory, single, workload
    ):
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(),
            num_shards=NUM_SHARDS,
            max_workers=NUM_SHARDS,
        )
        try:
            sharded = cluster.diversify_batch(workload)
            for a, b in zip(single.diversify_batch(workload), sharded):
                assert a.ranking == b.ranking
        finally:
            cluster.close()

    def test_duplicates_share_one_result(self, cluster, workload):
        query = workload[0]
        results = cluster.diversify_batch([query, query, query])
        assert results[0] is results[1] is results[2]

    def test_single_query_routes_to_owner(self, cluster, workload):
        query = workload[0]
        owner = cluster.shard_for(query)
        result = cluster.diversify(query)
        assert result.query == query
        assert owner.stats.ranked == 1
        others = [s for s in cluster.services if s is not owner]
        assert all(s.stats.ranked == 0 for s in others)

    def test_empty_batch(self, cluster):
        assert cluster.diversify_batch([]) == []


class TestMergedStats:
    def test_cluster_counters_equal_single_service(
        self, cluster, single, workload
    ):
        """Same workload, same counters: partitioning only relabels
        where the work happened."""
        single.warm(workload)
        single.diversify_batch(workload)
        cluster.warm(workload)
        cluster.diversify_batch(workload)

        merged = cluster.cluster_stats()
        assert merged.served == single.stats.served
        assert merged.ranked == single.stats.ranked
        assert merged.diversified == single.stats.diversified
        assert len(merged.latencies_ms) == len(single.stats.latencies_ms)
        assert merged.seconds > 0
        assert merged.throughput_qps > 0

        # Result LRU traffic is partition-invariant too: one lookup per
        # distinct query per batch, wherever it routes.
        merged_rc = cluster.result_cache_info()
        single_rc = single.result_cache_info()
        assert merged_rc.hits + merged_rc.misses == (
            single_rc.hits + single_rc.misses
        )
        assert merged_rc.size == single_rc.size

    def test_warm_report_merges_per_shard(self, cluster, workload):
        report = cluster.warm(workload)
        assert report.name == "cluster"
        assert len(report.shards) == NUM_SHARDS
        assert report.queries == len(set(workload))
        assert report.fetched == sum(r.fetched for r in report.shards)
        assert report.ambiguous == sum(r.ambiguous for r in report.shards)
        assert [r.name for r in report.shards] == [
            s.name for s in cluster.services
        ]
        assert "cluster" in report.summary()

    def test_warm_report_labels_wall_and_busy(self, cluster, workload):
        """The merged warm report must carry both clocks: ``seconds`` is
        the measured fan-out wall-clock, ``busy_seconds`` the summed
        per-shard busy time — neither substituted for the other
        (regression for the cluster warm timing that used to report only
        one number with mixed semantics)."""
        report = cluster.warm(workload)
        busy = sum(r.seconds for r in report.shards)
        assert report.busy_seconds == pytest.approx(busy)
        assert report.seconds > 0
        assert f"busy={report.busy_seconds:.3f}" in report.summary()
        for shard_report in report.shards:
            assert shard_report.busy_seconds == 0.0
            assert "busy=" not in shard_report.summary()

    def test_inline_warm_wall_covers_busy(self, framework_factory, workload):
        """Only under the *inline* backend do shards provably run inside
        the measured window, so wall >= summed busy is an invariant
        there (a thread-pool cluster on a multi-core host legitimately
        shows busy > wall — that is the point of keeping both)."""
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(),
            num_shards=NUM_SHARDS,
            backend="inline",
        )
        report = cluster.warm(workload)
        assert report.seconds >= report.busy_seconds > 0

    def test_cluster_stats_labels_wall_and_busy(self, cluster, workload):
        cluster.diversify_batch(workload)
        merged = cluster.cluster_stats()
        assert merged.busy_seconds == pytest.approx(
            sum(s.seconds for s in merged.shards)
        )
        assert merged.seconds > 0
        for leaf in merged.shards:
            assert leaf.busy_seconds == 0.0

    def test_spec_cache_merge(self, cluster, workload):
        cluster.warm(workload)
        merged = cluster.spec_cache_info()
        per_shard = [s.spec_cache_info() for s in cluster.services]
        assert merged.size == sum(c.size for c in per_shard)
        assert merged.misses == sum(c.misses for c in per_shard)

    def test_prepare_batch_covers_distinct(self, cluster, workload):
        prepared = cluster.prepare_batch(workload)
        assert set(prepared) == set(workload)
        for query, prep in prepared.items():
            assert prep.query == query

    def test_invalidate_forces_rerank(self, cluster, workload):
        query = workload[0]
        cluster.diversify(query)
        cluster.invalidate()
        cluster.diversify(query)
        assert cluster.cluster_stats().ranked == 2


class TestConstruction:
    def test_shards_are_auto_named(self, cluster):
        assert [s.name for s in cluster.services] == [
            f"shard{i}" for i in range(NUM_SHARDS)
        ]
        assert [s.stats.name for s in cluster.services] == [
            f"shard{i}" for i in range(NUM_SHARDS)
        ]

    def test_explicit_names_kept(self, framework_factory):
        services = [
            DiversificationService(framework_factory(), name="eu-west"),
            DiversificationService(framework_factory()),
        ]
        cluster = ShardedDiversificationService(services)
        assert [s.name for s in cluster.services] == ["eu-west", "shard1"]

    def test_requires_services(self):
        with pytest.raises(ValueError):
            ShardedDiversificationService([])

    def test_from_factory_validates_count(self, framework_factory):
        with pytest.raises(ValueError):
            ShardedDiversificationService.from_factory(
                lambda shard: framework_factory(), 0
            )

    def test_repr(self, cluster):
        assert "shards=3" in repr(cluster)


class TestStatsMergePrimitives:
    def test_service_stats_merge(self):
        a = ServiceStats(served=5, ranked=3, diversified=2, batches=1, seconds=0.5)
        a.latencies_ms.extend([1.0, 2.0, 3.0])
        b = ServiceStats(served=7, ranked=4, diversified=1, batches=2, seconds=0.25)
        b.latencies_ms.extend([4.0])
        merged = ServiceStats.merge([a, b], name="cluster")
        assert merged.name == "cluster"
        assert merged.served == 12
        assert merged.ranked == 7
        assert merged.diversified == 3
        assert merged.batches == 3
        assert merged.seconds == 0.75
        assert sorted(merged.latencies_ms) == [1.0, 2.0, 3.0, 4.0]
        assert merged.summary().startswith("[cluster]")

    def test_cache_stats_merge(self):
        a = CacheStats(maxsize=4, size=2, hits=10, misses=5, evictions=1)
        b = CacheStats(maxsize=8, size=3, hits=2, misses=2, evictions=0)
        merged = CacheStats.merge([a, b])
        assert merged == CacheStats(
            maxsize=12, size=5, hits=12, misses=7, evictions=1
        )
        assert merged.hit_rate == pytest.approx(12 / 19)

    def test_cache_stats_merge_empty(self):
        merged = CacheStats.merge([])
        assert merged.hits == merged.misses == merged.size == 0
        assert merged.hit_rate == 0.0

    def test_service_stats_merge_empty_is_valid_zero(self):
        """Merging nothing must yield a usable zeroed summary, with every
        derived quantity (rates, percentiles, means) defined."""
        merged = ServiceStats.merge([])
        assert merged.served == merged.ranked == merged.batches == 0
        assert merged.throughput_qps == 0.0
        assert merged.mean_latency_ms == 0.0
        assert merged.percentile_ms(0.95) == 0.0
        assert merged.mean_batch_size == 0.0
        assert merged.mean_wait_ms == 0.0
        assert merged.wait_percentile_ms(0.5) == 0.0
        assert merged.queue_depth_peak == 0
        assert merged.summary().startswith("[cluster]")

    def test_warm_report_merge_empty_is_valid_zero(self):
        merged = WarmReport.merge([])
        assert merged.queries == merged.fetched == 0
        assert merged.seconds == 0.0
        assert merged.shards == ()
        assert "queries=0" in merged.summary()

    def test_merges_accept_generators(self):
        """A lazily-generated input must not be silently half-consumed
        (each merge reads its input several times internally)."""
        def stats():
            for served in (3, 4):
                s = ServiceStats(served=served, ranked=served, seconds=0.5)
                s.latencies_ms.append(float(served))
                yield s

        merged = ServiceStats.merge(stats())
        assert merged.served == 7
        assert merged.ranked == 7
        assert merged.seconds == 1.0
        assert sorted(merged.latencies_ms) == [3.0, 4.0]

        reports = (
            WarmReport(queries=q, ambiguous=1, specializations=2, fetched=2,
                       seconds=0.1)
            for q in (5, 6)
        )
        warm = WarmReport.merge(reports)
        assert warm.queries == 11
        assert warm.fetched == 4
        assert len(warm.shards) == 2

        caches = (
            CacheStats(maxsize=4, size=1, hits=h, misses=1, evictions=0)
            for h in (2, 3)
        )
        assert CacheStats.merge(caches).hits == 5

    def test_merge_breakdown_is_a_snapshot(self):
        """The merged ``shards`` breakdown must not alias the live
        inputs: serving more traffic after the merge may not mutate an
        already-taken cluster snapshot."""
        live = ServiceStats(served=2, ranked=2, seconds=0.1, name="shard0")
        live.latencies_ms.append(1.0)
        merged = ServiceStats.merge([live, ServiceStats(name="shard1")])
        assert merged.shards[0].served == 2
        live.served += 5
        live.latencies_ms.append(9.0)
        assert merged.shards[0].served == 2
        assert list(merged.shards[0].latencies_ms) == [1.0]
        assert sum(s.served for s in merged.shards) == merged.served

    def test_formation_fields_merge(self):
        """The async front-end's batch-formation accounting must roll up
        like every other counter: histograms add, wait samples
        concatenate, depth peaks take the max."""
        a = ServiceStats(served=4, batches=2)
        a.record_formation(2, [1.0, 2.0], queue_depth=3)
        a.record_formation(2, [0.5, 0.5], queue_depth=1)
        b = ServiceStats(served=3, batches=1)
        b.record_formation(3, [4.0, 4.0, 4.0], queue_depth=7)
        merged = ServiceStats.merge([a, b])
        assert merged.batch_sizes == {2: 2, 3: 1}
        assert merged.mean_batch_size == pytest.approx(7 / 3)
        assert sorted(merged.wait_ms) == [0.5, 0.5, 1.0, 2.0, 4.0, 4.0, 4.0]
        assert merged.queue_depth_peak == 7
        assert merged.mean_wait_ms == pytest.approx(16.0 / 7)
        assert "batch mean=" in merged.summary()

    def test_merge_of_merged_reports_nests(self):
        """Cluster-of-clusters: merging merged reports keeps counters
        additive and the shard breakdown intact one level down."""
        leaf = [
            WarmReport(queries=2, ambiguous=1, specializations=2, fetched=2,
                       seconds=0.1, name=f"shard{i}")
            for i in range(2)
        ]
        cluster = WarmReport.merge(leaf, name="cluster0")
        top = WarmReport.merge([cluster, cluster], name="region")
        assert top.queries == 8
        assert top.name == "region"
        assert all(r.name == "cluster0" for r in top.shards)
        assert all(len(r.shards) == 2 for r in top.shards)

"""Tests for the sharded serving layer (ShardedDiversificationService)."""

from __future__ import annotations

import pytest

from repro.core.cache import CacheStats
from repro.core.framework import DiversificationFramework, FrameworkConfig
from repro.core.optselect import OptSelect
from repro.retrieval.sharding import stable_shard
from repro.serving import (
    DiversificationService,
    ServiceStats,
    ShardedDiversificationService,
)

NUM_SHARDS = 3


def make_framework(small_engine, small_miner):
    return DiversificationFramework(
        small_engine,
        small_miner,
        OptSelect(),
        FrameworkConfig(k=10, candidates=80, spec_results=10),
    )


@pytest.fixture()
def cluster(small_engine, small_miner):
    return ShardedDiversificationService.from_factory(
        lambda shard: make_framework(small_engine, small_miner),
        num_shards=NUM_SHARDS,
    )


@pytest.fixture()
def single(small_engine, small_miner):
    return DiversificationService(make_framework(small_engine, small_miner))


@pytest.fixture(scope="module")
def workload(small_corpus):
    """A repeating workload over every topic query."""
    queries = [topic.query for topic in small_corpus.topics]
    return queries * 2 + list(reversed(queries))


class TestRouting:
    def test_route_is_stable_hash(self, cluster, workload):
        for query in workload:
            assert cluster.route(query) == stable_shard(query, NUM_SHARDS)
            assert cluster.route(query) == cluster.route(query)
            assert cluster.shard_for(query) is cluster.services[
                cluster.route(query)
            ]

    def test_partition_covers_batch_in_order(self, cluster, workload):
        buckets = cluster.partition(workload)
        assert len(buckets) == NUM_SHARDS
        assert sorted(q for b in buckets for q in b) == sorted(workload)
        for shard, bucket in enumerate(buckets):
            assert bucket == [q for q in workload if cluster.route(q) == shard]

    def test_router_seed_remaps(self, small_engine, small_miner, workload):
        reseeded = ShardedDiversificationService.from_factory(
            lambda shard: make_framework(small_engine, small_miner),
            num_shards=NUM_SHARDS,
            router_seed=1,
        )
        default = [stable_shard(q, NUM_SHARDS) for q in set(workload)]
        assert [reseeded.route(q) for q in set(workload)] != default


class TestIdentity:
    def test_batch_identical_to_unsharded(self, cluster, single, workload):
        """The acceptance criterion: sharding must not change a ranking."""
        sharded = cluster.diversify_batch(workload)
        unsharded = single.diversify_batch(workload)
        assert [r.query for r in sharded] == workload
        for a, b in zip(unsharded, sharded):
            assert a.query == b.query
            assert a.ranking == b.ranking

    def test_identity_with_thread_pool(
        self, small_engine, small_miner, single, workload
    ):
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: make_framework(small_engine, small_miner),
            num_shards=NUM_SHARDS,
            max_workers=NUM_SHARDS,
        )
        try:
            sharded = cluster.diversify_batch(workload)
            for a, b in zip(single.diversify_batch(workload), sharded):
                assert a.ranking == b.ranking
        finally:
            cluster.close()

    def test_duplicates_share_one_result(self, cluster, workload):
        query = workload[0]
        results = cluster.diversify_batch([query, query, query])
        assert results[0] is results[1] is results[2]

    def test_single_query_routes_to_owner(self, cluster, workload):
        query = workload[0]
        owner = cluster.shard_for(query)
        result = cluster.diversify(query)
        assert result.query == query
        assert owner.stats.ranked == 1
        others = [s for s in cluster.services if s is not owner]
        assert all(s.stats.ranked == 0 for s in others)

    def test_empty_batch(self, cluster):
        assert cluster.diversify_batch([]) == []


class TestMergedStats:
    def test_cluster_counters_equal_single_service(
        self, cluster, single, workload
    ):
        """Same workload, same counters: partitioning only relabels
        where the work happened."""
        single.warm(workload)
        single.diversify_batch(workload)
        cluster.warm(workload)
        cluster.diversify_batch(workload)

        merged = cluster.cluster_stats()
        assert merged.served == single.stats.served
        assert merged.ranked == single.stats.ranked
        assert merged.diversified == single.stats.diversified
        assert len(merged.latencies_ms) == len(single.stats.latencies_ms)
        assert merged.seconds > 0
        assert merged.throughput_qps > 0

        # Result LRU traffic is partition-invariant too: one lookup per
        # distinct query per batch, wherever it routes.
        merged_rc = cluster.result_cache_info()
        single_rc = single.result_cache_info()
        assert merged_rc.hits + merged_rc.misses == (
            single_rc.hits + single_rc.misses
        )
        assert merged_rc.size == single_rc.size

    def test_warm_report_merges_per_shard(self, cluster, workload):
        report = cluster.warm(workload)
        assert report.name == "cluster"
        assert len(report.shards) == NUM_SHARDS
        assert report.queries == len(set(workload))
        assert report.fetched == sum(r.fetched for r in report.shards)
        assert report.ambiguous == sum(r.ambiguous for r in report.shards)
        assert [r.name for r in report.shards] == [
            s.name for s in cluster.services
        ]
        assert "cluster" in report.summary()

    def test_spec_cache_merge(self, cluster, workload):
        cluster.warm(workload)
        merged = cluster.spec_cache_info()
        per_shard = [s.spec_cache_info() for s in cluster.services]
        assert merged.size == sum(c.size for c in per_shard)
        assert merged.misses == sum(c.misses for c in per_shard)

    def test_prepare_batch_covers_distinct(self, cluster, workload):
        prepared = cluster.prepare_batch(workload)
        assert set(prepared) == set(workload)
        for query, prep in prepared.items():
            assert prep.query == query

    def test_invalidate_forces_rerank(self, cluster, workload):
        query = workload[0]
        cluster.diversify(query)
        cluster.invalidate()
        cluster.diversify(query)
        assert cluster.cluster_stats().ranked == 2


class TestConstruction:
    def test_shards_are_auto_named(self, cluster):
        assert [s.name for s in cluster.services] == [
            f"shard{i}" for i in range(NUM_SHARDS)
        ]
        assert [s.stats.name for s in cluster.services] == [
            f"shard{i}" for i in range(NUM_SHARDS)
        ]

    def test_explicit_names_kept(self, small_engine, small_miner):
        services = [
            DiversificationService(
                make_framework(small_engine, small_miner), name="eu-west"
            ),
            DiversificationService(make_framework(small_engine, small_miner)),
        ]
        cluster = ShardedDiversificationService(services)
        assert [s.name for s in cluster.services] == ["eu-west", "shard1"]

    def test_requires_services(self):
        with pytest.raises(ValueError):
            ShardedDiversificationService([])

    def test_from_factory_validates_count(self, small_engine, small_miner):
        with pytest.raises(ValueError):
            ShardedDiversificationService.from_factory(
                lambda shard: make_framework(small_engine, small_miner), 0
            )

    def test_repr(self, cluster):
        assert "shards=3" in repr(cluster)


class TestStatsMergePrimitives:
    def test_service_stats_merge(self):
        a = ServiceStats(served=5, ranked=3, diversified=2, batches=1, seconds=0.5)
        a.latencies_ms.extend([1.0, 2.0, 3.0])
        b = ServiceStats(served=7, ranked=4, diversified=1, batches=2, seconds=0.25)
        b.latencies_ms.extend([4.0])
        merged = ServiceStats.merge([a, b], name="cluster")
        assert merged.name == "cluster"
        assert merged.served == 12
        assert merged.ranked == 7
        assert merged.diversified == 3
        assert merged.batches == 3
        assert merged.seconds == 0.75
        assert sorted(merged.latencies_ms) == [1.0, 2.0, 3.0, 4.0]
        assert merged.summary().startswith("[cluster]")

    def test_cache_stats_merge(self):
        a = CacheStats(maxsize=4, size=2, hits=10, misses=5, evictions=1)
        b = CacheStats(maxsize=8, size=3, hits=2, misses=2, evictions=0)
        merged = CacheStats.merge([a, b])
        assert merged == CacheStats(
            maxsize=12, size=5, hits=12, misses=7, evictions=1
        )
        assert merged.hit_rate == pytest.approx(12 / 19)

    def test_cache_stats_merge_empty(self):
        merged = CacheStats.merge([])
        assert merged.hits == merged.misses == merged.size == 0
        assert merged.hit_rate == 0.0

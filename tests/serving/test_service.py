"""Tests for the batched serving layer (DiversificationService)."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.serving import DiversificationService, ServiceStats


@pytest.fixture()
def service(fresh_framework):
    return DiversificationService(fresh_framework)


class TestWarm:
    def test_warm_precomputes_spec_artifacts(self, service, topic_queries):
        report = service.warm(topic_queries)
        assert report.queries == len(set(topic_queries))
        assert report.fetched == report.specializations
        assert service.spec_cache_info().size == report.specializations

    def test_warm_is_idempotent(self, service, topic_queries):
        first = service.warm(topic_queries)
        second = service.warm(topic_queries)
        assert second.fetched == 0
        assert second.specializations == first.specializations

    def test_warmed_service_serves_without_spec_misses(
        self, service, topic_queries
    ):
        service.warm(topic_queries)
        misses_before = service.spec_cache_info().misses
        service.diversify_batch(topic_queries)
        assert service.spec_cache_info().misses == misses_before


class TestDiversifyBatch:
    def test_ordering_matches_input(self, service, topic_queries):
        queries = topic_queries + list(reversed(topic_queries))
        results = service.diversify_batch(queries)
        assert [r.query for r in results] == queries

    def test_duplicates_share_one_result(self, service, topic_queries):
        query = topic_queries[0]
        results = service.diversify_batch([query, query, query])
        assert results[0] is results[1] is results[2]
        assert service.stats.ranked == 1
        assert service.stats.served == 3

    def test_matches_per_query_pipeline(
        self, service, framework_factory, topic_queries
    ):
        reference = framework_factory()
        batch = service.diversify_batch(topic_queries)
        for query, result in zip(topic_queries, batch):
            assert reference.diversify_query(query).ranking == result.ranking

    def test_result_cache_hits_across_batches(self, service, topic_queries):
        service.diversify_batch(topic_queries)
        ranked_before = service.stats.ranked
        service.diversify_batch(topic_queries)
        assert service.stats.ranked == ranked_before
        assert service.result_cache_info().hits >= len(set(topic_queries))

    def test_single_query_entry_point(self, service, topic_queries):
        result = service.diversify(topic_queries[0])
        assert result.query == topic_queries[0]
        assert service.diversify(topic_queries[0]) is result

    def test_invalidate_forces_rerank(self, service, topic_queries):
        service.diversify(topic_queries[0])
        service.invalidate()
        service.diversify(topic_queries[0])
        assert service.stats.ranked == 2

    def test_latency_stats_recorded(self, service, topic_queries):
        service.diversify_batch(topic_queries)
        stats = service.stats
        assert len(stats.latencies_ms) == stats.ranked
        assert stats.mean_latency_ms > 0
        assert stats.percentile_ms(0.95) >= stats.percentile_ms(0.50)
        assert stats.throughput_qps > 0
        assert "qps" in stats.summary()


class TestNameThreading:
    """The shard label must surface everywhere a report is rendered."""

    def test_named_service_labels_stats_and_warm(
        self, fresh_framework, topic_queries
    ):
        service = DiversificationService(fresh_framework, name="shard7")
        assert service.stats.name == "shard7"
        assert "name='shard7'" in repr(service)
        report = service.warm(topic_queries)
        assert report.name == "shard7"
        assert report.summary().startswith("[shard7]")
        service.diversify_batch(topic_queries)
        assert service.stats.summary().startswith("[shard7]")

    def test_unnamed_service_has_clean_summaries(self, service, topic_queries):
        report = service.warm(topic_queries)
        assert report.name == ""
        assert not report.summary().startswith("[")
        assert not service.stats.summary().startswith("[")
        assert "name=" not in repr(service)


class TestPrepare:
    def test_prepare_batch_builds_tasks_for_ambiguous(
        self, service, small_miner, topic_queries
    ):
        prepared = service.prepare_batch(topic_queries)
        assert set(prepared) == set(topic_queries)
        for query, prep in prepared.items():
            assert prep.query == query
            if small_miner.is_ambiguous(query):
                assert prep.ambiguous
                assert prep.task is not None
                assert prep.task.query == query
            else:
                assert prep.task is None

    def test_prepare_single(self, service, small_miner, topic_queries, ambiguous_topic):
        prep = service.prepare(ambiguous_topic.query)
        assert prep.ambiguous and prep.task is not None

    def test_prepare_batch_prefetches_once(self, service, topic_queries):
        service.prepare_batch(topic_queries)
        info = service.spec_cache_info()
        # Every artifact was fetched by the batched prefetch, then read
        # back by task construction: no misses beyond the prefetch pass.
        assert info.size > 0
        assert info.hits >= info.size
        assert info.misses == 0


class TestPercentileInterpolation:
    """percentile_ms/wait_percentile_ms follow the linear-interpolation
    ("inclusive") convention of ``statistics.quantiles`` — pinned here
    because a nearest-rank implementation once diverged on small and
    even-sized samples (banker's rounding picked the lower neighbour)."""

    @staticmethod
    def recorded(latencies):
        stats = ServiceStats()
        for value in latencies:
            stats.record(value, diversified=False)
        return stats

    def test_empty_sample_is_zero(self):
        stats = ServiceStats()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert stats.percentile_ms(q) == 0.0
            assert stats.wait_percentile_ms(q) == 0.0

    def test_single_sample_is_every_percentile(self):
        stats = self.recorded([7.5])
        for q in (0.0, 0.5, 0.95, 1.0):
            assert stats.percentile_ms(q) == 7.5

    def test_two_samples_interpolate_the_median(self):
        stats = self.recorded([10.0, 20.0])
        assert stats.percentile_ms(0.5) == pytest.approx(15.0)
        assert stats.percentile_ms(0.25) == pytest.approx(12.5)
        assert stats.percentile_ms(0.0) == 10.0
        assert stats.percentile_ms(1.0) == 20.0

    def test_out_of_range_q_clamps_to_extremes(self):
        stats = self.recorded([5.0, 10.0, 20.0])
        assert stats.percentile_ms(-3.0) == 5.0
        assert stats.percentile_ms(7.0) == 20.0

    def test_matches_statistics_quantiles_inclusive(self):
        rng = random.Random(31)
        samples = [rng.uniform(0.1, 50.0) for _ in range(101)]
        stats = self.recorded(samples)
        hundredths = statistics.quantiles(samples, n=100, method="inclusive")
        for q, expected in ((0.25, hundredths[24]), (0.50, hundredths[49]),
                            (0.95, hundredths[94]), (0.99, hundredths[98])):
            assert stats.percentile_ms(q) == pytest.approx(expected)

    def test_merged_out_of_order_shard_samples(self):
        """Shards record independently, so a merged sample is unsorted
        and interleaved; percentiles must equal those of the pooled,
        re-sorted sample — order of merging must not matter."""
        rng = random.Random(77)
        per_shard = [
            [rng.uniform(0.1, 30.0) for _ in range(rng.randrange(0, 40))]
            for _ in range(4)
        ]
        shard_stats = [self.recorded(latencies) for latencies in per_shard]
        merged = ServiceStats.merge(shard_stats)
        reversed_merge = ServiceStats.merge(list(reversed(shard_stats)))
        pooled = sorted(sample for shard in per_shard for sample in shard)
        hundredths = statistics.quantiles(pooled, n=100, method="inclusive")
        for q, expected in ((0.50, hundredths[49]), (0.95, hundredths[94])):
            assert merged.percentile_ms(q) == pytest.approx(expected)
            assert reversed_merge.percentile_ms(q) == pytest.approx(expected)

    def test_merged_replica_wait_samples(self):
        front_a, front_b = ServiceStats(), ServiceStats()
        front_a.record_formation(2, [9.0, 1.0], queue_depth=0)
        front_b.record_formation(2, [5.0, 3.0], queue_depth=0)
        merged = ServiceStats.merge_replicas([front_a, front_b])
        assert merged.wait_percentile_ms(0.5) == pytest.approx(4.0)
        assert merged.wait_percentile_ms(1.0) == 9.0

"""Deterministic fault injection for the replicated serving layer.

The replication tests need to pin exact failover paths — "the primary
crashes on its first request", "the primary hangs, the hedge fires at
t=50ms and wins" — which real processes cannot script without races.
This harness substitutes the :class:`~repro.serving.replication`
layer's worker and clock seams (the same manual-time idiom as the
asyncio harness in ``tests/serving/aio.py``):

* :class:`VirtualClock` — the routing layer's only notion of time.  It
  advances exclusively inside :meth:`ScriptedWorker.poll`, the one
  place the real system waits, so every hedge deadline and hang timeout
  fires at an exact, reproducible virtual instant with zero sleeps.
* :class:`Fault` / :class:`FaultSchedule` — script what goes wrong and
  precisely where: keyed by ``(shard, replica slot, nth request to that
  worker incarnation)``, plus sticky per-slot faults for
  "this replica always crashes" scenarios.  A respawned worker starts
  a fresh incarnation (its request counter restarts at 0), mirroring a
  real respawned process.
* :class:`ScriptedWorker` — a real in-process
  :class:`~repro.serving.service.DiversificationService` behind the
  :class:`~repro.serving.replication.ReplicaWorker` pipe surface.  The
  reply is computed eagerly on ``send`` (the service is deterministic,
  so *when* it runs cannot change *what* it answers) and queued FIFO
  with a virtual ready-time; faults crash the worker before/after
  computing, delay the reply, or hang it forever.
* :class:`FaultInjectingBackend` — a
  :class:`~repro.serving.replication.ReplicatedBackend` wired to build
  scripted workers from the *real* service factory (so
  ``warm_artifacts_dir`` rehydration is exercised by respawns) on the
  shared virtual clock, with shard fan-out forced sequential so the
  clock's advance order is deterministic.  ``spawned`` logs every
  ``(shard, replica)`` build — respawns are observable as repeats.
"""

from __future__ import annotations

import traceback
from collections import deque
from dataclasses import dataclass

from repro.serving.backends import ShardCall, WorkerDiedError
from repro.serving.replication import ReplicatedBackend, ReplicaWorker

__all__ = [
    "CRASH_ON_SEND",
    "CRASH_BEFORE_REPLY",
    "HANG",
    "DELAY",
    "VirtualClock",
    "Fault",
    "FaultSchedule",
    "ScriptedWorker",
    "FaultInjectingBackend",
]

#: The worker dies before the request reaches it (send raises).
CRASH_ON_SEND = "crash-on-send"
#: The worker takes the request, computes, then dies without replying.
CRASH_BEFORE_REPLY = "crash-before-reply"
#: The worker takes the request and never replies (but stays alive).
HANG = "hang"
#: The worker replies ``delay`` virtual seconds after the request.
DELAY = "delay"

_KINDS = (CRASH_ON_SEND, CRASH_BEFORE_REPLY, HANG, DELAY)


class VirtualClock:
    """Manual time: readable everywhere, advanced only by worker polls."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += seconds


@dataclass(frozen=True)
class Fault:
    """One scripted failure; ``delay`` only applies to :data:`DELAY`."""

    kind: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {_KINDS}")


class FaultSchedule:
    """Faults addressed to exact points in the request stream.

    ``at(shard, replica, call_index, fault)`` arms a one-shot fault for
    the ``call_index``-th request the addressed worker *incarnation*
    receives (0-based; consumed when it fires, so the respawned
    replacement worker — whose counter restarts at 0 — is healthy
    unless separately scripted).  ``always(shard, replica, fault)``
    arms a sticky fault that hits every request to that slot, across
    respawns — the "this replica is cursed" scenario.  One-shot faults
    take precedence over sticky ones at the same point.
    """

    def __init__(self) -> None:
        self._at: dict[tuple[int, int, int], Fault] = {}
        self._always: dict[tuple[int, int], Fault] = {}

    def at(self, shard: int, replica: int, call_index: int, fault: Fault) -> "FaultSchedule":
        self._at[(shard, replica, call_index)] = fault
        return self

    def always(self, shard: int, replica: int, fault: Fault) -> "FaultSchedule":
        self._always[(shard, replica)] = fault
        return self

    def take(self, shard: int, replica: int, call_index: int) -> Fault | None:
        fault = self._at.pop((shard, replica, call_index), None)
        if fault is None:
            fault = self._always.get((shard, replica))
        return fault


class ScriptedWorker(ReplicaWorker):
    """A real shard service behind the replica-worker pipe surface.

    Requests are answered by ``service`` immediately inside ``send`` —
    determinism means execution timing cannot affect results — and the
    replies queue FIFO with a virtual *ready time*: ``poll`` reports the
    head reply ready once the clock reaches it, advancing the clock by
    its timeout when it is not (the scripted stand-in for blocking on a
    pipe).  A ``None`` ready time models a hang: never ready, however
    long anyone waits.  Death (scripted or :meth:`close`) makes ``send``
    and ``recv`` raise :class:`WorkerDiedError` and ``poll`` report
    ready, exactly like a real worker's EOF-able pipe.
    """

    def __init__(self, shard, replica, service, schedule, clock) -> None:
        super().__init__(shard, replica)
        self.service = service
        self._schedule = schedule
        self._clock = clock
        self._queue: deque[tuple[float | None, tuple]] = deque()
        self._dead = False
        self.calls = 0  #: requests this incarnation has received

    def _died(self) -> WorkerDiedError:
        return WorkerDiedError(
            f"{self.label} is dead",
            shards=(self.shard,),
            replica=self.replica,
        )

    def send(self, request: ShardCall) -> None:
        if self._dead:
            raise self._died()
        _shard, method, args = request
        fault = self._schedule.take(self.shard, self.replica, self.calls)
        self.calls += 1
        if fault is not None and fault.kind == CRASH_ON_SEND:
            self._dead = True
            raise self._died()
        try:
            reply = ("ok", getattr(self.service, method)(*args))
        except Exception as exc:  # mirror _worker_main: ship it back
            reply = ("err", (exc, traceback.format_exc()))
        if fault is None:
            self._queue.append((self._clock(), reply))
        elif fault.kind == CRASH_BEFORE_REPLY:
            self._dead = True
        elif fault.kind == HANG:
            self._queue.append((None, reply))
        else:  # DELAY
            self._queue.append((self._clock() + fault.delay, reply))

    def _head_ready(self) -> bool:
        if not self._queue:
            return False
        ready_at = self._queue[0][0]
        return ready_at is not None and ready_at <= self._clock() + 1e-12

    def poll(self, timeout: float) -> bool:
        if self._dead:
            return True  # recv() surfaces the death
        if self._head_ready():
            return True
        if timeout > 0:
            self._clock.advance(timeout)
        return self._head_ready()

    def recv(self) -> tuple:
        if self._dead:
            raise self._died()
        if not self._head_ready():
            raise AssertionError(f"recv() on {self.label} without a ready reply")
        return self._queue.popleft()[1]

    def alive(self) -> bool:
        return not self._dead

    def close(self, kill: bool = False) -> None:
        self._dead = True


class FaultInjectingBackend(ReplicatedBackend):
    """A replicated backend whose workers are scripted and whose time is
    virtual — every failover path at exact clock points, zero sleeps,
    zero real processes.

    The worker provider runs the *real* service factory (so respawns
    exercise ``warm_artifacts_dir`` rehydration exactly like a process
    respawn would) and wraps the service in a :class:`ScriptedWorker`
    driven by ``schedule``.  Shard fan-out is forced sequential: a
    thread pool racing polls on one shared clock would destroy the
    determinism this harness exists for.
    """

    def __init__(
        self,
        replicas: int = 2,
        schedule: FaultSchedule | None = None,
        policy: str = "round-robin",
        hedge_after_ms: float | None = None,
        hang_timeout_s: float = 1.0,
        poll_interval_s: float = 0.01,
    ) -> None:
        self.clock = VirtualClock()
        self.schedule = schedule or FaultSchedule()
        self.spawned: list[tuple[int, int]] = []  #: every worker build
        super().__init__(
            replicas=replicas,
            policy=policy,
            hedge_after_ms=hedge_after_ms,
            hang_timeout_s=hang_timeout_s,
            poll_interval_s=poll_interval_s,
            worker_provider=self._make_worker,
            clock=self.clock,
            parallel=False,
        )

    def _make_worker(self, factory, shard: int, replica: int) -> ScriptedWorker:
        service = factory(shard)
        if hasattr(service, "rename"):
            service.rename(f"shard{shard}/r{replica}")
        self.spawned.append((shard, replica))
        return ScriptedWorker(shard, replica, service, self.schedule, self.clock)

"""Contract tests for the HTTP serving surface.

Every endpoint's documented behaviour — status codes, error bodies,
pagination edges, the drain lifecycle — is pinned against a live
:class:`~repro.serving.DiversificationHTTPServer` on an ephemeral port.
Concurrency scenarios (429 shedding, request timeout, drain under load)
are made deterministic with a gate backend that blocks ``diversify_batch``
until the test opens it, so no scenario depends on scheduler luck.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import (
    DiversificationHTTPServer,
    DiversificationService,
    ShardedDiversificationService,
    result_payload,
)
from repro.serving.http import DEFAULT_PAGE_LIMIT, MAX_PAGE_LIMIT


# -- HTTP helpers ----------------------------------------------------------------


def get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as rsp:
            return rsp.status, json.load(rsp)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def post(url: str, body: dict | bytes | None = None) -> tuple[int, dict]:
    if body is None:
        data = b""
    elif isinstance(body, bytes):
        data = body
    else:
        data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as rsp:
            return rsp.status, json.load(rsp)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def error_code(body: dict) -> str:
    return body["error"]["code"]


class GateBackend:
    """A service wrapper whose ``diversify_batch`` blocks until opened.

    ``entered`` fires when a batch reaches the backend, so tests can wait
    until a request is genuinely in flight before acting on it.
    """

    def __init__(self, service):
        self._service = service
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __getattr__(self, name):
        return getattr(self._service, name)

    def diversify_batch(self, queries):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test never opened the gate"
        return self._service.diversify_batch(queries)


@pytest.fixture()
def server(framework_factory, topic_queries):
    service = DiversificationService(framework_factory())
    service.warm(topic_queries)
    with DiversificationHTTPServer(service) as srv:
        yield srv


@pytest.fixture()
def reference(framework_factory, topic_queries):
    """Direct diversify_batch payloads for the same queries, own service."""
    service = DiversificationService(framework_factory())
    service.warm(topic_queries)
    return {
        query: result_payload(result)
        for query, result in zip(
            topic_queries, service.diversify_batch(topic_queries)
        )
    }


# -- POST /diversify -------------------------------------------------------------


class TestDiversify:
    def test_single_query_matches_direct_batch(
        self, server, reference, topic_queries
    ):
        query = topic_queries[0]
        status, body = post(server.base_url + "/diversify", {"query": query})
        assert status == 200
        assert body == reference[query]

    def test_batch_body_matches_direct_batch(
        self, server, reference, topic_queries
    ):
        status, body = post(
            server.base_url + "/diversify", {"queries": topic_queries}
        )
        assert status == 200
        assert body["results"] == [reference[q] for q in topic_queries]

    def test_repeated_queries_keep_request_order(self, server, topic_queries):
        queries = [topic_queries[0], topic_queries[1], topic_queries[0]]
        status, body = post(server.base_url + "/diversify", {"queries": queries})
        assert status == 200
        assert [r["query"] for r in body["results"]] == queries
        assert body["results"][0] == body["results"][2]

    def test_malformed_json_is_400(self, server):
        status, body = post(server.base_url + "/diversify", b"{not json")
        assert status == 400
        assert error_code(body) == "bad_json"

    def test_missing_body_is_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/diversify", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=30)
        assert exc_info.value.code == 400

    @pytest.mark.parametrize(
        "body, code",
        [
            ({}, "invalid_body"),
            ({"query": "a", "queries": ["b"]}, "invalid_body"),
            ({"nope": 1}, "unknown_field"),
            ({"query": ""}, "invalid_query"),
            ({"query": 7}, "invalid_query"),
            ({"queries": []}, "invalid_queries"),
            ({"queries": "not a list"}, "invalid_queries"),
            ({"queries": ["ok", ""]}, "invalid_queries"),
            ({"query": "a", "timeout_ms": 0}, "invalid_timeout"),
            ({"query": "a", "timeout_ms": True}, "invalid_timeout"),
            ({"query": "a", "timeout_ms": "soon"}, "invalid_timeout"),
        ],
    )
    def test_validation_errors_are_422(self, server, body, code):
        status, got = post(server.base_url + "/diversify", body)
        assert status == 422
        assert error_code(got) == code

    def test_unknown_path_is_404(self, server):
        status, body = get(server.base_url + "/nope")
        assert status == 404
        assert error_code(body) == "not_found"

    def test_wrong_method_is_405(self, server):
        status, body = get(server.base_url + "/diversify")
        assert status == 405
        assert error_code(body) == "method_not_allowed"
        status, body = post(server.base_url + "/health")
        assert status == 405


# -- GET /results ----------------------------------------------------------------


class TestResultsPagination:
    def test_empty_ring(self, server):
        status, body = get(server.base_url + "/results")
        assert status == 200
        assert body["items"] == []
        assert body["page"] == {
            "total": 0,
            "limit": DEFAULT_PAGE_LIMIT,
            "offset": 0,
            "next_cursor": None,
            "has_more": False,
        }

    def test_offset_walk_covers_ring_in_serve_order(self, server, topic_queries):
        post(server.base_url + "/diversify", {"queries": topic_queries})
        seen = []
        offset = 0
        while True:
            status, body = get(
                f"{server.base_url}/results?limit=2&offset={offset}"
            )
            assert status == 200
            seen.extend(item["query"] for item in body["items"])
            if not body["page"]["has_more"]:
                break
            offset += len(body["items"])
        assert seen == topic_queries

    def test_offset_past_end_is_empty_not_error(self, server, topic_queries):
        post(server.base_url + "/diversify", {"query": topic_queries[0]})
        status, body = get(server.base_url + "/results?offset=999")
        assert status == 200
        assert body["items"] == []
        assert body["page"]["has_more"] is False
        assert body["page"]["total"] == 1

    def test_cursor_walk_is_gapless_and_ascending(self, server, topic_queries):
        post(server.base_url + "/diversify", {"queries": topic_queries})
        seqs, cursor = [], "0"
        while True:
            status, body = get(
                f"{server.base_url}/results?limit=2&cursor={cursor}"
            )
            assert status == 200
            seqs.extend(item["seq"] for item in body["items"])
            if not body["page"]["has_more"]:
                break
            cursor = body["page"]["next_cursor"]
        assert seqs == list(range(1, len(topic_queries) + 1))

    def test_cursor_past_end_is_empty(self, server, topic_queries):
        post(server.base_url + "/diversify", {"query": topic_queries[0]})
        status, body = get(server.base_url + "/results?cursor=999")
        assert status == 200
        assert body["items"] == []
        assert body["page"]["has_more"] is False

    def test_bad_cursor_is_400(self, server):
        status, body = get(server.base_url + "/results?cursor=xyzzy")
        assert status == 400
        assert error_code(body) == "bad_cursor"

    @pytest.mark.parametrize("param", ["limit=abc", "limit=0", "offset=-1"])
    def test_bad_paging_params_are_400(self, server, param):
        status, body = get(f"{server.base_url}/results?{param}")
        assert status == 400

    def test_limit_clamps_at_max(self, server, topic_queries):
        post(server.base_url + "/diversify", {"query": topic_queries[0]})
        status, body = get(f"{server.base_url}/results?limit=99999")
        assert status == 200
        assert body["page"]["limit"] == MAX_PAGE_LIMIT

    def test_ring_is_bounded(self, framework_factory, topic_queries):
        service = DiversificationService(framework_factory())
        service.warm(topic_queries)
        with DiversificationHTTPServer(service, ring_size=2) as srv:
            post(srv.base_url + "/diversify", {"queries": topic_queries[:4]})
            status, body = get(srv.base_url + "/results")
            assert status == 200
            assert body["page"]["total"] == 2
            # the ring keeps the most recent entries
            assert [i["query"] for i in body["items"]] == topic_queries[2:4]


# -- GET /health and GET /stats --------------------------------------------------


class TestHealthAndStats:
    def test_health_single_service(self, server):
        status, body = get(server.base_url + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["running"] is True
        assert body["kind"] == "single"

    def test_health_sharded_cluster(self, framework_factory, topic_queries):
        cluster = ShardedDiversificationService.from_factory(
            lambda shard: framework_factory(), num_shards=2
        )
        cluster.warm(topic_queries)
        try:
            with DiversificationHTTPServer(cluster) as srv:
                status, body = get(srv.base_url + "/health")
                assert status == 200
                assert body["kind"] == "sharded"
                assert body["shards"] == 2
                assert body["execution_backend"] == "thread"
        finally:
            cluster.close()

    def test_stats_counts_served_requests(self, server, topic_queries):
        post(server.base_url + "/diversify", {"queries": topic_queries[:3]})
        status, body = get(server.base_url + "/stats")
        assert status == 200
        assert body["backend"]["served"] == 3
        assert body["front"]["served"] == 3
        assert body["ring"]["size"] == 3
        assert body["caches"]["specialization"]["maxsize"] > 0
        assert body["draining"] is False
        latency = body["backend"]["latency"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]


# -- concurrency, shedding, drain ------------------------------------------------


class TestConcurrencyAndDrain:
    def test_concurrent_clients_match_direct_batch(
        self, server, reference, topic_queries
    ):
        queries = (topic_queries * 3)[: len(topic_queries) * 3]
        outcomes: list[tuple[int, dict] | None] = [None] * len(queries)

        def client(index: int, query: str) -> None:
            outcomes[index] = post(
                server.base_url + "/diversify", {"query": query}
            )

        threads = [
            threading.Thread(target=client, args=(i, q))
            for i, q in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for query, outcome in zip(queries, outcomes):
            assert outcome is not None
            status, body = outcome
            assert status == 200
            assert body == reference[query]

    def test_overload_sheds_with_429(self, framework_factory, topic_queries):
        backend = GateBackend(DiversificationService(framework_factory()))
        backend.warm(topic_queries)
        with DiversificationHTTPServer(backend, max_inflight=1) as srv:
            first: list[tuple[int, dict]] = []

            def client():
                first.append(
                    post(srv.base_url + "/diversify", {"query": topic_queries[0]})
                )

            thread = threading.Thread(target=client)
            thread.start()
            assert backend.entered.wait(timeout=10)
            status, body = post(
                srv.base_url + "/diversify", {"query": topic_queries[1]}
            )
            assert status == 429
            assert error_code(body) == "overloaded"
            backend.gate.set()
            thread.join(timeout=30)
            assert first and first[0][0] == 200

    def test_request_timeout_is_503(self, framework_factory, topic_queries):
        backend = GateBackend(DiversificationService(framework_factory()))
        backend.warm(topic_queries)
        with DiversificationHTTPServer(backend) as srv:
            status, body = post(
                srv.base_url + "/diversify",
                {"query": topic_queries[0], "timeout_ms": 50},
            )
            assert status == 503
            assert error_code(body) == "timeout"
            backend.gate.set()  # let the in-flight batch finish before close

    def test_drain_completes_inflight_and_rejects_new(
        self, framework_factory, topic_queries
    ):
        backend = GateBackend(DiversificationService(framework_factory()))
        backend.warm(topic_queries)
        with DiversificationHTTPServer(backend) as srv:
            outcomes: list[tuple[int, dict] | None] = [None] * 3

            def client(index: int) -> None:
                outcomes[index] = post(
                    srv.base_url + "/diversify",
                    {"query": topic_queries[index]},
                )

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(3)
            ]
            for thread in threads:
                thread.start()
            assert backend.entered.wait(timeout=10)

            drained: list[tuple[int, dict]] = []
            drainer = threading.Thread(
                target=lambda: drained.append(post(srv.base_url + "/drain"))
            )
            drainer.start()
            backend.gate.set()
            drainer.join(timeout=30)
            for thread in threads:
                thread.join(timeout=30)

            # zero dropped futures: every admitted request completed
            assert all(outcome is not None for outcome in outcomes)
            statuses = sorted(status for status, _ in outcomes)
            ok = statuses.count(200)
            assert ok >= 1  # at least the gated in-flight request
            assert set(statuses) <= {200, 503}

            status, report = drained[0]
            assert status == 200
            assert report["served_total"] == ok
            assert report["already_drained"] is False

            # health reflects the drained state; reads still answered
            status, health = get(srv.base_url + "/health")
            assert status == 200
            assert health["status"] == "drained"

            # new work is rejected, idempotent drain reports itself
            status, body = post(
                srv.base_url + "/diversify", {"query": topic_queries[0]}
            )
            assert status == 503
            assert error_code(body) == "draining"
            status, second = post(srv.base_url + "/drain")
            assert status == 200
            assert second["already_drained"] is True
            assert second["served_total"] == report["served_total"]

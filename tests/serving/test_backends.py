"""Tests for the pluggable execution backends (inline/thread/process).

The load-bearing property is the acceptance criterion of the backend
refactor: the sharded cluster serves **byte-identical rankings under
every backend** — the backends may change where the work runs, never
what is served.  The process backend additionally gets its worker
protocol exercised: stats snapshots over the boundary, error
propagation, per-shard breakdowns with idle shards, warm-artifact
hydration from disk, and lifecycle edges.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.serving import (
    BACKEND_NAMES,
    BackendError,
    DiversificationService,
    InlineBackend,
    ProcessBackend,
    ShardedDiversificationService,
    ThreadBackend,
    WorkerDiedError,
    make_backend,
)

NUM_SHARDS = 3

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process backend tests rely on fork inheriting the test fixtures",
)

needs_spawn = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="platform does not offer the spawn start method",
)


class _EchoService:
    """Minimal shard service for start-method tests: no corpus, no
    framework — just something addressable that proves the worker built
    and answers in a fresh interpreter."""

    def __init__(self, shard: int) -> None:
        self.shard = shard

    def ping(self, value: int) -> tuple[int, int]:
        return (self.shard, value * 2)


def _echo_factory(shard: int) -> _EchoService:
    """Module-level (hence picklable) factory for spawn-mode workers."""
    return _EchoService(shard)


@pytest.fixture(scope="module")
def workload(small_corpus):
    queries = [topic.query for topic in small_corpus.topics]
    return queries * 2 + list(reversed(queries))


@pytest.fixture(scope="module")
def reference(framework_factory, workload):
    """Unsharded rankings — what every backend must reproduce."""
    service = DiversificationService(framework_factory())
    return [r.ranking for r in service.diversify_batch(workload)]


def build_cluster(framework_factory, backend, num_shards=NUM_SHARDS, **kwargs):
    return ShardedDiversificationService.from_factory(
        lambda shard: framework_factory(),
        num_shards=num_shards,
        backend=backend,
        **kwargs,
    )


class TestIdentityAcrossBackends:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_rankings_identical_to_unsharded(
        self, framework_factory, workload, reference, backend
    ):
        if backend == "process" and "fork" not in (
            multiprocessing.get_all_start_methods()
        ):
            pytest.skip("no fork on this platform")
        cluster = build_cluster(framework_factory, backend)
        try:
            got = cluster.diversify_batch(workload)
            assert [r.query for r in got] == workload
            assert [r.ranking for r in got] == reference
        finally:
            cluster.close()

    @needs_fork
    def test_warmed_process_cluster_matches(
        self, framework_factory, workload, reference
    ):
        cluster = build_cluster(framework_factory, "process")
        try:
            report = cluster.warm(workload)
            assert report.queries == len(set(workload))
            assert len(report.shards) == NUM_SHARDS
            got = cluster.diversify_batch(workload)
            assert [r.ranking for r in got] == reference
        finally:
            cluster.close()


@needs_fork
class TestProcessBackendProtocol:
    @pytest.fixture()
    def cluster(self, framework_factory):
        cluster = build_cluster(framework_factory, "process")
        yield cluster
        cluster.close()

    def test_services_not_reachable_in_parent(self, cluster):
        with pytest.raises(RuntimeError, match="worker processes"):
            cluster.services

    def test_duplicates_share_one_result(self, cluster, workload):
        query = workload[0]
        results = cluster.diversify_batch([query, query, query])
        # One shard, one pickle payload: the pickle memo preserves
        # object identity within the batch, like the in-process dedup.
        assert results[0] is results[1] is results[2]

    def test_stats_snapshots_cross_the_boundary(self, cluster, workload):
        cluster.diversify_batch(workload)
        stats = cluster.shard_stats()
        assert [s.name for s in stats] == [f"shard{i}" for i in range(NUM_SHARDS)]
        assert sum(s.served for s in stats) == len(workload)
        merged = cluster.cluster_stats()
        assert merged.served == len(workload)
        assert merged.seconds > 0
        assert len(merged.shards) == NUM_SHARDS

    def test_cache_info_merges_across_workers(self, cluster, workload):
        cluster.warm(workload)
        cluster.diversify_batch(workload)
        spec = cluster.spec_cache_info()
        assert spec.size > 0
        result_cache = cluster.result_cache_info()
        assert result_cache.misses > 0

    def test_invalidate_reaches_workers(self, cluster, workload):
        query = workload[0]
        cluster.diversify(query)
        cluster.invalidate()
        cluster.diversify(query)
        assert cluster.cluster_stats().ranked == 2

    def test_worker_exception_propagates(self, cluster, tmp_path):
        with pytest.raises(FileNotFoundError):
            # Raises inside the worker; the backend must re-raise the
            # original exception type in the parent.
            cluster.backend.invoke(0, "load_warm", str(tmp_path / "missing.jsonl"))

    def test_protocol_survives_mixed_failure_batch(
        self, cluster, workload, tmp_path
    ):
        """A batch where one shard fails while others succeed must drain
        every pipelined reply: the next call has to see fresh, correctly
        typed data, not a stale reply left in a pipe (regression for the
        request/reply desync)."""
        from repro.serving.service import ServiceStats

        cluster.diversify_batch(workload)  # replies that could go stale
        missing = str(tmp_path / "missing.jsonl")
        with pytest.raises(FileNotFoundError):
            cluster.backend.invoke_each(
                [(s, "load_warm" if s == 0 else "get_stats", (missing,) if s == 0 else ())
                 for s in range(NUM_SHARDS)]
            )
        # The backend is still usable and in sync.
        done = cluster.backend.broadcast("get_stats")
        assert set(done) == set(range(NUM_SHARDS))
        assert all(isinstance(s, ServiceStats) for s in done.values())
        assert sum(s.served for s in done.values()) == len(workload)
        got = cluster.diversify_batch(workload[:3])
        assert [r.query for r in got] == workload[:3]

    def test_unknown_method_propagates_attribute_error(self, cluster):
        with pytest.raises(AttributeError):
            cluster.backend.invoke(0, "no_such_method")

    def test_close_is_idempotent_and_final(self, cluster, workload):
        cluster.close()
        cluster.close()
        with pytest.raises(BackendError):
            cluster.diversify_batch(workload)

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_worker_cap_round_robins_shards(self, framework_factory, workload,
                                            reference, max_workers):
        """Fewer workers than shards: one worker owns several shards and
        its pipe carries several requests per batch — the interleaved
        send/recv must stay deadlock-free and order-correct."""
        backend = ProcessBackend(max_workers=max_workers)
        cluster = build_cluster(framework_factory, backend)
        try:
            cluster.warm(workload)
            got = cluster.diversify_batch(workload)
            assert [r.ranking for r in got] == reference
            stats = cluster.shard_stats()
            assert sum(s.served for s in stats) == len(workload)
        finally:
            cluster.close()

    def test_factory_failure_fails_fast(self):
        def broken(shard):
            raise RuntimeError("no corpus here")

        backend = ProcessBackend()
        with pytest.raises(BackendError, match="failed to build"):
            ShardedDiversificationService.from_factory(
                broken, num_shards=2, backend=backend
            )


@needs_fork
class TestWarmPersistenceAcrossProcesses:
    def test_cluster_save_then_hydrate_from_factory(
        self, framework_factory, workload, reference, tmp_path
    ):
        donor = build_cluster(framework_factory, "process")
        try:
            donor.warm(workload)
            saved = donor.save_warm(tmp_path)
            assert saved > 0
            assert sorted(p.name for p in tmp_path.iterdir()) == [
                f"warm-shard{i}.jsonl" for i in range(NUM_SHARDS)
            ]
        finally:
            donor.close()

        hydrated = build_cluster(
            framework_factory, "process", warm_artifacts_dir=tmp_path
        )
        try:
            # The offline phase is already on disk: warming fetches nothing.
            report = hydrated.warm(workload)
            assert report.fetched == 0
            got = hydrated.diversify_batch(workload)
            assert [r.ranking for r in got] == reference
        finally:
            hydrated.close()

    def test_load_warm_into_running_cluster(
        self, framework_factory, workload, tmp_path
    ):
        donor = build_cluster(framework_factory, "inline")
        donor.warm(workload)
        donor.save_warm(tmp_path)
        fresh = build_cluster(framework_factory, "process")
        try:
            assert fresh.load_warm(tmp_path) > 0
            assert fresh.warm(workload).fetched == 0
        finally:
            fresh.close()

    def test_load_warm_missing_directory_is_noop(self, framework_factory, tmp_path):
        cluster = build_cluster(framework_factory, "inline")
        assert cluster.load_warm(tmp_path / "nowhere") == 0


class TestIdleShardBreakdowns:
    def test_zero_query_shard_contributes_wellformed_entries(
        self, framework_factory, workload
    ):
        """A shard that receives zero queries must still appear — named,
        zeroed, with every derived quantity defined — in the merged
        per-shard breakdowns of both stats and warm reports."""
        cluster = build_cluster(framework_factory, "inline")
        query = workload[0]
        idle = [s for s in range(NUM_SHARDS) if s != cluster.route(query)]
        cluster.warm([query])
        cluster.diversify_batch([query, query])

        merged = cluster.cluster_stats()
        assert len(merged.shards) == NUM_SHARDS
        for shard in idle:
            entry = merged.shards[shard]
            assert entry.name == f"shard{shard}"
            assert entry.served == entry.ranked == 0
            assert entry.throughput_qps == 0.0
            assert entry.percentile_ms(0.95) == 0.0
            assert entry.summary().startswith(f"[shard{shard}]")

        report = cluster.warm([query])
        assert len(report.shards) == NUM_SHARDS
        for shard in idle:
            assert report.shards[shard].queries == 0
            assert report.shards[shard].name == f"shard{shard}"

    @needs_fork
    def test_idle_shards_over_process_boundary(self, framework_factory, workload):
        cluster = build_cluster(framework_factory, "process")
        try:
            query = workload[0]
            cluster.diversify_batch([query])
            merged = cluster.cluster_stats()
            assert len(merged.shards) == NUM_SHARDS
            assert sum(s.served for s in merged.shards) == 1
            assert all(s.name == f"shard{i}"
                       for i, s in enumerate(merged.shards))
        finally:
            cluster.close()


class TestStartMethods:
    """The start-method contract: explicit methods are honoured, the
    default is the platform's own, and a non-picklable factory meeting
    spawn/forkserver fails fast at start() with a message naming the
    factory protocol — not a raw pickle traceback out of a worker."""

    def test_default_is_platform_default(self):
        backend = ProcessBackend()
        assert backend.start_method is None  # unresolved until start()
        backend.start(_echo_factory, 2)
        try:
            assert backend.start_method == multiprocessing.get_start_method()
        finally:
            backend.close()

    @needs_spawn
    def test_explicit_spawn_is_honoured_end_to_end(self):
        backend = ProcessBackend(start_method="spawn")
        backend.start(_echo_factory, 2)
        try:
            assert backend.start_method == "spawn"
            assert backend.invoke(1, "ping", 21) == (1, 42)
            done = backend.broadcast("ping", 3)
            assert done == {0: (0, 6), 1: (1, 6)}
        finally:
            backend.close()

    @needs_spawn
    def test_spawn_with_closure_factory_fails_fast(self):
        captured = object()
        backend = ProcessBackend(start_method="spawn")
        with pytest.raises(BackendError, match="does not pickle"):
            backend.start(lambda shard: captured, 2)
        # Failed fast: no worker was ever spawned.
        assert backend._workers == []
        assert not backend.started

    @needs_spawn
    def test_spawn_error_names_shard_service_factory(self, framework_factory):
        from repro.serving.sharded import ShardServiceFactory

        factory = ShardServiceFactory(lambda shard: framework_factory())
        backend = ProcessBackend(start_method="spawn")
        with pytest.raises(BackendError) as excinfo:
            backend.start(factory, 2)
        message = str(excinfo.value)
        assert "ShardServiceFactory" in message
        assert "framework_factory" in message
        assert "pickle" in message

    def test_unavailable_start_method_rejected(self):
        backend = ProcessBackend(start_method="wormhole")
        with pytest.raises(BackendError, match="not available"):
            backend.start(_echo_factory, 1)

    @needs_fork
    def test_explicit_fork_accepts_closures(self):
        captured = {"value": 7}
        backend = ProcessBackend(start_method="fork")

        class Closed:
            def __init__(self, shard):
                self.shard = shard

            def peek(self):
                return captured["value"]

        backend.start(lambda shard: Closed(shard), 1)
        try:
            assert backend.start_method == "fork"
            assert backend.invoke(0, "peek") == 7
        finally:
            backend.close()

    def test_make_backend_threads_start_method_through(self):
        backend = make_backend("process", start_method="spawn")
        assert isinstance(backend, ProcessBackend)
        assert backend.start_method == "spawn"

    def test_make_backend_rejects_start_method_elsewhere(self):
        with pytest.raises(ValueError, match="start_method"):
            make_backend("thread", start_method="spawn")
        with pytest.raises(ValueError, match="start_method"):
            make_backend(None, start_method="spawn")


class TestBackendConstruction:
    def test_make_backend_names(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)
        assert isinstance(make_backend(None), ThreadBackend)
        passthrough = InlineBackend()
        assert make_backend(passthrough) is passthrough

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")
        with pytest.raises(TypeError):
            make_backend(42)

    def test_process_backend_requires_from_factory(self, framework_factory):
        services = [DiversificationService(framework_factory())]
        with pytest.raises(ValueError, match="from_factory"):
            ShardedDiversificationService(services, backend="process")

    def test_local_backend_cannot_adopt_twice(self, framework_factory):
        backend = InlineBackend()
        backend.adopt([DiversificationService(framework_factory())])
        with pytest.raises(BackendError):
            backend.adopt([DiversificationService(framework_factory())])

    def test_unstarted_backend_without_services_rejected(self):
        with pytest.raises(ValueError, match="not started"):
            ShardedDiversificationService(backend="inline")

    def test_invoke_before_start_raises(self):
        with pytest.raises(BackendError):
            InlineBackend().invoke(0, "get_stats")

    def test_thread_backend_defaults_match_old_fanout(self, framework_factory):
        cluster = build_cluster(framework_factory, None)
        assert cluster.backend.name == "thread"
        assert cluster.backend.max_workers >= 1

    def test_repr_names_backend(self, framework_factory):
        cluster = build_cluster(framework_factory, "inline")
        assert "backend=inline" in repr(cluster)
        assert f"shards={NUM_SHARDS}" in repr(cluster)

    def test_make_backend_replication_validation(self):
        with pytest.raises(ValueError, match="requires process workers"):
            make_backend("thread", replicas=2)
        with pytest.raises(ValueError, match="hedge_after_ms"):
            make_backend("process", hedge_after_ms=5)
        with pytest.raises(ValueError, match="policy"):
            make_backend(None, policy="least-outstanding")
        backend = make_backend(None, replicas=2)
        assert backend.name == "replicated"
        assert backend.replicas == 2

    def test_single_replica_backends_expose_replica_protocol(self):
        backend = InlineBackend()
        assert backend.replicas == 1
        assert backend.replication_stats() == {}
        backend.adopt([_EchoService(0)])
        assert backend.invoke_replicas(0, "ping", 2) == [(0, 4)]


@needs_fork
class TestWorkerDiedError:
    """A dead worker surfaces as a *typed* error naming its shards —
    the satellite fix the respawn logic (and callers) react to."""

    @pytest.fixture()
    def backend(self):
        backend = ProcessBackend(start_method="fork")
        backend.start(_echo_factory, 2)
        yield backend
        backend.close()

    def _kill_worker(self, backend, index):
        import os
        import signal

        os.kill(backend._workers[index].pid, signal.SIGKILL)
        backend._workers[index].join(timeout=5)

    def test_dead_worker_raises_typed_error_naming_shards(self, backend):
        self._kill_worker(backend, 0)
        with pytest.raises(WorkerDiedError) as excinfo:
            backend.invoke(0, "ping", 1)
        err = excinfo.value
        assert isinstance(err, BackendError)  # old catch sites keep working
        assert err.shard == 0
        assert err.shards == (0,)
        assert err.exitcode is not None
        assert "died" in str(err)
        assert "shards [0]" in str(err)

    def test_backend_poisons_itself_after_a_death(self, backend):
        self._kill_worker(backend, 0)
        with pytest.raises(WorkerDiedError):
            backend.invoke(0, "ping", 1)
        # The surviving worker's pipe is intact, but replies may be
        # lost mid-batch — the backend refuses further traffic.
        with pytest.raises(BackendError, match="lost a worker"):
            backend.invoke(1, "ping", 1)

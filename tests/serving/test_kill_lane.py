"""Opt-in kill lane: real process replicas under real ``os.kill``.

The deterministic fault-injection suite (``test_replication.py``) pins
every failover path with scripted workers; this lane re-asserts the
acceptance scenario with nothing faked — a :class:`ReplicatedBackend`
running real OS processes, SIGKILL delivered mid-benchmark (including
while requests are in flight from another thread), results compared
field-for-field against the fault-free inline reference.

Signal delivery makes timing genuinely racy, which is the point: the
routing layer must serve identical results *whenever* the kill lands —
before dispatch (health sweep buries the corpse), between send and
reply (failover retries the in-flight request), or after the reply
drained.  Because the raciness is real, the lane is **opt-in** like the
spawn lane: it runs only with ``REPRO_KILL_LANE=1``::

    REPRO_KILL_LANE=1 PYTHONPATH=src python -m pytest tests/serving/test_kill_lane.py -q
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.serving import (
    DiversificationService,
    ReplicatedBackend,
    ShardedDiversificationService,
)

pytestmark = [
    pytest.mark.skipif(
        os.environ.get("REPRO_KILL_LANE") != "1",
        reason="kill lane is opt-in: set REPRO_KILL_LANE=1",
    ),
    pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="kill lane relies on fork inheriting the test fixtures",
    ),
]

NUM_SHARDS = 2
REPLICAS = 2


@pytest.fixture(scope="module")
def workload(small_corpus):
    queries = [topic.query for topic in small_corpus.topics]
    return queries * 3 + list(reversed(queries))


@pytest.fixture(scope="module")
def reference(framework_factory, workload):
    service = DiversificationService(framework_factory())
    return service.diversify_batch(workload)


def assert_results_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.query == w.query
        assert g.ranking == w.ranking
        assert g.diversified == w.diversified
        assert g.baseline.doc_ids == w.baseline.doc_ids
        assert g.baseline.scores == w.baseline.scores


def build_cluster(framework_factory, tmp_path=None, **backend_kwargs):
    backend = ReplicatedBackend(replicas=REPLICAS, **backend_kwargs)
    cluster = ShardedDiversificationService.from_factory(
        lambda shard: framework_factory(),
        num_shards=NUM_SHARDS,
        backend=backend,
        warm_artifacts_dir=tmp_path,
    )
    return cluster, backend


def test_sigkill_between_batches_respawns_and_keeps_identity(
    framework_factory, workload, reference
):
    cluster, backend = build_cluster(framework_factory)
    try:
        quarter = max(1, len(workload) // 4)
        got = cluster.diversify_batch(workload[:quarter])
        for shard in range(NUM_SHARDS):
            os.kill(backend.replica_pids(shard)[0], signal.SIGKILL)
        # Several follow-up batches: round-robin is guaranteed to route
        # back onto the killed slot, whether the corpse is noticed by
        # the health sweep or by a failed dispatch.
        for start in range(quarter, len(workload), quarter):
            got += cluster.diversify_batch(workload[start:start + quarter])
        assert_results_equal(got, reference)
        stats = backend.replication_stats()
        assert sum(s.respawns_total for s in stats.values()) >= NUM_SHARDS
        merged = cluster.cluster_stats()
        assert merged.respawns >= NUM_SHARDS
    finally:
        cluster.close()


def test_sigkill_mid_request_fails_over_to_identical_results(
    framework_factory, workload, reference
):
    """Kill pids *while* a batch is in flight from another thread — the
    failover retry must still produce the reference results."""
    cluster, backend = build_cluster(framework_factory)
    try:
        victims = [backend.replica_pids(shard)[0] for shard in range(NUM_SHARDS)]
        results = []

        def serve():
            results.extend(cluster.diversify_batch(workload))

        server = threading.Thread(target=serve)
        server.start()
        time.sleep(0.02)  # let requests get in flight
        for pid in victims:
            os.kill(pid, signal.SIGKILL)
        server.join(timeout=120)
        assert not server.is_alive()
        assert_results_equal(results, reference)
        # Serving continues after the storm, on respawned workers.
        assert_results_equal(cluster.diversify_batch(workload), reference)
    finally:
        cluster.close()


def test_respawn_rehydrates_from_warm_store(
    framework_factory, workload, reference, tmp_path
):
    donor = ShardedDiversificationService.from_factory(
        lambda shard: framework_factory(),
        num_shards=NUM_SHARDS,
        backend="inline",
    )
    donor.warm(workload)
    donor.save_warm(tmp_path)
    donor.close()

    cluster, backend = build_cluster(framework_factory, tmp_path=tmp_path)
    try:
        shard = 0
        os.kill(backend.replica_pids(shard)[0], signal.SIGKILL)
        assert_results_equal(cluster.diversify_batch(workload), reference)
        assert backend.replication_stats()[shard].respawns_total >= 1
        bucket = [q for q in set(workload) if cluster.route(q) == shard]
        # Every replica — the respawned one included — holds the warm
        # artifacts from disk: re-warming fetches nothing.
        for report in backend.invoke_replicas(shard, "warm", bucket):
            assert report.fetched == 0
    finally:
        cluster.close()
